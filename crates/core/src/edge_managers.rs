//! Edge managers used by runtime re-configuration.

use tez_dag::{EdgeManagerPlugin, EdgeRoutingContext, Route};

/// Scatter-gather routing after automatic parallelism reduction (paper
/// Figure 6): producers still emit `orig_partitions` partitions, but the
/// consumer vertex now has fewer tasks, each gathering a contiguous range
/// of partitions from every producer.
///
/// Partition ranges are split as evenly as possible; consumer task `j`
/// reads partitions `[start_j, end_j)` from each of the `S` producers, at
/// input indices `src * width_j + offset`.
#[derive(Clone, Copy, Debug)]
pub struct GroupedScatterGatherEdgeManager {
    /// Partition count the producers were configured with.
    pub orig_partitions: usize,
}

impl GroupedScatterGatherEdgeManager {
    /// Range of original partitions consumed by `dst_task` among
    /// `num_dst` consumer tasks.
    pub fn partition_range(&self, dst_task: usize, num_dst: usize) -> (usize, usize) {
        let n = self.orig_partitions;
        let base = n / num_dst;
        let extra = n % num_dst;
        // First `extra` tasks get `base + 1` partitions.
        let start = if dst_task < extra {
            dst_task * (base + 1)
        } else {
            extra * (base + 1) + (dst_task - extra) * base
        };
        let width = if dst_task < extra { base + 1 } else { base };
        (start, start + width)
    }

    fn dst_of_partition(&self, partition: usize, num_dst: usize) -> usize {
        let n = self.orig_partitions;
        let base = n / num_dst;
        let extra = n % num_dst;
        let boundary = extra * (base + 1);
        if partition < boundary {
            partition / (base + 1)
        } else {
            extra + (partition - boundary) / base.max(1)
        }
    }
}

impl EdgeManagerPlugin for GroupedScatterGatherEdgeManager {
    fn num_physical_outputs(&self, _ctx: &EdgeRoutingContext, _src_task: usize) -> usize {
        self.orig_partitions
    }

    fn num_physical_inputs(&self, ctx: &EdgeRoutingContext, dst_task: usize) -> usize {
        let (start, end) = self.partition_range(dst_task, ctx.num_dst_tasks);
        ctx.num_src_tasks * (end - start)
    }

    fn route(&self, ctx: &EdgeRoutingContext, src_task: usize, partition: usize) -> Vec<Route> {
        let dst = self.dst_of_partition(partition, ctx.num_dst_tasks);
        let (start, end) = self.partition_range(dst, ctx.num_dst_tasks);
        let width = end - start;
        vec![Route {
            dst_task: dst,
            dst_input_index: src_task * width + (partition - start),
        }]
    }

    fn name(&self) -> &str {
        "grouped-scatter-gather"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ranges_cover_all_partitions() {
        for (orig, dst) in [(10usize, 3usize), (7, 7), (12, 5), (5, 1)] {
            let m = GroupedScatterGatherEdgeManager {
                orig_partitions: orig,
            };
            let mut covered = Vec::new();
            for j in 0..dst {
                let (s, e) = m.partition_range(j, dst);
                covered.extend(s..e);
            }
            assert_eq!(
                covered,
                (0..orig).collect::<Vec<_>>(),
                "orig={orig} dst={dst}"
            );
        }
    }

    #[test]
    fn routing_is_consistent_with_ranges_and_unique() {
        let m = GroupedScatterGatherEdgeManager {
            orig_partitions: 10,
        };
        let ctx = EdgeRoutingContext {
            num_src_tasks: 4,
            num_dst_tasks: 3,
        };
        let mut seen = HashSet::new();
        for src in 0..4 {
            assert_eq!(m.num_physical_outputs(&ctx, src), 10);
            for p in 0..10 {
                let routes = m.route(&ctx, src, p);
                assert_eq!(routes.len(), 1);
                let r = routes[0];
                let (s, e) = m.partition_range(r.dst_task, 3);
                assert!(p >= s && p < e);
                assert!(r.dst_input_index < m.num_physical_inputs(&ctx, r.dst_task));
                assert!(seen.insert((r.dst_task, r.dst_input_index)));
            }
        }
        // Total inputs = sum over dst of num_physical_inputs = 4 * 10.
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn single_consumer_takes_everything() {
        let m = GroupedScatterGatherEdgeManager { orig_partitions: 6 };
        let ctx = EdgeRoutingContext {
            num_src_tasks: 2,
            num_dst_tasks: 1,
        };
        assert_eq!(m.num_physical_inputs(&ctx, 0), 12);
        assert_eq!(m.route(&ctx, 1, 5)[0].dst_task, 0);
    }
}
