//! Built-in vertex managers (paper §3.4).
//!
//! "Using the same API, Tez comes with some built-in VertexManagers. If a
//! VertexManager is not specified in the DAG, then Tez will pick one of
//! these built-in implementations based on the vertex characteristics."
//!
//! * [`RootInputVertexManager`] — parallelism from split calculation;
//!   schedules everything once splits are known.
//! * [`OneToOneVertexManager`] — parallelism copied from the one-to-one
//!   source; task *i* is scheduled when source task *i* completes.
//! * [`ImmediateStartVertexManager`] — fixed parallelism, schedule all at
//!   start.
//! * [`ShuffleVertexManager`] — the paper's flagship (Figure 6): gathers
//!   producer output-size statistics via VertexManager events, shrinks the
//!   partition cardinality to match the observed data volume, and applies
//!   **slow-start** scheduling so consumer fetches overlap the tail of the
//!   producer wave.

use crate::edge_managers::GroupedScatterGatherEdgeManager;
use std::collections::HashMap;
use std::sync::Arc;
use tez_dag::{EdgeManagerPlugin, PayloadReader, PayloadWriter, UserPayload};
use tez_runtime::{
    ComponentRegistry, SourceKind, SourceTaskAttempt, VertexManager, VertexManagerContext,
};

/// Registry kinds of the built-in vertex managers.
pub mod vm_kinds {
    /// Root-input vertex manager.
    pub const ROOT_INPUT: &str = "tez.RootInputVertexManager";
    /// One-to-one vertex manager.
    pub const ONE_TO_ONE: &str = "tez.OneToOneVertexManager";
    /// Immediate-start vertex manager.
    pub const IMMEDIATE: &str = "tez.ImmediateStartVertexManager";
    /// Shuffle vertex manager.
    pub const SHUFFLE: &str = "tez.ShuffleVertexManager";
}

/// Parallelism from root splits; schedule all tasks at vertex start.
#[derive(Default)]
pub struct RootInputVertexManager {
    splits: HashMap<String, usize>,
}

impl VertexManager for RootInputVertexManager {
    fn initialize(&mut self, _ctx: &mut dyn VertexManagerContext) {}

    fn on_root_input_initialized(
        &mut self,
        source: &str,
        num_splits: usize,
        ctx: &mut dyn VertexManagerContext,
    ) {
        self.splits.insert(source.to_string(), num_splits);
        if ctx.parallelism().is_none() {
            // Parallelism is the largest split count across sources; tasks
            // of narrower sources read nothing beyond their split range.
            let n = self.splits.values().copied().max().unwrap_or(1).max(1);
            ctx.reconfigure(n, Vec::new());
        }
    }

    fn on_vertex_started(&mut self, ctx: &mut dyn VertexManagerContext) {
        let n = ctx.parallelism().expect("started implies resolved");
        ctx.schedule_tasks((0..n).collect());
    }
}

/// Copies the one-to-one source's parallelism; schedules task `i` when
/// source task `i` completes (preserving data locality on the 1-1 edge).
#[derive(Default)]
pub struct OneToOneVertexManager;

impl VertexManager for OneToOneVertexManager {
    fn initialize(&mut self, ctx: &mut dyn VertexManagerContext) {
        if ctx.parallelism().is_some() {
            return;
        }
        let src = ctx
            .source_vertices()
            .into_iter()
            .find(|s| ctx.source_edge_kind(s) == Some(SourceKind::OneToOne));
        if let Some(src) = src {
            if let Some(n) = ctx.source_parallelism(&src) {
                ctx.reconfigure(n, Vec::new());
            }
        }
    }

    fn on_source_task_completed(
        &mut self,
        src: &SourceTaskAttempt,
        ctx: &mut dyn VertexManagerContext,
    ) {
        if ctx.source_edge_kind(&src.vertex) == Some(SourceKind::OneToOne) {
            ctx.schedule_tasks(vec![src.task]);
        }
    }
}

/// Fixed parallelism; schedule everything as soon as the vertex starts.
#[derive(Default)]
pub struct ImmediateStartVertexManager;

impl VertexManager for ImmediateStartVertexManager {
    fn initialize(&mut self, _ctx: &mut dyn VertexManagerContext) {}

    fn on_vertex_started(&mut self, ctx: &mut dyn VertexManagerContext) {
        let n = ctx
            .parallelism()
            .expect("immediate-start vertex needs fixed parallelism");
        ctx.schedule_tasks((0..n).collect());
    }
}

/// Configuration of the [`ShuffleVertexManager`].
#[derive(Clone, Copy, Debug)]
pub struct ShuffleVertexManagerConfig {
    /// Enable automatic partition-cardinality estimation.
    pub auto_parallelism: bool,
    /// Target (scaled) bytes per consumer task.
    pub desired_bytes_per_task: u64,
    /// Fraction of producers that must report statistics before estimating.
    pub stats_fraction: f64,
    /// Slow-start: begin scheduling at this completed-producer fraction.
    pub slowstart_min: f64,
    /// Slow-start: everything scheduled at this fraction.
    pub slowstart_max: f64,
}

impl Default for ShuffleVertexManagerConfig {
    fn default() -> Self {
        ShuffleVertexManagerConfig {
            auto_parallelism: true,
            desired_bytes_per_task: 256 << 20,
            stats_fraction: 0.5,
            slowstart_min: 0.25,
            slowstart_max: 0.75,
        }
    }
}

impl ShuffleVertexManagerConfig {
    /// Encode as a descriptor payload.
    pub fn to_payload(&self) -> UserPayload {
        let mut w = PayloadWriter::new();
        w.put_u64(u64::from(self.auto_parallelism))
            .put_u64(self.desired_bytes_per_task)
            .put_f64(self.stats_fraction)
            .put_f64(self.slowstart_min)
            .put_f64(self.slowstart_max);
        w.finish()
    }

    /// Decode from a descriptor payload (empty payload → defaults).
    pub fn from_payload(p: &UserPayload) -> Self {
        if p.is_empty() {
            return Self::default();
        }
        let mut r = PayloadReader::new(p.as_bytes());
        ShuffleVertexManagerConfig {
            auto_parallelism: r.get_u64() != 0,
            desired_bytes_per_task: r.get_u64(),
            stats_fraction: r.get_f64(),
            slowstart_min: r.get_f64(),
            slowstart_max: r.get_f64(),
        }
    }
}

/// The shuffle vertex manager (paper §3.4 and Figure 6).
pub struct ShuffleVertexManager {
    config: ShuffleVertexManagerConfig,
    /// Scaled output bytes reported per producer task (deduplicated).
    stats: HashMap<(String, usize), u64>,
    reconfigured: bool,
    started: bool,
}

impl ShuffleVertexManager {
    /// New manager with the given config.
    pub fn new(config: ShuffleVertexManagerConfig) -> Self {
        ShuffleVertexManager {
            config,
            stats: HashMap::new(),
            reconfigured: false,
            started: false,
        }
    }

    fn sg_sources(&self, ctx: &dyn VertexManagerContext) -> Vec<String> {
        ctx.source_vertices()
            .into_iter()
            .filter(|s| ctx.source_edge_kind(s) == Some(SourceKind::ScatterGather))
            .collect()
    }

    fn blocking_sources(&self, ctx: &dyn VertexManagerContext) -> Vec<String> {
        ctx.source_vertices()
            .into_iter()
            .filter(|s| !matches!(ctx.source_edge_kind(s), Some(SourceKind::ScatterGather)))
            .collect()
    }

    fn total_sg_tasks(&self, ctx: &dyn VertexManagerContext) -> Option<usize> {
        let mut total = 0;
        for s in self.sg_sources(ctx) {
            total += ctx.source_parallelism(&s)?;
        }
        Some(total)
    }

    fn maybe_auto_reduce(&mut self, ctx: &mut dyn VertexManagerContext) {
        if !self.config.auto_parallelism || self.reconfigured || ctx.scheduled_tasks() > 0 {
            return;
        }
        let Some(total_src) = self.total_sg_tasks(ctx) else {
            return;
        };
        if total_src == 0 {
            return;
        }
        // Estimate per source vertex: extrapolating from whichever side
        // reported first would bias the estimate badly when a small
        // dimension side finishes long before the fact side.
        let mut estimated_total = 0u64;
        for src in self.sg_sources(ctx) {
            let Some(n) = ctx.source_parallelism(&src) else {
                return;
            };
            if n == 0 {
                continue;
            }
            let reports: Vec<u64> = self
                .stats
                .iter()
                .filter(|((v, _), _)| *v == src)
                .map(|(_, &b)| b)
                .collect();
            let needed = (((n as f64) * self.config.stats_fraction).ceil() as usize).max(1);
            if reports.len() < needed {
                return; // wait for this source's share of statistics
            }
            let observed: u64 = reports.iter().sum();
            estimated_total += (observed as f64 * n as f64 / reports.len() as f64) as u64;
        }
        let desired = (estimated_total / self.config.desired_bytes_per_task.max(1)).max(1) as usize;
        if std::env::var("TEZ_DEBUG_AUTO").is_ok() {
            eprintln!(
                "[auto {}] stats={} est={} desired_per_task={} desired={} current={:?}",
                ctx.vertex_name(),
                self.stats.len(),
                estimated_total,
                self.config.desired_bytes_per_task,
                desired,
                ctx.parallelism()
            );
        }
        let current = ctx.parallelism().expect("shuffle vertex has parallelism");
        if desired < current {
            // Producers keep emitting `current` partitions; fewer consumer
            // tasks each gather a contiguous range.
            let routing: Vec<(String, Arc<dyn EdgeManagerPlugin>)> = self
                .sg_sources(ctx)
                .into_iter()
                .map(|s| {
                    (
                        s,
                        Arc::new(GroupedScatterGatherEdgeManager {
                            orig_partitions: current,
                        }) as Arc<dyn EdgeManagerPlugin>,
                    )
                })
                .collect();
            ctx.reconfigure(desired, routing);
            self.reconfigured = true;
        } else {
            // Enough data for the current width; stop re-evaluating.
            self.reconfigured = true;
        }
    }

    fn maybe_schedule(&mut self, ctx: &mut dyn VertexManagerContext) {
        if !self.started {
            return;
        }
        // Auto-parallelism must settle before the first schedule: once a
        // task is scheduled, reconfiguration is illegal. Hold scheduling
        // until enough statistics arrived (or every producer finished, at
        // which point whatever exists must do).
        if self.config.auto_parallelism && !self.reconfigured && ctx.scheduled_tasks() == 0 {
            self.maybe_auto_reduce(ctx);
            if !self.reconfigured {
                let all_done = self.sg_sources(ctx).iter().all(|s| {
                    ctx.source_parallelism(s)
                        .is_some_and(|n| ctx.completed_source_tasks(s) >= n)
                });
                if !all_done {
                    return; // wait for more producer statistics
                }
                self.reconfigured = true; // proceed at current width
            }
        }
        // Blocking (broadcast/custom/1-1) sources must be fully complete.
        for s in self.blocking_sources(ctx) {
            match ctx.source_parallelism(&s) {
                Some(n) if ctx.completed_source_tasks(&s) >= n => {}
                _ => return,
            }
        }
        let Some(total) = self.total_sg_tasks(ctx) else {
            return;
        };
        let n = ctx.parallelism().expect("resolved");
        let target = if total == 0 {
            n
        } else {
            let completed: usize = self
                .sg_sources(ctx)
                .iter()
                .map(|s| ctx.completed_source_tasks(s))
                .sum();
            let frac = completed as f64 / total as f64;
            if frac + 1e-9 < self.config.slowstart_min {
                0
            } else if frac + 1e-9 >= self.config.slowstart_max {
                n
            } else {
                let span = (self.config.slowstart_max - self.config.slowstart_min).max(1e-9);
                let t = (frac - self.config.slowstart_min) / span;
                // At least one task starts as soon as the window opens.
                ((n as f64 * t).ceil() as usize).clamp(1, n)
            }
        };
        let already = ctx.scheduled_tasks();
        if target > already {
            ctx.schedule_tasks((already..target).collect());
        }
    }
}

impl VertexManager for ShuffleVertexManager {
    fn initialize(&mut self, ctx: &mut dyn VertexManagerContext) {
        if ctx.parallelism().is_some() {
            return;
        }
        // Heuristic default when the DAG left parallelism open: one task
        // per source task, capped at twice the cluster slots.
        if let Some(total) = self.total_sg_tasks(ctx) {
            let cap = (ctx.total_slots() * 2).max(1);
            ctx.reconfigure(total.clamp(1, cap), Vec::new());
        }
    }

    fn on_vertex_started(&mut self, ctx: &mut dyn VertexManagerContext) {
        self.started = true;
        self.maybe_schedule(ctx);
    }

    fn on_source_task_completed(
        &mut self,
        _src: &SourceTaskAttempt,
        ctx: &mut dyn VertexManagerContext,
    ) {
        self.maybe_schedule(ctx);
    }

    fn on_event(
        &mut self,
        src: &SourceTaskAttempt,
        payload: &[u8],
        ctx: &mut dyn VertexManagerContext,
    ) {
        // Producer output statistics: total scaled bytes of its partitions.
        let mut r = PayloadReader::new(payload);
        let bytes = r.get_u64();
        self.stats.insert((src.vertex.clone(), src.task), bytes);
        self.maybe_auto_reduce(ctx);
    }
}

/// Encode a producer-statistics event payload for the shuffle manager.
pub fn producer_stats_payload(total_bytes: u64) -> bytes::Bytes {
    let mut w = PayloadWriter::new();
    w.put_u64(total_bytes);
    w.finish_bytes()
}

/// A registry with every built-in component: shuffle IOs, vertex managers,
/// and the split initializer. Engines extend this with their processors.
pub fn standard_registry() -> ComponentRegistry {
    let mut r = ComponentRegistry::new();
    tez_shuffle::register_builtins(&mut r);
    r.register_vertex_manager(vm_kinds::ROOT_INPUT, |_p| {
        Box::<RootInputVertexManager>::default()
    });
    r.register_vertex_manager(vm_kinds::ONE_TO_ONE, |_p| {
        Box::<OneToOneVertexManager>::default()
    });
    r.register_vertex_manager(vm_kinds::IMMEDIATE, |_p| {
        Box::<ImmediateStartVertexManager>::default()
    });
    r.register_vertex_manager(vm_kinds::SHUFFLE, |p| {
        Box::new(ShuffleVertexManager::new(
            ShuffleVertexManagerConfig::from_payload(p),
        ))
    });
    r.register_initializer(crate::initializers::kinds::HDFS_SPLITS, |p| {
        Box::new(crate::initializers::HdfsSplitInitializer::from_payload(p))
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted mock context.
    struct MockCtx {
        parallelism: Option<usize>,
        sources: Vec<(String, SourceKind, usize, usize)>, // name, kind, tasks, completed
        scheduled: Vec<usize>,
        reconfigured_to: Option<usize>,
        slots: usize,
    }

    impl MockCtx {
        fn new(parallelism: usize) -> Self {
            MockCtx {
                parallelism: Some(parallelism),
                sources: vec![],
                scheduled: vec![],
                reconfigured_to: None,
                slots: 100,
            }
        }

        fn with_source(mut self, name: &str, kind: SourceKind, tasks: usize) -> Self {
            self.sources.push((name.into(), kind, tasks, 0));
            self
        }

        fn complete(&mut self, name: &str, n: usize) {
            for s in &mut self.sources {
                if s.0 == name {
                    s.3 = n;
                }
            }
        }
    }

    impl VertexManagerContext for MockCtx {
        fn vertex_name(&self) -> &str {
            "v"
        }
        fn parallelism(&self) -> Option<usize> {
            self.parallelism
        }
        fn source_vertices(&self) -> Vec<String> {
            self.sources.iter().map(|s| s.0.clone()).collect()
        }
        fn source_parallelism(&self, vertex: &str) -> Option<usize> {
            self.sources.iter().find(|s| s.0 == vertex).map(|s| s.2)
        }
        fn completed_source_tasks(&self, vertex: &str) -> usize {
            self.sources
                .iter()
                .find(|s| s.0 == vertex)
                .map_or(0, |s| s.3)
        }
        fn source_edge_kind(&self, vertex: &str) -> Option<SourceKind> {
            self.sources.iter().find(|s| s.0 == vertex).map(|s| s.1)
        }
        fn root_input_splits(&self, _source: &str) -> Option<usize> {
            None
        }
        fn reconfigure(
            &mut self,
            parallelism: usize,
            _routing: Vec<(String, Arc<dyn EdgeManagerPlugin>)>,
        ) {
            assert!(self.scheduled.is_empty(), "reconfigure after scheduling");
            self.parallelism = Some(parallelism);
            self.reconfigured_to = Some(parallelism);
        }
        fn schedule_tasks(&mut self, tasks: Vec<usize>) {
            self.scheduled.extend(tasks);
        }
        fn scheduled_tasks(&self) -> usize {
            self.scheduled.len()
        }
        fn total_slots(&self) -> usize {
            self.slots
        }
    }

    fn src(task: usize) -> SourceTaskAttempt {
        SourceTaskAttempt {
            vertex: "map".into(),
            task,
        }
    }

    #[test]
    fn root_manager_sets_parallelism_from_splits_and_schedules() {
        let mut ctx = MockCtx::new(0);
        ctx.parallelism = None;
        let mut vm = RootInputVertexManager::default();
        vm.initialize(&mut ctx);
        vm.on_root_input_initialized("in", 7, &mut ctx);
        assert_eq!(ctx.parallelism, Some(7));
        vm.on_vertex_started(&mut ctx);
        assert_eq!(ctx.scheduled.len(), 7);
    }

    #[test]
    fn one_to_one_copies_parallelism_and_follows_completions() {
        let mut ctx = MockCtx::new(0).with_source("map", SourceKind::OneToOne, 4);
        ctx.parallelism = None;
        let mut vm = OneToOneVertexManager;
        vm.initialize(&mut ctx);
        assert_eq!(ctx.parallelism, Some(4));
        vm.on_source_task_completed(&src(2), &mut ctx);
        assert_eq!(ctx.scheduled, vec![2]);
    }

    #[test]
    fn shuffle_slow_start_window() {
        let cfg = ShuffleVertexManagerConfig {
            auto_parallelism: false,
            slowstart_min: 0.25,
            slowstart_max: 0.75,
            ..Default::default()
        };
        let mut ctx = MockCtx::new(10).with_source("map", SourceKind::ScatterGather, 100);
        let mut vm = ShuffleVertexManager::new(cfg);
        vm.initialize(&mut ctx);
        vm.on_vertex_started(&mut ctx);
        assert!(ctx.scheduled.is_empty(), "0% complete: nothing scheduled");

        ctx.complete("map", 24);
        vm.on_source_task_completed(&src(0), &mut ctx);
        assert!(ctx.scheduled.is_empty(), "below min fraction");

        ctx.complete("map", 50);
        vm.on_source_task_completed(&src(1), &mut ctx);
        let mid = ctx.scheduled.len();
        assert!(mid > 0 && mid < 10, "partial schedule at 50%: {mid}");

        ctx.complete("map", 75);
        vm.on_source_task_completed(&src(2), &mut ctx);
        assert_eq!(ctx.scheduled.len(), 10, "everything at max fraction");
    }

    #[test]
    fn shuffle_waits_for_broadcast_sources() {
        let cfg = ShuffleVertexManagerConfig {
            auto_parallelism: false,
            slowstart_min: 0.0,
            slowstart_max: 0.0,
            ..Default::default()
        };
        let mut ctx = MockCtx::new(4)
            .with_source("map", SourceKind::ScatterGather, 10)
            .with_source("dim", SourceKind::Broadcast, 2);
        let mut vm = ShuffleVertexManager::new(cfg);
        vm.initialize(&mut ctx);
        ctx.complete("map", 10);
        vm.on_vertex_started(&mut ctx);
        assert!(ctx.scheduled.is_empty(), "broadcast source incomplete");
        ctx.complete("dim", 2);
        vm.on_source_task_completed(
            &SourceTaskAttempt {
                vertex: "dim".into(),
                task: 1,
            },
            &mut ctx,
        );
        assert_eq!(ctx.scheduled.len(), 4);
    }

    #[test]
    fn auto_parallelism_shrinks_from_stats() {
        let cfg = ShuffleVertexManagerConfig {
            auto_parallelism: true,
            desired_bytes_per_task: 1000,
            stats_fraction: 0.5,
            slowstart_min: 1.0,
            slowstart_max: 1.0,
        };
        // 100 initial partitions, 4 producers each emitting ~500 bytes:
        // total ≈ 2000 → 2 tasks desired.
        let mut ctx = MockCtx::new(100).with_source("map", SourceKind::ScatterGather, 4);
        let mut vm = ShuffleVertexManager::new(cfg);
        vm.initialize(&mut ctx);
        vm.on_vertex_started(&mut ctx);
        vm.on_event(&src(0), &producer_stats_payload(500), &mut ctx);
        assert!(ctx.reconfigured_to.is_none(), "not enough stats yet");
        vm.on_event(&src(1), &producer_stats_payload(500), &mut ctx);
        assert_eq!(ctx.reconfigured_to, Some(2));
        assert_eq!(ctx.parallelism, Some(2));
    }

    #[test]
    fn auto_parallelism_never_grows() {
        let cfg = ShuffleVertexManagerConfig {
            auto_parallelism: true,
            desired_bytes_per_task: 1,
            stats_fraction: 0.25,
            ..Default::default()
        };
        let mut ctx = MockCtx::new(2).with_source("map", SourceKind::ScatterGather, 4);
        let mut vm = ShuffleVertexManager::new(cfg);
        vm.initialize(&mut ctx);
        vm.on_event(&src(0), &producer_stats_payload(1_000_000), &mut ctx);
        assert!(
            ctx.reconfigured_to.is_none(),
            "desired > current keeps width"
        );
        assert_eq!(ctx.parallelism, Some(2));
    }

    #[test]
    fn shuffle_default_parallelism_heuristic() {
        let mut ctx = MockCtx::new(0).with_source("map", SourceKind::ScatterGather, 40);
        ctx.parallelism = None;
        ctx.slots = 8;
        let mut vm = ShuffleVertexManager::new(ShuffleVertexManagerConfig::default());
        vm.initialize(&mut ctx);
        // min(40, 2*8) = 16.
        assert_eq!(ctx.parallelism, Some(16));
    }

    #[test]
    fn config_payload_roundtrip() {
        let cfg = ShuffleVertexManagerConfig {
            auto_parallelism: false,
            desired_bytes_per_task: 12345,
            stats_fraction: 0.33,
            slowstart_min: 0.1,
            slowstart_max: 0.9,
        };
        let decoded = ShuffleVertexManagerConfig::from_payload(&cfg.to_payload());
        assert_eq!(decoded.auto_parallelism, cfg.auto_parallelism);
        assert_eq!(decoded.desired_bytes_per_task, 12345);
        assert!((decoded.stats_fraction - 0.33).abs() < 1e-12);
    }

    #[test]
    fn standard_registry_has_builtins() {
        let r = standard_registry();
        assert!(r
            .create_vertex_manager(vm_kinds::SHUFFLE, &UserPayload::empty())
            .is_ok());
        assert!(r
            .create_vertex_manager(vm_kinds::ROOT_INPUT, &UserPayload::empty())
            .is_ok());
    }
}
