//! The DAG ApplicationMaster (paper §4.1): the YARN app that orchestrates
//! DAG execution.
//!
//! One `DagAppMaster` executes a sequence of DAGs (a *session*, §4.2),
//! driving for each: input initialization and split calculation, vertex
//! manager callbacks, locality-aware container acquisition with reuse and
//! pre-warming, task-attempt execution over the real data plane, event
//! routing, speculation, deadlock detection, and fault tolerance by task
//! re-execution with `InputReadError` back-tracking (§4.3).
//!
//! The AM is a deterministic event-driven state machine over
//! [`tez_yarn::AppEvent`]s. Task IPO pipelines run against the real data
//! plane on a [`tez_yarn::WorkerPool`]: at launch the payload is submitted
//! to the pool and the attempt parks in [`AState::Launching`] until the
//! same-instant [`AppEvent::PayloadReady`] event joins the handle. The
//! join happens at the same simulated time and in the same deterministic
//! order as the old synchronous execution, so every simulated outcome —
//! schedule, reports, timeline — is byte-identical at any worker count;
//! only wall-clock time changes. The simulator then charges the modelled
//! cost and delivers completion later, so failure semantics (killed
//! containers, lost nodes, injected faults) discard not-yet-published
//! outputs exactly like a real mid-flight task failure would.

use crate::config::TezConfig;
use crate::executor::run_task;
use crate::objreg::RegistryState;
use crate::report::{DagReport, DagStatus, VertexReport};
use crate::vertex_managers::{producer_stats_payload, vm_kinds};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use tez_dag::{Dag, DataMovement, EdgeManagerPlugin, EdgeRoutingContext};
use tez_runtime::metrics::{metric_names, Histogram, MetricsRegistry};
use tez_runtime::timeline::{EventKind as TlEvent, Timeline};
use tez_runtime::{
    AttemptSpan, ComponentRegistry, ContainerStats, Counters, Dfs, EdgeStats, InitializerContext,
    InitializerResult, InputInitializer, InputSource, InputSpec, InputSplit, OutboundEvent,
    OutputSpec, RunReport, SchedulerStats, SecurityToken, ShardLocator, SinkArtifact, SourceKind,
    SourceTaskAttempt, TaskEnv, TaskError, TaskMeta, TaskOutcome, TaskSpec, VertexManager,
    VertexManagerContext,
};
use tez_shuffle::{
    FetchRetry, FetchRetryPolicy, FetchSample, RetryingFetcher, SharedDataService, SplitPayload,
};
use tez_yarn::{
    resolve_workers, AppContext, AppEvent, AppStatus, ClusterSpec, Container, ContainerId,
    ContainerRequest, NodeId, RequestId, SimTime, TaskHandle, WorkCost, WorkId, WorkOutcome,
    WorkerPool, YarnApp,
};

const TIMER_SPECULATION: u64 = 1;
const TIMER_DEADLOCK: u64 = 2;
const TIMER_IDLE_SWEEP: u64 = 3;
const TIMER_AM_FAIL: u64 = 4;
const TIMER_AM_RESTART: u64 = 5;
const TIMER_NEXT_DAG: u64 = 6;

/// One DAG queued on the AM.
pub struct DagSubmission {
    /// The validated DAG.
    pub dag: Dag,
}

/// Results shared back to the client after the simulation runs.
#[derive(Default)]
pub struct SessionOutput {
    /// One report per completed DAG, in submission order.
    pub reports: Vec<DagReport>,
    /// Hierarchical metrics rollup (task → vertex → DAG → app) across the
    /// whole session; refreshed after every completed DAG.
    pub metrics: MetricsRegistry,
}

/// Shared handle to [`SessionOutput`].
pub type SharedSessionOutput = Arc<Mutex<SessionOutput>>;

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// Everything the data-plane payload of one attempt produced, carried from
/// the worker thread back to the control plane.
struct PayloadResult {
    outcome: Result<TaskOutcome, TaskError>,
    fetch_retries: u64,
    fetch_backoff_ms: u64,
    retry_log: Vec<FetchRetry>,
    fetch_samples: Vec<FetchSample>,
}

/// A payload in flight between submission and its `PayloadReady` join.
enum PayloadSlot {
    /// Running on the worker pool.
    Pool(TaskHandle<PayloadResult>),
    /// Ran inline on the control thread. Used when the data service holds
    /// injected transient failures, which are consumed in fetch order —
    /// concurrent fetchers would race for them nondeterministically.
    Ready(Box<PayloadResult>),
}

impl std::fmt::Debug for PayloadSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadSlot::Pool(_) => f.write_str("Pool(..)"),
            PayloadSlot::Ready(_) => f.write_str("Ready(..)"),
        }
    }
}

#[derive(Debug)]
enum AState {
    /// Waiting for a container (either a pending RM request or the pool).
    Requesting(Option<RequestId>),
    /// Holding a container, waiting for input shards (slow-start overlap).
    WaitingInputs {
        container: ContainerId,
        since: SimTime,
    },
    /// Payload submitted to the worker pool; the same-instant
    /// `PayloadReady` event joins it. `since` is the preceding
    /// `WaitingInputs` timestamp (overlap credit for the cost model).
    Launching {
        container: ContainerId,
        since: SimTime,
        payload: PayloadSlot,
    },
    /// Work launched in the simulator; outputs held until completion.
    Running {
        container: ContainerId,
        work: WorkId,
        outcome: Box<TaskOutcome>,
    },
    /// Terminal (success, failure or kill).
    Done,
}

struct AttemptRt {
    state: AState,
    started_at: SimTime,
    /// Whether this attempt was spawned by the speculator (a backup for a
    /// straggling sibling). Carried onto the run report's attempt spans so
    /// speculation winners/losers can be classified.
    speculative: bool,
}

/// Control-plane context for a submitted payload, keyed by ticket. The
/// `dag_gen` + state checks at join time discard results whose attempt was
/// superseded (DAG finished, AM failed, sibling won) before the join.
struct PayloadTicket {
    dag_gen: usize,
    vidx: usize,
    task: usize,
    attempt: usize,
    spec: Box<TaskSpec>,
    works_run: u64,
}

struct TaskRt {
    scheduled: bool,
    done: bool,
    attempts: Vec<AttemptRt>,
    /// Routed input locators, one slot per in-edge (in `in_edge_indices`
    /// order), each sized to the edge manager's physical input count.
    inputs: Vec<Vec<Option<ShardLocator>>>,
    /// Splits per data source (root vertices), in data-source order.
    splits: Vec<InputSplit>,
    /// `(edge index, node, output id)` of published outputs.
    published: Vec<(usize, u32, u64)>,
    failures: usize,
}

struct InitSlot {
    source: String,
    init: Option<Box<dyn InputInitializer>>,
    splits: Option<Vec<InputSplit>>,
}

struct VertexRt {
    name: String,
    parallelism: Option<usize>,
    stats_scale: Option<f64>,
    vm: Option<Box<dyn VertexManager>>,
    vm_initialized: bool,
    started: bool,
    initializers: Vec<InitSlot>,
    tasks: Vec<TaskRt>,
    completed: usize,
    /// Sum/count of completed attempt durations (speculation baseline).
    duration_sum: u64,
    duration_count: u64,
    attempts_total: usize,
    failed_attempts: usize,
    first_launch: Option<SimTime>,
    last_finish: Option<SimTime>,
}

struct DagRun {
    dag: Dag,
    submitted: SimTime,
    vertices: Vec<VertexRt>,
    edge_managers: Vec<Arc<dyn EdgeManagerPlugin>>,
    /// Published locators per edge: `src_task -> partition -> locator`.
    publications: Vec<HashMap<usize, Vec<ShardLocator>>>,
    sink_artifacts: Vec<SinkArtifact>,
    counters: Counters,
    containers_allocated: usize,
    warm_starts: usize,
    speculative_attempts: usize,
    reexecuted_tasks: usize,
    failed: Option<String>,
    /// Scheduler stats snapshot at DAG start; the run report carries the
    /// delta accumulated while this DAG ran.
    sched_base: SchedulerStats,
    /// RM queue-wait histogram snapshot at DAG start (same delta pattern
    /// as `sched_base`).
    wait_hist_base: Histogram,
    /// Worker-pool submission count at DAG start; the delta becomes the
    /// DAG's `POOL_JOBS_SUBMITTED` metric.
    pool_jobs_base: u64,
    container_stats: ContainerStats,
    /// Data-plane stats keyed by `(src, dst)` vertex names.
    edge_stats: BTreeMap<(String, String), EdgeStats>,
    /// Per-vertex counter rollups (the aggregation level between the raw
    /// task bags and `counters`).
    vertex_counters: BTreeMap<String, Counters>,
    attempt_spans: Vec<AttemptSpan>,
    /// Timeline length when this DAG was submitted; the run report carries
    /// the slice of events recorded since.
    timeline_base: usize,
}

struct ContainerRt {
    node: NodeId,
    idle_since: Option<SimTime>,
}

/// The DAG ApplicationMaster.
pub struct DagAppMaster {
    config: TezConfig,
    registry: Arc<ComponentRegistry>,
    service: SharedDataService,
    objreg: Arc<RegistryState>,
    token: SecurityToken,
    output: SharedSessionOutput,
    pending_dags: VecDeque<DagSubmission>,
    dag_index: usize,
    run: Option<DagRun>,
    /// Live containers. Ordered so bulk operations (between-DAG releases,
    /// idle sweeps, AM-failure teardown) walk them deterministically — the
    /// timeline records each release.
    containers: BTreeMap<ContainerId, ContainerRt>,
    request_map: HashMap<RequestId, (usize, usize, usize)>,
    work_map: HashMap<WorkId, (usize, usize, usize)>,
    /// Launch time of every in-flight work item (attempt-span tracking).
    work_started: HashMap<WorkId, SimTime>,
    /// Producer identity of every published output id.
    output_registry: HashMap<u64, (usize, usize)>,
    /// Fixed pool of OS threads running data-plane payloads.
    pool: WorkerPool,
    /// Hierarchical metrics rollup, mirrored into the session output after
    /// every completed DAG.
    metrics: MetricsRegistry,
    /// In-flight payloads awaiting their `PayloadReady` join.
    payload_tickets: HashMap<u64, PayloadTicket>,
    next_ticket: u64,
    prewarm_outstanding: usize,
    prewarm_requested: usize,
    speculation_timer_armed: bool,
    deadlock_timer_armed: bool,
    idle_timer_armed: bool,
    am_failed: bool,
    am_recovering: bool,
    finished: bool,
}

impl DagAppMaster {
    /// Build an AM over the shared services, queuing the given DAGs.
    pub fn new(
        config: TezConfig,
        registry: ComponentRegistry,
        service: SharedDataService,
        token: SecurityToken,
        dags: Vec<DagSubmission>,
        output: SharedSessionOutput,
    ) -> Self {
        service.register_token(token);
        let pool = WorkerPool::new(resolve_workers(config.workers));
        DagAppMaster {
            config,
            registry: Arc::new(registry),
            service,
            objreg: RegistryState::new(),
            token,
            output,
            pending_dags: dags.into(),
            dag_index: 0,
            run: None,
            containers: BTreeMap::new(),
            request_map: HashMap::new(),
            work_map: HashMap::new(),
            work_started: HashMap::new(),
            output_registry: HashMap::new(),
            pool,
            metrics: MetricsRegistry::new(),
            payload_tickets: HashMap::new(),
            next_ticket: 0,
            prewarm_outstanding: 0,
            prewarm_requested: 0,
            speculation_timer_armed: false,
            deadlock_timer_armed: false,
            idle_timer_armed: false,
            am_failed: false,
            am_recovering: false,
            finished: false,
        }
    }

    /// Effective statistics scale of a vertex (pinned or the global one).
    fn vertex_scale(run: &DagRun, config: &TezConfig, vidx: usize) -> f64 {
        run.vertices[vidx].stats_scale.unwrap_or(config.byte_scale)
    }

    // -- vertex-manager plumbing -------------------------------------------

    fn pick_builtin_vm(dag: &Dag, vidx: usize) -> &'static str {
        let v = dag.vertex(vidx);
        if v.data_sources.iter().any(|s| s.initializer.is_some()) {
            return vm_kinds::ROOT_INPUT;
        }
        let mut has_sg = false;
        for &e in dag.in_edge_indices(vidx) {
            match dag.edge(e).property.movement {
                DataMovement::OneToOne => return vm_kinds::ONE_TO_ONE,
                DataMovement::ScatterGather | DataMovement::Custom { .. } => has_sg = true,
                DataMovement::Broadcast => {}
            }
        }
        if has_sg {
            vm_kinds::SHUFFLE
        } else if dag.in_edge_indices(vidx).is_empty() {
            vm_kinds::IMMEDIATE
        } else {
            // Broadcast-only consumers behave like shuffle consumers with
            // no slow-start sources: they wait for the broadcast to finish.
            vm_kinds::SHUFFLE
        }
    }

    fn source_kind(dag: &Dag, vidx: usize, source: &str) -> Option<SourceKind> {
        for &e in dag.in_edge_indices(vidx) {
            let edge = dag.edge(e);
            if edge.src == source {
                return Some(match edge.property.movement {
                    DataMovement::OneToOne => SourceKind::OneToOne,
                    DataMovement::Broadcast => SourceKind::Broadcast,
                    DataMovement::ScatterGather => SourceKind::ScatterGather,
                    DataMovement::Custom { .. } => SourceKind::Custom,
                });
            }
        }
        None
    }

    // -- DAG lifecycle ------------------------------------------------------

    fn start_next_dag(&mut self, ctx: &mut AppContext<'_>) {
        let Some(submission) = self.pending_dags.pop_front() else {
            self.finish_session(ctx);
            return;
        };
        let dag = submission.dag;
        // An unregistered custom edge manager fails this DAG (with a report
        // the client can inspect) rather than crashing the whole AM, which
        // in session mode would take down every queued DAG with it.
        let mut setup_error: Option<String> = None;
        let mut edge_managers = Vec::with_capacity(dag.edges().len());
        for e in dag.edges() {
            let mgr = match &e.property.movement {
                DataMovement::Custom { manager } => match self
                    .registry
                    .create_edge_manager(&manager.kind, &manager.payload)
                {
                    Ok(m) => m,
                    Err(err) => {
                        setup_error
                            .get_or_insert_with(|| format!("edge {} -> {}: {err}", e.src, e.dst));
                        // Placeholder so indices stay aligned; the run is
                        // failed before any routing happens.
                        tez_dag::edge::builtin_edge_manager(&DataMovement::Broadcast)
                            .expect("builtin")
                    }
                },
                m => tez_dag::edge::builtin_edge_manager(m).expect("builtin"),
            };
            edge_managers.push(mgr);
        }
        let mut vertices = Vec::with_capacity(dag.num_vertices());
        for (vidx, v) in dag.vertices().iter().enumerate() {
            let vm_desc = v.vertex_manager.clone().unwrap_or_else(|| {
                let kind = Self::pick_builtin_vm(&dag, vidx);
                if kind == vm_kinds::SHUFFLE {
                    // Auto-reduction changes this vertex's parallelism; a
                    // one-to-one consumer pins it, so disable shrinking.
                    let pinned = dag
                        .out_edge_indices(vidx)
                        .iter()
                        .any(|&e| matches!(dag.edge(e).property.movement, DataMovement::OneToOne));
                    // Wire the orchestrator config into the default manager.
                    let payload = crate::vertex_managers::ShuffleVertexManagerConfig {
                        auto_parallelism: self.config.auto_parallelism && !pinned,
                        desired_bytes_per_task: self.config.desired_bytes_per_reducer,
                        stats_fraction: self.config.auto_parallelism_stats_fraction,
                        slowstart_min: self.config.slowstart_min_fraction,
                        slowstart_max: self.config.slowstart_max_fraction,
                    }
                    .to_payload();
                    tez_dag::NamedDescriptor::with_payload(kind, payload)
                } else {
                    tez_dag::NamedDescriptor::new(kind)
                }
            });
            let vm = self
                .registry
                .create_vertex_manager(&vm_desc.kind, &vm_desc.payload)
                .expect("vertex manager not registered");
            let initializers = v
                .data_sources
                .iter()
                .filter_map(|s| {
                    s.initializer.as_ref().map(|d| InitSlot {
                        source: s.name.clone(),
                        init: Some(
                            self.registry
                                .create_initializer(&d.kind, &d.payload)
                                .expect("initializer not registered"),
                        ),
                        splits: None,
                    })
                })
                .collect();
            vertices.push(VertexRt {
                name: v.name.clone(),
                parallelism: v.parallelism.fixed(),
                stats_scale: v.stats_scale,
                vm: Some(vm),
                vm_initialized: false,
                started: false,
                initializers,
                tasks: Vec::new(),
                completed: 0,
                duration_sum: 0,
                duration_count: 0,
                attempts_total: 0,
                failed_attempts: 0,
                first_launch: None,
                last_finish: None,
            });
        }
        let publications = vec![HashMap::new(); dag.edges().len()];
        let timeline_base = ctx.timeline_len();
        // Register the DAG scope up front so a DAG that fails before any
        // sample still appears in the metrics export.
        self.metrics.begin_dag(dag.name());
        ctx.record_event(TlEvent::DagSubmitted {
            dag: dag.name().to_string(),
        });
        for e in dag.edges() {
            ctx.record_event(TlEvent::EdgeDefined {
                src: e.src.clone(),
                dst: e.dst.clone(),
                movement: movement_name(&e.property.movement).to_string(),
            });
        }
        self.run = Some(DagRun {
            dag,
            submitted: ctx.now(),
            vertices,
            edge_managers,
            publications,
            sink_artifacts: Vec::new(),
            counters: Counters::new(),
            containers_allocated: 0,
            warm_starts: 0,
            speculative_attempts: 0,
            reexecuted_tasks: 0,
            failed: None,
            sched_base: ctx.scheduler_stats(),
            wait_hist_base: ctx.queue_wait_histogram(),
            pool_jobs_base: self.pool.jobs_submitted(),
            container_stats: ContainerStats::default(),
            edge_stats: BTreeMap::new(),
            vertex_counters: BTreeMap::new(),
            attempt_spans: Vec::new(),
            timeline_base,
        });
        if let Some(reason) = setup_error {
            self.fail_dag(ctx, reason);
            return;
        }
        self.run_initializers(ctx);
        self.resolve_vertices(ctx);
        self.arm_timers(ctx);
    }

    fn arm_timers(&mut self, ctx: &mut AppContext<'_>) {
        if self.config.speculation && !self.speculation_timer_armed {
            self.speculation_timer_armed = true;
            ctx.set_timer(self.config.speculation_interval_ms, TIMER_SPECULATION);
        }
        if !self.deadlock_timer_armed {
            self.deadlock_timer_armed = true;
            ctx.set_timer(self.config.deadlock_check_ms, TIMER_DEADLOCK);
        }
    }

    fn run_initializers(&mut self, ctx: &mut AppContext<'_>) {
        let run = self.run.as_mut().expect("active dag");
        let total_slots = ctx.total_slots(&self.config.task_resource());
        let nodes = ctx.alive_nodes();
        for v in &mut run.vertices {
            for slot in &mut v.initializers {
                if slot.splits.is_some() {
                    continue;
                }
                let mut init = slot.init.take().expect("initializer present");
                let result = {
                    let mut ictx = InitCtx {
                        dfs: ctx.hdfs(),
                        nodes,
                        slots: total_slots,
                        vertex: &v.name,
                        counters: &mut run.counters,
                    };
                    init.initialize(&mut ictx)
                };
                slot.init = Some(init);
                match result {
                    Ok(InitializerResult::Ready(splits)) => slot.splits = Some(splits),
                    Ok(InitializerResult::Waiting) => {}
                    Err(e) => {
                        run.failed = Some(format!("initializer for {}: {e}", v.name));
                    }
                }
            }
        }
        if let Some(reason) = run.failed.clone() {
            self.fail_dag(ctx, reason);
        }
    }

    /// Fixpoint vertex resolution: run VM `initialize`/root-splits
    /// callbacks until no vertex changes, creating task arrays and starting
    /// vertices as their parallelism resolves.
    fn resolve_vertices(&mut self, ctx: &mut AppContext<'_>) {
        loop {
            let Some(run) = self.run.as_ref() else { return };
            let mut action: Option<(usize, VmCall)> = None;
            for vidx in run.dag.topological_order().to_vec() {
                let v = &run.vertices[vidx];
                if !v.vm_initialized {
                    action = Some((vidx, VmCall::Initialize));
                    break;
                }
                if v.parallelism.is_none() {
                    // Root splits ready but not yet reported to the VM?
                    if v.initializers.iter().any(|s| s.splits.is_some()) {
                        if !v.initializers.iter().all(|s| s.splits.is_some()) {
                            continue; // waiting on a pruning event
                        }
                        action = Some((vidx, VmCall::RootSplits));
                        break;
                    }
                    // Otherwise retry initialize (o2o chains resolve late).
                    action = Some((vidx, VmCall::Initialize));
                    break;
                }
                if !v.started {
                    action = Some((vidx, VmCall::Start));
                    break;
                }
            }
            let Some((vidx, call)) = action else { return };
            let before = self.vertex_fingerprint(vidx);
            match call {
                VmCall::Initialize => {
                    self.with_vm(ctx, vidx, |vm, vmctx| vm.initialize(vmctx));
                    self.run.as_mut().unwrap().vertices[vidx].vm_initialized = true;
                }
                VmCall::RootSplits => {
                    let reports: Vec<(String, usize)> = {
                        let v = &self.run.as_ref().unwrap().vertices[vidx];
                        v.initializers
                            .iter()
                            .map(|s| (s.source.clone(), s.splits.as_ref().unwrap().len()))
                            .collect()
                    };
                    for (source, n) in reports {
                        self.with_vm(ctx, vidx, |vm, vmctx| {
                            vm.on_root_input_initialized(&source, n, vmctx)
                        });
                    }
                    // If the VM didn't decide (custom manager), parallelism
                    // falls back to the split count.
                    let v = &mut self.run.as_mut().unwrap().vertices[vidx];
                    if v.parallelism.is_none() {
                        let n = v
                            .initializers
                            .iter()
                            .map(|s| s.splits.as_ref().unwrap().len())
                            .max()
                            .unwrap_or(1)
                            .max(1);
                        v.parallelism = Some(n);
                    }
                }
                VmCall::Start => {
                    self.materialize_tasks(vidx);
                    let (vertex, parallelism) = {
                        let v = &mut self.run.as_mut().unwrap().vertices[vidx];
                        v.started = true;
                        (v.name.clone(), v.parallelism.unwrap_or(0) as u64)
                    };
                    ctx.record_event(TlEvent::VertexStarted {
                        vertex,
                        parallelism,
                    });
                    self.with_vm(ctx, vidx, |vm, vmctx| vm.on_vertex_started(vmctx));
                    self.check_vertex_complete(ctx, vidx);
                }
            }
            if self.run.is_none() {
                return;
            }
            // Guard against livelock: an initialize that changed nothing on
            // an unresolved vertex must not spin. `vm_initialized` flips on
            // the first pass; later no-op passes break out here.
            if before == self.vertex_fingerprint(vidx)
                && matches!(call, VmCall::Initialize)
                && self.run.as_ref().unwrap().vertices[vidx]
                    .parallelism
                    .is_none()
            {
                // Try other vertices; if nothing else progresses we are
                // waiting on runtime events (DPP, o2o source), so stop.
                if !self.any_other_progress(ctx, vidx) {
                    return;
                }
            }
        }
    }

    fn vertex_fingerprint(&self, vidx: usize) -> (bool, Option<usize>, bool) {
        let v = &self.run.as_ref().unwrap().vertices[vidx];
        (v.vm_initialized, v.parallelism, v.started)
    }

    /// One sweep over the other vertices; returns whether any progressed.
    fn any_other_progress(&mut self, ctx: &mut AppContext<'_>, skip: usize) -> bool {
        let order = self.run.as_ref().unwrap().dag.topological_order().to_vec();
        for vidx in order {
            if vidx == skip {
                continue;
            }
            let v = &self.run.as_ref().unwrap().vertices[vidx];
            if !v.vm_initialized {
                self.with_vm(ctx, vidx, |vm, vmctx| vm.initialize(vmctx));
                self.run.as_mut().unwrap().vertices[vidx].vm_initialized = true;
                return true;
            }
            if v.parallelism.is_some() && !v.started {
                self.materialize_tasks(vidx);
                let (vertex, parallelism) = {
                    let v = &mut self.run.as_mut().unwrap().vertices[vidx];
                    v.started = true;
                    (v.name.clone(), v.parallelism.unwrap_or(0) as u64)
                };
                ctx.record_event(TlEvent::VertexStarted {
                    vertex,
                    parallelism,
                });
                self.with_vm(ctx, vidx, |vm, vmctx| vm.on_vertex_started(vmctx));
                self.check_vertex_complete(ctx, vidx);
                return true;
            }
        }
        false
    }

    /// Create task runtimes and input routing arrays for a resolved vertex.
    fn materialize_tasks(&mut self, vidx: usize) {
        let run = self.run.as_mut().expect("active dag");
        let n = run.vertices[vidx]
            .parallelism
            .expect("materialize requires resolved parallelism");
        let in_edges = run.dag.in_edge_indices(vidx).to_vec();
        let mut tasks = Vec::with_capacity(n);
        for t in 0..n {
            let mut inputs = Vec::with_capacity(in_edges.len());
            for &e in &in_edges {
                let edge = run.dag.edge(e);
                let src = run.dag.vertex_index(&edge.src).unwrap();
                let src_n = run.vertices[src].parallelism.unwrap_or(0);
                let ctx = EdgeRoutingContext {
                    num_src_tasks: src_n,
                    num_dst_tasks: n,
                };
                let cnt = if src_n == 0 {
                    0
                } else {
                    run.edge_managers[e].num_physical_inputs(&ctx, t)
                };
                inputs.push(vec![None; cnt]);
            }
            // Splits for root data sources.
            let v = run.dag.vertex(vidx);
            let mut splits = Vec::new();
            for slot in &run.vertices[vidx].initializers {
                let ss = slot.splits.as_ref().expect("splits ready before start");
                if let Some(s) = ss.get(t) {
                    splits.push(s.clone());
                } else {
                    splits.push(InputSplit {
                        payload: SplitPayload {
                            path: String::new(),
                            blocks: vec![],
                        }
                        .encode(),
                        hosts: vec![],
                        bytes: 0,
                        records: 0,
                    });
                }
            }
            let _ = v;
            tasks.push(TaskRt {
                scheduled: false,
                done: false,
                attempts: Vec::new(),
                inputs,
                splits,
                published: Vec::new(),
                failures: 0,
            });
        }
        run.vertices[vidx].tasks = tasks;
        // Replay locators producers already published (recovery path and
        // late-resolved vertices).
        for &e in &in_edges {
            self.replay_edge_routing(e);
        }
        // Consumers that materialized while this vertex was still
        // unresolved (e.g. gated behind dynamic partition pruning) sized
        // this edge's input slot to zero; resize them now.
        self.resize_consumer_inputs(vidx);
    }

    /// Re-size consumers' input arrays for edges leaving `vidx` after its
    /// parallelism resolved late.
    fn resize_consumer_inputs(&mut self, vidx: usize) {
        let out_edges = {
            let run = self.run.as_ref().expect("active dag");
            run.dag.out_edge_indices(vidx).to_vec()
        };
        for &e in &out_edges {
            {
                let run = self.run.as_mut().expect("active dag");
                let src_n = run.vertices[vidx].parallelism.expect("resolved");
                let dst = run.dag.vertex_index(&run.dag.edge(e).dst).unwrap();
                let Some(dst_n) = run.vertices[dst].parallelism else {
                    continue;
                };
                if run.vertices[dst].tasks.is_empty() {
                    continue;
                }
                let slot = run
                    .dag
                    .in_edge_indices(dst)
                    .iter()
                    .position(|&x| x == e)
                    .unwrap();
                let rctx = EdgeRoutingContext {
                    num_src_tasks: src_n,
                    num_dst_tasks: dst_n,
                };
                let mgr = run.edge_managers[e].clone();
                for t in 0..dst_n {
                    let want = mgr.num_physical_inputs(&rctx, t);
                    let have = &mut run.vertices[dst].tasks[t].inputs[slot];
                    if have.len() != want {
                        have.resize(want, None);
                    }
                }
            }
            self.replay_edge_routing(e);
        }
    }

    fn replay_edge_routing(&mut self, edge_idx: usize) {
        let run = self.run.as_mut().expect("active dag");
        let edge = run.dag.edge(edge_idx).clone();
        let src = run.dag.vertex_index(&edge.src).unwrap();
        let dst = run.dag.vertex_index(&edge.dst).unwrap();
        let (Some(src_n), Some(dst_n)) =
            (run.vertices[src].parallelism, run.vertices[dst].parallelism)
        else {
            return;
        };
        if run.vertices[dst].tasks.is_empty() {
            return;
        }
        let rctx = EdgeRoutingContext {
            num_src_tasks: src_n,
            num_dst_tasks: dst_n,
        };
        let slot = run
            .dag
            .in_edge_indices(dst)
            .iter()
            .position(|&x| x == edge_idx)
            .unwrap();
        let mgr = run.edge_managers[edge_idx].clone();
        let pubs: Vec<(usize, Vec<ShardLocator>)> = run.publications[edge_idx]
            .iter()
            .map(|(&t, locs)| (t, locs.clone()))
            .collect();
        for (src_task, locs) in pubs {
            for (p, loc) in locs.iter().enumerate() {
                for route in mgr.route(&rctx, src_task, p) {
                    run.vertices[dst].tasks[route.dst_task].inputs[slot][route.dst_input_index] =
                        Some(*loc);
                }
            }
        }
    }

    // -- VM context ---------------------------------------------------------

    fn with_vm<F>(&mut self, ctx: &mut AppContext<'_>, vidx: usize, f: F)
    where
        F: FnOnce(&mut dyn VertexManager, &mut dyn VertexManagerContext),
    {
        let Some(run) = self.run.as_mut() else { return };
        let mut vm = match run.vertices[vidx].vm.take() {
            Some(vm) => vm,
            None => return, // re-entrant VM call; skip
        };
        let view = {
            let dag = &run.dag;
            let v = &run.vertices[vidx];
            VmView {
                vertex: v.name.clone(),
                parallelism: v.parallelism,
                scheduled: v.tasks.iter().filter(|t| t.scheduled).count(),
                sources: dag
                    .in_edge_indices(vidx)
                    .iter()
                    .map(|&e| {
                        let edge = dag.edge(e);
                        let sidx = dag.vertex_index(&edge.src).unwrap();
                        SourceView {
                            name: edge.src.clone(),
                            kind: Self::source_kind(dag, vidx, &edge.src).expect("edge source"),
                            parallelism: run.vertices[sidx].parallelism,
                            completed: run.vertices[sidx].completed,
                        }
                    })
                    .collect(),
                splits: run.vertices[vidx]
                    .initializers
                    .iter()
                    .map(|s| (s.source.clone(), s.splits.as_ref().map(Vec::len)))
                    .collect(),
                slots: ctx.total_slots(&self.config.task_resource()),
            }
        };
        let mut vmctx = VmCtx {
            view,
            actions: Vec::new(),
        };
        f(vm.as_mut(), &mut vmctx);
        let VmCtx { view, actions } = vmctx;
        let _ = view;
        self.run.as_mut().unwrap().vertices[vidx].vm = Some(vm);
        for action in actions {
            match action {
                VmAction::Reconfigure {
                    parallelism,
                    routing,
                } => self.apply_reconfigure(ctx, vidx, parallelism, routing),
                VmAction::Schedule(tasks) => {
                    for t in tasks {
                        self.schedule_task(ctx, vidx, t, false);
                    }
                }
            }
        }
    }

    fn apply_reconfigure(
        &mut self,
        ctx: &mut AppContext<'_>,
        vidx: usize,
        parallelism: usize,
        routing: Vec<(String, Arc<dyn EdgeManagerPlugin>)>,
    ) {
        let run = self.run.as_mut().expect("active dag");
        let v = &mut run.vertices[vidx];
        assert!(
            v.tasks.iter().all(|t| !t.scheduled),
            "reconfigure after scheduling on {}",
            v.name
        );
        v.parallelism = Some(parallelism);
        ctx.record_event(TlEvent::VertexReconfigured {
            vertex: v.name.clone(),
            parallelism: parallelism as u64,
        });
        let in_edges = run.dag.in_edge_indices(vidx).to_vec();
        for (src_name, mgr) in routing {
            for &e in &in_edges {
                if run.dag.edge(e).src == src_name {
                    run.edge_managers[e] = mgr.clone();
                }
            }
        }
        if run.vertices[vidx].started || !run.vertices[vidx].tasks.is_empty() {
            self.materialize_tasks(vidx);
        }
    }

    // -- scheduling ---------------------------------------------------------

    fn task_locality(&self, vidx: usize, task: usize) -> Vec<NodeId> {
        let run = self.run.as_ref().expect("active dag");
        let t = &run.vertices[vidx].tasks[task];
        let mut nodes = Vec::new();
        for split in &t.splits {
            for host in &split.hosts {
                if let Some(n) = ClusterSpec::parse_host(host) {
                    nodes.push(n);
                }
            }
        }
        // One-to-one edges: co-locate with the source task's output.
        for (slot, &e) in run.dag.in_edge_indices(vidx).iter().enumerate() {
            if matches!(run.dag.edge(e).property.movement, DataMovement::OneToOne) {
                if let Some(Some(loc)) = t.inputs.get(slot).and_then(|v| v.first().copied()) {
                    nodes.push(NodeId(loc.node));
                }
            }
        }
        nodes.sort();
        nodes.dedup();
        nodes
    }

    fn schedule_task(
        &mut self,
        ctx: &mut AppContext<'_>,
        vidx: usize,
        task: usize,
        speculative: bool,
    ) {
        {
            let run = self.run.as_mut().expect("active dag");
            let t = &mut run.vertices[vidx].tasks[task];
            if t.done || (t.scheduled && !speculative) {
                return;
            }
            t.scheduled = true;
            if speculative {
                run.speculative_attempts += 1;
            }
        }
        let attempt_idx = {
            let run = self.run.as_mut().unwrap();
            let v = &mut run.vertices[vidx];
            v.attempts_total += 1;
            let t = &mut v.tasks[task];
            t.attempts.push(AttemptRt {
                state: AState::Requesting(None),
                started_at: ctx.now(),
                speculative,
            });
            t.attempts.len() - 1
        };
        ctx.record_event(TlEvent::AttemptScheduled {
            vertex: self.run.as_ref().unwrap().vertices[vidx].name.clone(),
            task: task as u64,
            attempt: attempt_idx as u64,
            speculative,
        });
        // Prefer an idle (warm) container — but never at the cost of data
        // locality: a task with placement preferences only reuses a
        // container on one of its preferred nodes.
        let locality = self.task_locality(vidx, task);
        if self.config.container_reuse {
            let pick = self
                .containers
                .iter()
                .filter(|(_, c)| {
                    c.idle_since.is_some() && (locality.is_empty() || locality.contains(&c.node))
                })
                .min_by_key(|(id, _)| id.0)
                .map(|(&id, _)| id);
            if let Some(cid) = pick {
                self.containers.get_mut(&cid).unwrap().idle_since = None;
                if let Some(run) = self.run.as_mut() {
                    run.warm_starts += 1;
                }
                self.assign_container(ctx, cid, vidx, task, attempt_idx);
                return;
            }
        }
        if let Some(cap) = self.config.max_containers {
            let in_flight = self.containers.len() + self.request_map.len() + self.prewarm_requested;
            if self.config.container_reuse && in_flight >= cap {
                // Service-executor model: never grow past the fleet size;
                // the attempt waits for a pooled executor.
                return;
            }
        }
        let depth = self.run.as_ref().unwrap().dag.depth(vidx) as u32;
        let req = ContainerRequest {
            priority: depth,
            resource: self.config.task_resource(),
            nodes: locality,
            racks: vec![],
            relax_locality: true,
        };
        let rid = ctx.request_container(req);
        self.request_map.insert(rid, (vidx, task, attempt_idx));
        let run = self.run.as_mut().unwrap();
        run.vertices[vidx].tasks[task].attempts[attempt_idx].state = AState::Requesting(Some(rid));
    }

    fn assign_container(
        &mut self,
        ctx: &mut AppContext<'_>,
        container: ContainerId,
        vidx: usize,
        task: usize,
        attempt: usize,
    ) {
        let warm = ctx.container_works_run(container).unwrap_or(0) > 0;
        let vertex = {
            let run = self.run.as_mut().expect("active dag");
            let v = &mut run.vertices[vidx];
            v.first_launch.get_or_insert(ctx.now());
            let a = &mut v.tasks[task].attempts[attempt];
            a.state = AState::WaitingInputs {
                container,
                since: ctx.now(),
            };
            v.name.clone()
        };
        ctx.record_event(TlEvent::AttemptAssigned {
            vertex,
            task: task as u64,
            attempt: attempt as u64,
            container: container.0,
            warm,
        });
        self.try_execute(ctx, vidx, task, attempt);
    }

    fn inputs_ready(&self, vidx: usize, task: usize) -> bool {
        let run = self.run.as_ref().expect("active dag");
        run.vertices[vidx].tasks[task]
            .inputs
            .iter()
            .all(|edge| edge.iter().all(Option::is_some))
    }

    fn try_execute(&mut self, ctx: &mut AppContext<'_>, vidx: usize, task: usize, attempt: usize) {
        {
            let run = self.run.as_ref().expect("active dag");
            let t = &run.vertices[vidx].tasks[task];
            if t.done {
                return;
            }
            match t.attempts[attempt].state {
                AState::WaitingInputs { .. } => {}
                _ => return,
            }
        }
        if !self.inputs_ready(vidx, task) {
            return;
        }
        let (container, wait_since) = {
            let run = self.run.as_ref().unwrap();
            match run.vertices[vidx].tasks[task].attempts[attempt].state {
                AState::WaitingInputs { container, since } => (container, since),
                _ => unreachable!(),
            }
        };
        let Some(node) = ctx.container_node(container) else {
            // Container vanished between assignment and execution.
            self.attempt_failed(ctx, vidx, task, attempt, false);
            return;
        };
        let spec = self.build_task_spec(vidx, task, attempt);
        let works_run = ctx.container_works_run(container).unwrap_or(0);

        // Execute the IPO pipeline against the real data plane, off the
        // control thread. The attempt parks in `Launching` and the
        // same-instant `PayloadReady` event joins the result in submission
        // order, so the control plane observes outcomes exactly as the old
        // synchronous path did. Fetches retry with deterministic backoff;
        // the accumulated backoff is charged to the attempt's cost at join
        // so it advances the sim clock.
        let policy = FetchRetryPolicy {
            max_attempts: self.config.fetch_retry_attempts,
            base_backoff_ms: self.config.fetch_retry_backoff_ms,
            multiplier: 2,
        };
        let service = self.service.clone();
        let registry = self.registry.clone();
        let objreg = self.objreg.for_container(container.0);
        let token = self.token;
        let hdfs = ctx.hdfs_arc();
        let job_spec = spec.clone();
        let job = move || {
            let fetcher = RetryingFetcher::new(service, node.0, policy);
            let mut env = TaskEnv {
                fetcher: &fetcher,
                dfs: &*hdfs,
                registry: &objreg,
                token,
            };
            let outcome = run_task(&job_spec, &mut env, &registry);
            PayloadResult {
                outcome,
                fetch_retries: fetcher.retries(),
                fetch_backoff_ms: fetcher.backoff_ms(),
                retry_log: fetcher.retry_log(),
                fetch_samples: fetcher.fetch_samples(),
            }
        };
        // Injected transient fetch failures are consumed by the service in
        // fetch order; concurrent fetchers would race for them. Run those
        // payloads inline — still routed through `PayloadReady`, so the
        // event stream is identical either way.
        let payload = if self.service.pending_transient_failures() > 0 {
            PayloadSlot::Ready(Box::new(job()))
        } else {
            PayloadSlot::Pool(self.pool.submit(job))
        };
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.payload_tickets.insert(
            ticket,
            PayloadTicket {
                dag_gen: self.dag_index,
                vidx,
                task,
                attempt,
                spec: Box::new(spec),
                works_run,
            },
        );
        let run = self.run.as_mut().unwrap();
        run.vertices[vidx].tasks[task].attempts[attempt].state = AState::Launching {
            container,
            since: wait_since,
            payload,
        };
        ctx.notify_payload_ready(ticket);
    }

    /// Join a payload submitted by [`Self::try_execute`]. Fires at the same
    /// simulated instant as the submission, after every event that was
    /// already queued then, so joins happen in submission order and the
    /// control plane stays deterministic at any worker count.
    fn on_payload_ready(&mut self, ctx: &mut AppContext<'_>, ticket: u64) {
        let Some(t) = self.payload_tickets.remove(&ticket) else {
            return;
        };
        // Stale join: the DAG advanced (finished, failed, AM restart)
        // while the payload was in flight. Its handle was already dropped
        // with the superseded state.
        if t.dag_gen != self.dag_index {
            return;
        }
        let taken = {
            let Some(run) = self.run.as_mut() else {
                return;
            };
            let Some(a) = run
                .vertices
                .get_mut(t.vidx)
                .and_then(|v| v.tasks.get_mut(t.task))
                .and_then(|tk| tk.attempts.get_mut(t.attempt))
            else {
                return;
            };
            // Superseded at the same instant (sibling won, container
            // swept): the state already moved on and dropped the handle.
            if !matches!(a.state, AState::Launching { .. }) {
                return;
            }
            match std::mem::replace(&mut a.state, AState::Done) {
                AState::Launching {
                    container,
                    since,
                    payload,
                } => (container, since, payload),
                _ => unreachable!(),
            }
        };
        let (container, wait_since, payload) = taken;
        let result = match payload {
            PayloadSlot::Ready(r) => *r,
            PayloadSlot::Pool(handle) => handle.join(),
        };
        self.finish_launch(ctx, t, container, wait_since, result);
    }

    /// Control-plane half of a launch: charge container stats, record fetch
    /// retries, and act on the payload outcome — exactly the processing the
    /// old synchronous path ran after `run_task` returned.
    fn finish_launch(
        &mut self,
        ctx: &mut AppContext<'_>,
        ticket: PayloadTicket,
        container: ContainerId,
        wait_since: SimTime,
        result: PayloadResult,
    ) {
        let PayloadTicket {
            vidx,
            task,
            attempt,
            spec,
            works_run,
            ..
        } = ticket;
        let spec = *spec;
        // The container can vanish at this same instant (a node failure
        // queued before the join); re-check, as the old path did before
        // executing.
        let Some(node) = ctx.container_node(container) else {
            let run = self.run.as_mut().expect("active dag");
            run.vertices[vidx].tasks[task].attempts[attempt].state = AState::WaitingInputs {
                container,
                since: wait_since,
            };
            self.attempt_failed(ctx, vidx, task, attempt, false);
            return;
        };
        if let Some(run) = self.run.as_mut() {
            run.container_stats.assignments += 1;
            run.container_stats.warmup_levels += works_run;
            if works_run > 0 {
                run.container_stats.reuse_hits += 1;
                run.warm_starts += 1;
            } else {
                run.container_stats.cold_starts += 1;
            }
        }
        let PayloadResult {
            outcome,
            fetch_retries,
            fetch_backoff_ms,
            retry_log,
            fetch_samples,
        } = result;
        if fetch_retries > 0 {
            if let Some(run) = self.run.as_mut() {
                run.counters
                    .add(tez_runtime::counter_names::FETCH_RETRIES, fetch_retries);
            }
            // One event per shard that retried (shuffle-layer log), so the
            // timeline shows which fetches were slow, not just the total.
            for r in retry_log {
                ctx.record_event(TlEvent::FetchRetried {
                    vertex: spec.meta.vertex.clone(),
                    task: task as u64,
                    attempt: attempt as u64,
                    retries: r.retries,
                    backoff_ms: r.backoff_ms,
                });
            }
        }
        match outcome {
            Ok(outcome) => {
                let mut cost = self.work_cost(ctx, vidx, task, &spec, &outcome, node, wait_since);
                cost.setup_ms += fetch_backoff_ms;
                let label = {
                    let run = self.run.as_ref().unwrap();
                    format!(
                        "{}:{}[{}]",
                        (b'A' + (self.dag_index % 26) as u8) as char,
                        run.vertices[vidx].name,
                        task
                    )
                };
                ctx.record_event(TlEvent::AttemptLaunched {
                    vertex: spec.meta.vertex.clone(),
                    task: task as u64,
                    attempt: attempt as u64,
                    container: container.0,
                    launch_ms: if works_run == 0 {
                        ctx.cost_model().container_launch_ms
                    } else {
                        0
                    },
                    backoff_ms: fetch_backoff_ms,
                    fetch_ms: ctx
                        .cost_model()
                        .remote_read_ms(cost.remote_read_bytes)
                        .saturating_sub(cost.overlapped_fetch_ms),
                });
                let work = ctx.start_work(container, label, cost);
                self.work_map.insert(work, (vidx, task, attempt));
                self.work_started.insert(work, ctx.now());
                let run = self.run.as_mut().unwrap();
                run.counters.merge(&outcome.counters);
                // Data-plane stats: fetched/merged bytes per in-edge (the
                // shards this attempt pulled from the shuffle service) and
                // spilled bytes per out-edge.
                let vname = run.vertices[vidx].name.clone();
                for input in &spec.inputs {
                    if let InputSource::Shards(shards) = &input.source {
                        let e = run
                            .edge_stats
                            .entry((input.name.clone(), vname.clone()))
                            .or_insert_with(|| EdgeStats {
                                src: input.name.clone(),
                                dst: vname.clone(),
                                ..EdgeStats::default()
                            });
                        for s in shards {
                            e.fetched_bytes += s.bytes;
                            if s.sorted {
                                e.merged_bytes += s.bytes;
                            }
                        }
                    }
                }
                for (out_name, commit) in &outcome.outputs {
                    if commit.sink.is_none() && commit.spilled_bytes > 0 {
                        let e = run
                            .edge_stats
                            .entry((vname.clone(), out_name.clone()))
                            .or_insert_with(|| EdgeStats {
                                src: vname.clone(),
                                dst: out_name.clone(),
                                ..EdgeStats::default()
                            });
                        e.spilled_bytes += commit.spilled_bytes;
                    }
                }
                // Metrics rollup: the task's counter bag lands in its
                // vertex scope (and, via the registry, DAG + app), every
                // successful shard fetch becomes a latency sample (backoff
                // plus the modelled remote read — deterministic, never
                // wall-clock), and every producer spill a size sample.
                run.vertex_counters
                    .entry(vname.clone())
                    .or_default()
                    .merge(&outcome.counters);
                let dag_name = run.dag.name().to_string();
                self.metrics
                    .record_task_counters(&dag_name, &vname, &outcome.counters);
                for s in &fetch_samples {
                    let latency = s.backoff_ms.saturating_add(if s.remote {
                        ctx.cost_model().remote_read_ms(s.bytes)
                    } else {
                        0
                    });
                    self.metrics.record_value(
                        &dag_name,
                        Some(&vname),
                        metric_names::SHUFFLE_FETCH_LATENCY_MS,
                        latency,
                    );
                }
                for (_, commit) in &outcome.outputs {
                    if commit.spilled_bytes > 0 {
                        self.metrics.record_value(
                            &dag_name,
                            Some(&vname),
                            metric_names::SPILL_SIZE_BYTES,
                            commit.spilled_bytes,
                        );
                    }
                }
                let run = self.run.as_mut().unwrap();
                run.vertices[vidx].tasks[task].attempts[attempt].state = AState::Running {
                    container,
                    work,
                    outcome: Box::new(outcome),
                };
            }
            Err(TaskError::InputRead(errors)) => {
                // Lost intermediate data: regenerate producers (§4.3). The
                // attempt keeps its container and waits for fresh inputs.
                for err in &errors {
                    ctx.record_event(TlEvent::FetchFailed {
                        vertex: spec.meta.vertex.clone(),
                        task: task as u64,
                        attempt: attempt as u64,
                        output: err.locator.output_id,
                        partition: err.locator.partition as u64,
                        reason: "shard unavailable".to_string(),
                    });
                }
                {
                    let run = self.run.as_mut().unwrap();
                    run.vertices[vidx].tasks[task].attempts[attempt].state =
                        AState::WaitingInputs {
                            container,
                            since: ctx.now(),
                        };
                }
                self.handle_input_read_errors(ctx, errors);
            }
            Err(e) if e.is_retriable() => {
                if std::env::var("TEZ_DEBUG").is_ok() {
                    eprintln!(
                        "[tez] attempt {}[{}].{} failed: {e}",
                        spec.meta.vertex, task, attempt
                    );
                }
                // Restore the container-holding state so `attempt_failed`
                // can extract and return the container to the pool.
                {
                    let run = self.run.as_mut().expect("active dag");
                    run.vertices[vidx].tasks[task].attempts[attempt].state =
                        AState::WaitingInputs {
                            container,
                            since: wait_since,
                        };
                }
                self.attempt_failed(ctx, vidx, task, attempt, true);
            }
            Err(e) => {
                self.fail_dag(
                    ctx,
                    format!("fatal task error in {}: {e}", spec.meta.vertex),
                );
            }
        }
    }

    fn build_task_spec(&self, vidx: usize, task: usize, attempt: usize) -> TaskSpec {
        let run = self.run.as_ref().expect("active dag");
        let dag = &run.dag;
        let v = dag.vertex(vidx);
        let vrt = &run.vertices[vidx];
        let trt = &vrt.tasks[task];
        let n = vrt.parallelism.unwrap();

        let mut inputs = Vec::new();
        // Root data sources first (stable order), then edges.
        for (i, src) in v.data_sources.iter().enumerate() {
            let split = trt
                .splits
                .get(i)
                .map(|s| s.payload.clone())
                .unwrap_or_else(|| {
                    SplitPayload {
                        path: String::new(),
                        blocks: vec![],
                    }
                    .encode()
                });
            inputs.push(InputSpec {
                name: src.name.clone(),
                descriptor: src.input.clone(),
                source: InputSource::Split(split),
            });
        }
        for (slot, &e) in dag.in_edge_indices(vidx).iter().enumerate() {
            let edge = dag.edge(e);
            let shards: Vec<ShardLocator> = trt.inputs[slot]
                .iter()
                .map(|s| s.expect("inputs ready"))
                .collect();
            inputs.push(InputSpec {
                name: edge.src.clone(),
                descriptor: edge.property.dst_input.clone(),
                source: InputSource::Shards(shards),
            });
        }

        let mut outputs = Vec::new();
        for &e in dag.out_edge_indices(vidx) {
            let edge = dag.edge(e);
            let dst = dag.vertex_index(&edge.dst).unwrap();
            // Broadcast/one-to-one partition counts don't depend on the
            // consumer's width, so producers may run before a DPP-gated
            // consumer resolves.
            let dst_n = match run.vertices[dst].parallelism {
                Some(n) => n,
                None => match edge.property.movement {
                    DataMovement::Broadcast | DataMovement::OneToOne => 1,
                    _ => panic!(
                        "scatter-gather consumer {} unresolved while producer runs",
                        edge.dst
                    ),
                },
            };
            let rctx = EdgeRoutingContext {
                num_src_tasks: n,
                num_dst_tasks: dst_n,
            };
            outputs.push(OutputSpec {
                name: edge.dst.clone(),
                descriptor: edge.property.src_output.clone(),
                num_partitions: run.edge_managers[e].num_physical_outputs(&rctx, task),
                is_sink: false,
                task_index: task,
                vertex: v.name.clone(),
            });
        }
        for sink in &v.data_sinks {
            outputs.push(OutputSpec {
                name: sink.name.clone(),
                descriptor: sink.output.clone(),
                num_partitions: 1,
                is_sink: true,
                task_index: task,
                vertex: v.name.clone(),
            });
        }

        TaskSpec {
            meta: TaskMeta {
                dag: dag.name().to_string(),
                vertex: v.name.clone(),
                task_index: task,
                num_tasks: n,
                attempt,
            },
            processor: v.processor.clone(),
            inputs,
            outputs,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn work_cost(
        &self,
        ctx: &AppContext<'_>,
        vidx: usize,
        task: usize,
        spec: &TaskSpec,
        outcome: &TaskOutcome,
        node: NodeId,
        wait_since: SimTime,
    ) -> WorkCost {
        let run = self.run.as_ref().expect("active dag");
        let trt = &run.vertices[vidx].tasks[task];
        // Statistics scales: this vertex's outputs use its own scale;
        // fetched shards use their *producer's* scale (so broadcasts from
        // pinned dimension scans stay cheap).
        let own = Self::vertex_scale(run, &self.config, vidx);
        let scale = |b: u64| (b as f64 * own) as u64;
        let mut src_scale: HashMap<String, f64> = HashMap::new();
        for &e in run.dag.in_edge_indices(vidx) {
            let edge = run.dag.edge(e);
            let sidx = run.dag.vertex_index(&edge.src).unwrap();
            src_scale.insert(
                edge.src.clone(),
                Self::vertex_scale(run, &self.config, sidx),
            );
        }

        // Root splits: declared (already scaled) bytes; local when the
        // container landed on a replica host.
        let host = ClusterSpec::host_name(node);
        let (mut local_read, mut remote_read) = (0u64, 0u64);
        let mut cpu_records = 0u64;
        for split in &trt.splits {
            if split.hosts.iter().any(|h| h == &host) {
                local_read += split.bytes;
            } else {
                remote_read += split.bytes;
            }
            cpu_records += (split.records as f64 * 1.0) as u64;
        }
        // Edge shards: real locator bytes, scaled.
        let mut shard_count = 0usize;
        for input in &spec.inputs {
            if let InputSource::Shards(shards) = &input.source {
                let in_scale = src_scale.get(&input.name).copied().unwrap_or(own);
                let sc = |b: u64| (b as f64 * in_scale) as u64;
                for s in shards {
                    shard_count += 1;
                    if s.node == node.0 {
                        local_read += sc(s.bytes);
                    } else {
                        remote_read += sc(s.bytes);
                    }
                    cpu_records += sc(s.records);
                }
            }
        }
        // Outputs: partition bytes to local disk, sink bytes to the DFS.
        let (mut local_write, mut dfs_write) = (0u64, 0u64);
        let mut out_records = 0u64;
        for (_, commit) in &outcome.outputs {
            let pbytes: u64 = commit.partitions.iter().map(|p| p.data.len() as u64).sum();
            local_write += scale(pbytes) + scale(commit.spilled_bytes);
            if let Some(sink) = &commit.sink {
                dfs_write += scale(sink.blocks.iter().map(|(d, _)| d.len() as u64).sum());
            }
            out_records += scale(commit.total_records());
        }

        // Slow-start overlap credit: while the attempt held its container
        // waiting for the last producers, it prefetched available shards.
        // All but (roughly) the final shard's fetch can be hidden by the
        // wait window.
        let wait_ms = ctx.now().since(wait_since);
        let overlapped = if shard_count > 1 && wait_ms > 0 {
            let fetch_ms = ctx.cost_model().remote_read_ms(remote_read);
            let hideable = fetch_ms.saturating_sub(fetch_ms / shard_count as u64);
            hideable.min(wait_ms)
        } else {
            0
        };

        WorkCost {
            cpu_records: cpu_records + out_records,
            cpu_bytes: local_read + remote_read,
            local_read_bytes: local_read,
            remote_read_bytes: remote_read,
            local_write_bytes: local_write,
            dfs_write_bytes: dfs_write,
            setup_ms: 0,
            overlapped_fetch_ms: overlapped,
        }
    }

    // -- completion paths ---------------------------------------------------

    fn on_work_completed(
        &mut self,
        ctx: &mut AppContext<'_>,
        work: WorkId,
        container: ContainerId,
        outcome: WorkOutcome,
    ) {
        let started = self.work_started.remove(&work);
        let Some((vidx, task, attempt)) = self.work_map.remove(&work) else {
            // Pre-warm work or stale completion.
            if self.prewarm_outstanding > 0 {
                self.prewarm_outstanding -= 1;
            }
            self.return_to_pool(ctx, container);
            return;
        };
        let Some(run) = self.run.as_mut() else { return };
        if let Some(start) = started {
            let status = match outcome {
                WorkOutcome::Succeeded => "succeeded",
                WorkOutcome::Killed => "killed",
                _ => "failed",
            };
            let vertex = run
                .vertices
                .get(vidx)
                .map(|v| v.name.clone())
                .unwrap_or_default();
            let speculative = run
                .vertices
                .get(vidx)
                .and_then(|v| v.tasks.get(task))
                .and_then(|t| t.attempts.get(attempt))
                .is_some_and(|a| a.speculative);
            ctx.record_event(TlEvent::AttemptFinished {
                vertex: vertex.clone(),
                task: task as u64,
                attempt: attempt as u64,
                container: container.0,
                status: status.to_string(),
            });
            // Every attempt — succeeded, failed or killed — contributes a
            // duration sample to its vertex's histogram.
            self.metrics.record_value(
                run.dag.name(),
                Some(&vertex),
                metric_names::ATTEMPT_DURATION_MS,
                ctx.now().millis().saturating_sub(start.millis()),
            );
            run.attempt_spans.push(AttemptSpan {
                vertex,
                task: task as u64,
                attempt: attempt as u64,
                container: container.0,
                start_ms: start.millis(),
                end_ms: ctx.now().millis(),
                status: status.into(),
                speculative,
            });
        }
        let Some(vrt) = run.vertices.get_mut(vidx) else {
            return;
        };
        let task_done_already = vrt.tasks[task].done;
        let a = &mut vrt.tasks[task].attempts[attempt];
        let task_outcome = match std::mem::replace(&mut a.state, AState::Done) {
            AState::Running { outcome, .. } => Some(outcome),
            _ => None,
        };
        match outcome {
            WorkOutcome::Succeeded if !task_done_already => {
                let started = a.started_at;
                vrt.duration_sum += ctx.now().since(started);
                vrt.duration_count += 1;
                vrt.last_finish = Some(ctx.now());
                let out = task_outcome.expect("running attempt holds its outcome");
                self.task_succeeded(ctx, vidx, task, attempt, *out, container);
            }
            WorkOutcome::Succeeded => {
                // A sibling attempt already completed the task.
                self.return_to_pool(ctx, container);
            }
            WorkOutcome::Killed => {
                self.return_to_pool(ctx, container);
            }
            WorkOutcome::InjectedFailure => {
                if !task_done_already {
                    self.run.as_mut().unwrap().vertices[vidx].failed_attempts += 1;
                    self.retry_task(ctx, vidx, task);
                }
                self.return_to_pool(ctx, container);
            }
            WorkOutcome::ContainerLost => {
                if !task_done_already {
                    self.run.as_mut().unwrap().vertices[vidx].failed_attempts += 1;
                    self.retry_task(ctx, vidx, task);
                }
            }
        }
    }

    fn task_succeeded(
        &mut self,
        ctx: &mut AppContext<'_>,
        vidx: usize,
        task: usize,
        attempt: usize,
        outcome: TaskOutcome,
        container: ContainerId,
    ) {
        let node = ctx
            .container_node(container)
            .expect("succeeded work implies live container");
        // Kill sibling attempts (speculation losers).
        let siblings: Vec<WorkId> = {
            let run = self.run.as_ref().unwrap();
            run.vertices[vidx].tasks[task]
                .attempts
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != attempt)
                .filter_map(|(_, a)| match a.state {
                    AState::Running { work, .. } => Some(work),
                    _ => None,
                })
                .collect()
        };
        for w in siblings {
            ctx.kill_work(w);
        }
        // Cancel sibling container requests and free waiting siblings'
        // containers. Every non-Running sibling gets a terminal "killed"
        // timeline event here — Running siblings emit theirs when the
        // killed work completes — so each scheduled attempt always closes
        // with exactly one terminal event.
        let mut sibling_reqs: Vec<RequestId> = Vec::new();
        let mut sibling_containers: Vec<ContainerId> = Vec::new();
        let mut killed_siblings: Vec<(usize, u64)> = Vec::new();
        let vname = {
            let run = self.run.as_mut().unwrap();
            for (i, a) in run.vertices[vidx].tasks[task]
                .attempts
                .iter_mut()
                .enumerate()
            {
                if i == attempt {
                    continue;
                }
                match std::mem::replace(&mut a.state, AState::Done) {
                    AState::Requesting(Some(r)) => {
                        sibling_reqs.push(r);
                        killed_siblings.push((i, 0));
                    }
                    AState::Requesting(None) => killed_siblings.push((i, 0)),
                    AState::WaitingInputs { container, .. } => {
                        sibling_containers.push(container);
                        killed_siblings.push((i, container.0));
                    }
                    AState::Launching { container, .. } => {
                        // The payload handle is dropped with the state; the
                        // stale `PayloadReady` join is a no-op.
                        sibling_containers.push(container);
                        killed_siblings.push((i, container.0));
                    }
                    s @ AState::Running { .. } => a.state = s, // killed above; pool on completion
                    AState::Done => {}
                }
            }
            run.vertices[vidx].name.clone()
        };
        for (ai, cid) in killed_siblings {
            ctx.record_event(TlEvent::AttemptFinished {
                vertex: vname.clone(),
                task: task as u64,
                attempt: ai as u64,
                container: cid,
                status: "killed".to_string(),
            });
        }
        for r in sibling_reqs {
            ctx.cancel_request(r);
            self.request_map.remove(&r);
        }
        for c in sibling_containers {
            self.return_to_pool(ctx, c);
        }

        // Publish edge outputs, collect sink artifacts, route events.
        let dag_out_edges: Vec<usize> = {
            let run = self.run.as_ref().unwrap();
            run.dag.out_edge_indices(vidx).to_vec()
        };
        let mut edge_outputs: HashMap<String, usize> = HashMap::new();
        {
            let run = self.run.as_ref().unwrap();
            for &e in &dag_out_edges {
                edge_outputs.insert(run.dag.edge(e).dst.clone(), e);
            }
        }
        let mut stats_by_consumer: Vec<(usize, u64)> = Vec::new();
        for (name, commit) in outcome.outputs {
            if let Some(&edge_idx) = edge_outputs.get(&name) {
                let oid = self.service.new_output_id();
                let locators = self.service.publish(node.0, oid, commit.partitions);
                self.output_registry.insert(oid, (vidx, task));
                let vscale = {
                    let run = self.run.as_ref().unwrap();
                    Self::vertex_scale(run, &self.config, vidx)
                };
                let total_scaled: u64 = locators
                    .iter()
                    .map(|l| (l.bytes as f64 * vscale) as u64)
                    .sum();
                {
                    let run = self.run.as_mut().unwrap();
                    run.publications[edge_idx].insert(task, locators.clone());
                    run.vertices[vidx].tasks[task]
                        .published
                        .push((edge_idx, node.0, oid));
                }
                self.route_locators(ctx, edge_idx, task, &locators);
                let run = self.run.as_ref().unwrap();
                if matches!(
                    run.dag.edge(edge_idx).property.movement,
                    DataMovement::ScatterGather | DataMovement::Custom { .. }
                ) {
                    let dst = run.dag.vertex_index(&run.dag.edge(edge_idx).dst).unwrap();
                    stats_by_consumer.push((dst, total_scaled));
                }
            } else if let Some(sink) = commit.sink {
                self.run.as_mut().unwrap().sink_artifacts.push(sink);
            }
        }
        // Auto statistics to shuffle managers (paper Figure 6).
        let src_attempt = SourceTaskAttempt {
            vertex: self.run.as_ref().unwrap().vertices[vidx].name.clone(),
            task,
        };
        for (dst, bytes) in stats_by_consumer {
            let payload = producer_stats_payload(bytes);
            let sa = src_attempt.clone();
            self.with_vm(ctx, dst, |vm, vmctx| vm.on_event(&sa, &payload, vmctx));
        }
        // Processor-emitted control-plane events.
        for event in outcome.events {
            self.route_outbound_event(ctx, event);
        }

        // Mark done, notify consumer VMs, wake waiting consumer attempts.
        let consumers: Vec<usize> = {
            let run = self.run.as_mut().unwrap();
            run.vertices[vidx].tasks[task].done = true;
            run.vertices[vidx].completed += 1;
            run.dag.consumers(vidx)
        };
        for c in &consumers {
            let sa = src_attempt.clone();
            self.with_vm(ctx, *c, |vm, vmctx| vm.on_source_task_completed(&sa, vmctx));
        }
        self.wake_waiting_consumers(ctx, &consumers);
        self.return_to_pool(ctx, container);
        self.check_vertex_complete(ctx, vidx);
    }

    fn wake_waiting_consumers(&mut self, ctx: &mut AppContext<'_>, consumers: &[usize]) {
        for &c in consumers {
            let Some(run) = self.run.as_ref() else { return };
            let Some(vrt) = run.vertices.get(c) else {
                continue;
            };
            let waiting: Vec<(usize, usize)> = vrt
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done)
                .flat_map(|(ti, t)| {
                    t.attempts
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| matches!(a.state, AState::WaitingInputs { .. }))
                        .map(move |(ai, _)| (ti, ai))
                })
                .collect();
            for (ti, ai) in waiting {
                self.try_execute(ctx, c, ti, ai);
            }
        }
    }

    fn route_locators(
        &mut self,
        ctx: &mut AppContext<'_>,
        edge_idx: usize,
        src_task: usize,
        locators: &[ShardLocator],
    ) {
        let run = self.run.as_mut().expect("active dag");
        let edge = run.dag.edge(edge_idx);
        let src = run.dag.vertex_index(&edge.src).unwrap();
        let dst = run.dag.vertex_index(&edge.dst).unwrap();
        let (Some(src_n), Some(dst_n)) =
            (run.vertices[src].parallelism, run.vertices[dst].parallelism)
        else {
            return; // consumer unresolved; replay happens at materialize
        };
        if run.vertices[dst].tasks.is_empty() {
            return;
        }
        let rctx = EdgeRoutingContext {
            num_src_tasks: src_n,
            num_dst_tasks: dst_n,
        };
        let slot = run
            .dag
            .in_edge_indices(dst)
            .iter()
            .position(|&x| x == edge_idx)
            .unwrap();
        let mgr = run.edge_managers[edge_idx].clone();
        for (p, loc) in locators.iter().enumerate() {
            for route in mgr.route(&rctx, src_task, p) {
                run.vertices[dst].tasks[route.dst_task].inputs[slot][route.dst_input_index] =
                    Some(*loc);
            }
        }
        let _ = ctx;
    }

    fn route_outbound_event(&mut self, ctx: &mut AppContext<'_>, event: OutboundEvent) {
        match event {
            OutboundEvent::VertexManager {
                target_vertex,
                payload,
            } => {
                let Some(run) = self.run.as_ref() else { return };
                let Some(dst) = run.dag.vertex_index(&target_vertex) else {
                    return;
                };
                let sa = SourceTaskAttempt {
                    vertex: String::new(),
                    task: 0,
                };
                self.with_vm(ctx, dst, |vm, vmctx| vm.on_event(&sa, &payload, vmctx));
            }
            OutboundEvent::InputInitializer {
                target_vertex,
                source,
                payload,
            } => {
                self.deliver_initializer_event(ctx, &target_vertex, &source, &payload);
            }
        }
    }

    fn deliver_initializer_event(
        &mut self,
        ctx: &mut AppContext<'_>,
        target_vertex: &str,
        source: &str,
        payload: &[u8],
    ) {
        let total_slots = ctx.total_slots(&self.config.task_resource());
        let nodes = ctx.alive_nodes();
        let mut failed = None;
        {
            let Some(run) = self.run.as_mut() else { return };
            let Some(vidx) = run.dag.vertex_index(target_vertex) else {
                return;
            };
            let vname = run.vertices[vidx].name.clone();
            let Some(slot) = run.vertices[vidx]
                .initializers
                .iter_mut()
                .find(|s| s.source == source)
            else {
                return;
            };
            let mut init = slot.init.take().expect("initializer present");
            let result = {
                let mut ictx = InitCtx {
                    dfs: ctx.hdfs(),
                    nodes,
                    slots: total_slots,
                    vertex: &vname,
                    counters: &mut run.counters,
                };
                init.on_event(payload, &mut ictx)
            };
            slot.init = Some(init);
            match result {
                Ok(InitializerResult::Ready(splits)) => slot.splits = Some(splits),
                Ok(InitializerResult::Waiting) => {}
                Err(e) => failed = Some(format!("initializer event on {target_vertex}: {e}")),
            }
        }
        if let Some(reason) = failed {
            self.fail_dag(ctx, reason);
            return;
        }
        // Newly-ready splits may unblock vertex resolution (DPP).
        self.resolve_vertices(ctx);
    }

    fn check_vertex_complete(&mut self, ctx: &mut AppContext<'_>, vidx: usize) {
        let all_done = {
            let Some(run) = self.run.as_ref() else { return };
            let v = &run.vertices[vidx];
            v.started && v.tasks.iter().all(|t| t.done)
        };
        if !all_done {
            return;
        }
        ctx.record_event(TlEvent::VertexFinished {
            vertex: self.run.as_ref().unwrap().vertices[vidx].name.clone(),
        });
        self.objreg.evict_scope(tez_runtime::ObjectScope::Vertex);
        let dag_done = {
            let run = self.run.as_ref().unwrap();
            run.vertices
                .iter()
                .all(|v| v.started && v.tasks.iter().all(|t| t.done))
        };
        if dag_done {
            self.complete_dag(ctx);
        }
    }

    fn complete_dag(&mut self, ctx: &mut AppContext<'_>) {
        // Commit sinks exactly once (paper §3.1).
        let commit_result = {
            let run = self.run.as_ref().unwrap();
            let mut plans: Vec<(String, tez_dag::UserPayload)> = Vec::new();
            for v in run.dag.vertices() {
                for sink in &v.data_sinks {
                    if let Some(c) = &sink.committer {
                        plans.push((c.kind.clone(), c.payload.clone()));
                    }
                }
            }
            plans
        };
        let artifacts = std::mem::take(&mut self.run.as_mut().unwrap().sink_artifacts);
        let mut commit_err = None;
        for (kind, payload) in commit_result {
            match self.registry.create_committer(&kind, &payload) {
                Ok(mut committer) => {
                    let mut env = tez_runtime::CommitEnv { dfs: ctx.hdfs() };
                    if let Err(e) = committer.commit(&artifacts, &mut env) {
                        commit_err = Some(format!("commit failed: {e}"));
                    }
                }
                Err(e) => commit_err = Some(format!("committer missing: {e}")),
            }
        }
        if let Some(reason) = commit_err {
            self.fail_dag(ctx, reason);
            return;
        }
        self.finish_dag(ctx, DagStatus::Succeeded);
    }

    fn fail_dag(&mut self, ctx: &mut AppContext<'_>, reason: String) {
        if self.run.is_some() {
            self.finish_dag(ctx, DagStatus::Failed(reason));
        }
    }

    fn finish_dag(&mut self, ctx: &mut AppContext<'_>, status: DagStatus) {
        let run = self.run.take().expect("active dag");
        // Kill any leftover work / cancel requests.
        let mut leftover_works = Vec::new();
        for v in &run.vertices {
            for t in &v.tasks {
                for a in &t.attempts {
                    match a.state {
                        AState::Running { work, .. } => leftover_works.push(work),
                        AState::Requesting(Some(r)) => {
                            ctx.cancel_request(r);
                        }
                        _ => {}
                    }
                }
            }
        }
        for w in leftover_works {
            ctx.kill_work(w);
            self.work_map.remove(&w);
            self.work_started.remove(&w);
        }
        let status_str = match &status {
            DagStatus::Succeeded => "succeeded".to_string(),
            DagStatus::Failed(reason) => format!("failed: {reason}"),
        };
        ctx.record_event(TlEvent::DagFinished {
            dag: run.dag.name().to_string(),
            status: status_str.clone(),
        });
        // Close out this DAG's histogram feeds: the queue-wait and pool
        // submission accumulators are app-lifetime, so attribute only the
        // delta since the DAG started.
        let dag_name = run.dag.name().to_string();
        self.metrics.merge_histogram(
            &dag_name,
            metric_names::QUEUE_WAIT_MS,
            &ctx.queue_wait_histogram().delta_since(&run.wait_hist_base),
        );
        self.metrics.add_dag_counter(
            &dag_name,
            metric_names::POOL_JOBS_SUBMITTED,
            self.pool
                .jobs_submitted()
                .saturating_sub(run.pool_jobs_base),
        );
        let run_report = RunReport {
            dag: run.dag.name().to_string(),
            status: status_str,
            submitted_ms: run.submitted.millis(),
            finished_ms: ctx.now().millis(),
            scheduler: ctx.scheduler_stats().delta_since(&run.sched_base),
            containers: run.container_stats.clone(),
            // BTreeMap iteration gives the (src, dst)-sorted order the
            // deterministic serializer relies on.
            edges: run.edge_stats.values().cloned().collect(),
            attempts: run.attempt_spans.clone(),
            counters: run.counters.clone(),
            vertex_counters: run.vertex_counters.clone(),
            timeline: Timeline::from_events(ctx.timeline_events_since(run.timeline_base)),
        };
        let report = DagReport {
            name: run.dag.name().to_string(),
            submitted: run.submitted,
            finished: ctx.now(),
            status,
            counters: run.counters.clone(),
            vertices: run
                .dag
                .topological_order()
                .iter()
                .map(|&vi| {
                    let v = &run.vertices[vi];
                    VertexReport {
                        name: v.name.clone(),
                        tasks: v.tasks.len(),
                        attempts: v.attempts_total,
                        failed_attempts: v.failed_attempts,
                        first_launch: v.first_launch,
                        last_finish: v.last_finish,
                    }
                })
                .collect(),
            containers_allocated: run.containers_allocated,
            warm_starts: run.warm_starts,
            speculative_attempts: run.speculative_attempts,
            reexecuted_tasks: run.reexecuted_tasks,
            run_report,
        };
        {
            let mut out = self.output.lock();
            out.reports.push(report);
            // Keep the session-level registry visible alongside the
            // reports: refreshed after every completed DAG.
            out.metrics = self.metrics.clone();
        }
        self.objreg.evict_scope(tez_runtime::ObjectScope::Dag);
        self.dag_index += 1;

        if !self.config.session {
            // Release every container between DAGs.
            let ids: Vec<ContainerId> = self.containers.keys().copied().collect();
            for id in ids {
                self.containers.remove(&id);
                self.objreg.drop_container(id.0);
                ctx.release_container(id);
            }
        }
        if self.config.per_dag_am_penalty_ms > 0 && !self.pending_dags.is_empty() {
            // Classic chains launch a fresh AM per job.
            ctx.set_timer(self.config.per_dag_am_penalty_ms, TIMER_NEXT_DAG);
        } else {
            self.start_next_dag(ctx);
        }
    }

    fn finish_session(&mut self, ctx: &mut AppContext<'_>) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.objreg.evict_scope(tez_runtime::ObjectScope::Session);
        self.service.revoke_token(self.token);
        let any_failed = self
            .output
            .lock()
            .reports
            .iter()
            .any(|r| !r.status.is_success());
        ctx.finish(if any_failed {
            AppStatus::Failed("one or more DAGs failed".into())
        } else {
            AppStatus::Succeeded
        });
    }

    // -- failure handling ---------------------------------------------------

    fn retry_task(&mut self, ctx: &mut AppContext<'_>, vidx: usize, task: usize) {
        let give_up = {
            let run = self.run.as_mut().unwrap();
            let t = &mut run.vertices[vidx].tasks[task];
            if t.done {
                return;
            }
            t.failures += 1;
            // Only retry when no other attempt is still alive.
            let alive = t.attempts.iter().any(|a| !matches!(a.state, AState::Done));
            if alive {
                return;
            }
            t.failures > self.config.max_task_attempts
        };
        if give_up {
            let name = self.run.as_ref().unwrap().vertices[vidx].name.clone();
            self.fail_dag(ctx, format!("task {name}[{task}] exhausted its attempts"));
            return;
        }
        {
            let run = self.run.as_mut().unwrap();
            run.vertices[vidx].tasks[task].scheduled = false;
        }
        self.schedule_task(ctx, vidx, task, false);
    }

    fn handle_input_read_errors(
        &mut self,
        ctx: &mut AppContext<'_>,
        errors: Vec<tez_runtime::InputReadError>,
    ) {
        let mut producers: Vec<(usize, usize)> = Vec::new();
        for err in &errors {
            if let Some(&(pv, pt)) = self.output_registry.get(&err.locator.output_id) {
                if let Some(run) = self.run.as_mut() {
                    let src = run.vertices[pv].name.clone();
                    let dst = err.consumer_vertex.clone();
                    run.edge_stats
                        .entry((src.clone(), dst.clone()))
                        .or_insert_with(|| EdgeStats {
                            src,
                            dst,
                            ..EdgeStats::default()
                        })
                        .fetch_failures += 1;
                }
                if !producers.contains(&(pv, pt)) {
                    producers.push((pv, pt));
                }
            }
        }
        for (pv, pt) in producers {
            self.reexecute_producer(ctx, pv, pt);
        }
    }

    /// Re-execute a completed producer task to regenerate lost output
    /// (paper §4.3). Drops its stale publications, clears routed locators
    /// at consumers, and re-schedules it.
    fn reexecute_producer(&mut self, ctx: &mut AppContext<'_>, vidx: usize, task: usize) {
        let reschedule = {
            let run = self.run.as_mut().unwrap();
            let published = {
                let t = &mut run.vertices[vidx].tasks[task];
                if !t.done {
                    return; // already being regenerated
                }
                t.done = false;
                t.scheduled = false;
                std::mem::take(&mut t.published)
            };
            run.vertices[vidx].completed = run.vertices[vidx].completed.saturating_sub(1);
            run.reexecuted_tasks += 1;
            for &(edge_idx, node, oid) in &published {
                self.service.drop_output(node, oid);
                self.output_registry.remove(&oid);
                run.publications[edge_idx].remove(&task);
            }
            // Clear routed locators pointing at the dropped outputs.
            let cleared: Vec<usize> = published.iter().map(|&(e, _, _)| e).collect();
            for &edge_idx in &cleared {
                let dst = run.dag.vertex_index(&run.dag.edge(edge_idx).dst).unwrap();
                let oids: Vec<u64> = published
                    .iter()
                    .filter(|&&(e, _, _)| e == edge_idx)
                    .map(|&(_, _, o)| o)
                    .collect();
                for t2 in &mut run.vertices[dst].tasks {
                    for slot in &mut t2.inputs {
                        for loc in slot.iter_mut() {
                            if let Some(l) = loc {
                                if oids.contains(&l.output_id) {
                                    *loc = None;
                                }
                            }
                        }
                    }
                }
            }
            true
        };
        if reschedule {
            self.schedule_task(ctx, vidx, task, false);
        }
    }

    fn attempt_failed(
        &mut self,
        ctx: &mut AppContext<'_>,
        vidx: usize,
        task: usize,
        attempt: usize,
        release_container: bool,
    ) {
        let container = {
            let run = self.run.as_mut().unwrap();
            run.vertices[vidx].failed_attempts += 1;
            let a = &mut run.vertices[vidx].tasks[task].attempts[attempt];
            match std::mem::replace(&mut a.state, AState::Done) {
                AState::WaitingInputs { container, .. } => Some(container),
                AState::Launching { container, .. } => Some(container),
                AState::Running { container, .. } => Some(container),
                _ => None,
            }
        };
        if release_container {
            if let Some(c) = container {
                self.return_to_pool(ctx, c);
            }
        }
        self.retry_task(ctx, vidx, task);
    }

    // -- container pool -----------------------------------------------------

    fn return_to_pool(&mut self, ctx: &mut AppContext<'_>, container: ContainerId) {
        if !self.containers.contains_key(&container) {
            return; // already lost/released
        }
        if ctx.container_node(container).is_none() {
            self.containers.remove(&container);
            self.objreg.drop_container(container.0);
            return;
        }
        // Find the best Requesting attempt: lowest vertex depth first
        // (producers before consumers — this is also how deadlock
        // preemption hands containers back), then task order.
        let pick = {
            let Some(run) = self.run.as_ref() else {
                // Between DAGs in session mode: park the container.
                self.park_or_release(ctx, container);
                return;
            };
            let mut best: Option<(usize, usize, usize, usize)> = None; // (depth, v, t, a)
            for (vi, v) in run.vertices.iter().enumerate() {
                let depth = run.dag.depth(vi);
                for (ti, t) in v.tasks.iter().enumerate() {
                    if t.done {
                        continue;
                    }
                    for (ai, a) in t.attempts.iter().enumerate() {
                        if matches!(a.state, AState::Requesting(_)) {
                            let cand = (depth, vi, ti, ai);
                            if best.is_none_or(|b| cand < b) {
                                best = Some(cand);
                            }
                        }
                    }
                }
            }
            best
        };
        match pick {
            Some((_, vi, ti, ai)) if self.config.container_reuse => {
                // Cancel the pending RM request and reuse the container.
                let req = {
                    let run = self.run.as_mut().unwrap();
                    let a = &mut run.vertices[vi].tasks[ti].attempts[ai];
                    match std::mem::replace(&mut a.state, AState::Done) {
                        AState::Requesting(r) => r,
                        s => {
                            a.state = s;
                            None
                        }
                    }
                };
                if let Some(r) = req {
                    ctx.cancel_request(r);
                    self.request_map.remove(&r);
                }
                if let Some(run) = self.run.as_mut() {
                    run.warm_starts += 1;
                }
                self.assign_container(ctx, container, vi, ti, ai);
            }
            _ => self.park_or_release(ctx, container),
        }
    }

    fn park_or_release(&mut self, ctx: &mut AppContext<'_>, container: ContainerId) {
        let keep = self.config.container_reuse
            && (self.run.is_some() || (self.config.session && !self.pending_dags.is_empty()));
        if keep {
            if let Some(c) = self.containers.get_mut(&container) {
                c.idle_since = Some(ctx.now());
            }
            if self.config.reuse_idle_ms == u64::MAX {
                return; // hold for the app's lifetime (service model)
            }
            if !self.idle_timer_armed {
                self.idle_timer_armed = true;
                ctx.set_timer(self.config.reuse_idle_ms, TIMER_IDLE_SWEEP);
            }
        } else {
            self.containers.remove(&container);
            self.objreg.drop_container(container.0);
            ctx.release_container(container);
        }
    }

    fn sweep_idle(&mut self, ctx: &mut AppContext<'_>) {
        self.idle_timer_armed = false;
        let now = ctx.now();
        let expired: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, c)| {
                c.idle_since
                    .is_some_and(|t| now.since(t) >= self.config.reuse_idle_ms)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            self.containers.remove(&id);
            self.objreg.drop_container(id.0);
            ctx.release_container(id);
        }
        let any_idle = self.containers.values().any(|c| c.idle_since.is_some());
        if any_idle {
            self.idle_timer_armed = true;
            ctx.set_timer(self.config.reuse_idle_ms, TIMER_IDLE_SWEEP);
        }
    }

    // -- speculation & deadlock ---------------------------------------------

    fn run_speculator(&mut self, ctx: &mut AppContext<'_>) {
        let candidates: Vec<(usize, usize)> = {
            let Some(run) = self.run.as_ref() else {
                return;
            };
            let mut out = Vec::new();
            for (vi, v) in run.vertices.iter().enumerate() {
                if v.duration_count < self.config.speculation_min_completed as u64 {
                    continue;
                }
                let mean = v.duration_sum as f64 / v.duration_count as f64;
                for (ti, t) in v.tasks.iter().enumerate() {
                    if t.done || t.attempts.len() != 1 {
                        continue; // never more than one backup
                    }
                    if let AState::Running { work, .. } = t.attempts[0].state {
                        let progress = ctx.work_progress(work).max(0.02);
                        let elapsed = ctx.now().since(t.attempts[0].started_at) as f64;
                        let projected = elapsed / progress;
                        if projected > mean * self.config.speculation_slowdown
                            && elapsed > mean * 0.5
                        {
                            out.push((vi, ti));
                        }
                    }
                }
            }
            out
        };
        for (vi, ti) in candidates {
            self.schedule_task(ctx, vi, ti, true);
        }
    }

    /// Out-of-order scheduling can deadlock a constrained cluster: waiting
    /// consumer attempts hold every container while their producers starve.
    /// Detect and preempt (paper §3.4 "Tez has built-in deadlock detection
    /// and preemption").
    fn run_deadlock_detector(&mut self, ctx: &mut AppContext<'_>) {
        if std::env::var("TEZ_DEBUG_STALL").is_ok() {
            if let Some(run) = self.run.as_ref() {
                let summary: Vec<String> = run
                    .vertices
                    .iter()
                    .map(|v| {
                        format!(
                            "{}:{}/{}{}",
                            v.name,
                            v.completed,
                            v.tasks.len(),
                            if v.started { "" } else { "!unstarted" }
                        )
                    })
                    .collect();
                eprintln!("[stall {}] {}", ctx.now(), summary.join(" "));
            }
        }
        let victim = {
            let Some(run) = self.run.as_ref() else {
                return;
            };
            // A producer is starving if some attempt has an unfulfilled
            // container request at depth d…
            let min_starving_depth = run
                .vertices
                .iter()
                .enumerate()
                .filter(|(_, v)| {
                    v.tasks.iter().any(|t| {
                        !t.done
                            && t.attempts
                                .iter()
                                .any(|a| matches!(a.state, AState::Requesting(Some(_))))
                    })
                })
                .map(|(vi, _)| run.dag.depth(vi))
                .min();
            let Some(d) = min_starving_depth else {
                return;
            };
            // …and a consumer at depth > d is holding a container waiting
            // for inputs. Preempt the deepest, youngest waiter.
            run.vertices
                .iter()
                .enumerate()
                .filter(|(vi, _)| run.dag.depth(*vi) > d)
                .flat_map(|(vi, v)| {
                    v.tasks.iter().enumerate().flat_map(move |(ti, t)| {
                        t.attempts
                            .iter()
                            .enumerate()
                            .filter_map(move |(ai, a)| match a.state {
                                AState::WaitingInputs { container, since } => {
                                    Some((since, vi, ti, ai, container))
                                }
                                _ => None,
                            })
                    })
                })
                .max_by_key(|&(since, vi, ti, _, _)| (since, vi, ti))
        };
        if let Some((_, vi, ti, ai, container)) = victim {
            let vname = {
                let run = self.run.as_mut().unwrap();
                let a = &mut run.vertices[vi].tasks[ti].attempts[ai];
                a.state = AState::Done;
                run.vertices[vi].tasks[ti].scheduled = false;
                run.vertices[vi].name.clone()
            };
            // Preemption is a terminal outcome for the attempt: close it on
            // the timeline so every scheduled attempt ends in exactly one
            // terminal event.
            ctx.record_event(TlEvent::AttemptFinished {
                vertex: vname,
                task: ti as u64,
                attempt: ai as u64,
                container: container.0,
                status: "killed".to_string(),
            });
            // The container goes back to the pool, which hands it to the
            // lowest-depth requesting attempt (the starving producer), and
            // the preempted task is re-scheduled behind it.
            self.return_to_pool(ctx, container);
            self.schedule_task(ctx, vi, ti, false);
        }
    }

    // -- AM failure / recovery ----------------------------------------------

    fn inject_am_failure(&mut self, ctx: &mut AppContext<'_>) {
        if self.am_failed {
            return;
        }
        self.am_failed = true;
        self.am_recovering = true;
        // Everything volatile dies with the AM; completed-task state and
        // published shard data survive (checkpoint + shuffle service).
        let ids: Vec<ContainerId> = self.containers.keys().copied().collect();
        for id in ids {
            self.containers.remove(&id);
            self.objreg.drop_container(id.0);
            ctx.release_container(id);
        }
        let mut dead_requests = Vec::new();
        if let Some(run) = self.run.as_mut() {
            for v in &mut run.vertices {
                for t in &mut v.tasks {
                    if t.done {
                        continue;
                    }
                    t.scheduled = false;
                    for a in &mut t.attempts {
                        match std::mem::replace(&mut a.state, AState::Done) {
                            AState::Requesting(Some(r)) => dead_requests.push(r),
                            AState::Running { work, .. } => {
                                self.work_map.remove(&work);
                                self.work_started.remove(&work);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        for r in dead_requests {
            ctx.cancel_request(r);
            self.request_map.remove(&r);
        }
        ctx.set_timer(self.config.am_restart_ms, TIMER_AM_RESTART);
    }

    fn recover_from_checkpoint(&mut self, ctx: &mut AppContext<'_>) {
        self.am_recovering = false;
        // Re-drive scheduling for every unfinished task. Vertex managers
        // survived in-memory here (we model recovery at the task level);
        // completed tasks and their publications are intact, so consumers
        // resume exactly where the checkpoint left them.
        let pending: Vec<(usize, usize)> = {
            let Some(run) = self.run.as_ref() else { return };
            let mut out = Vec::new();
            for (vi, v) in run.vertices.iter().enumerate() {
                if !v.started {
                    continue;
                }
                for (ti, t) in v.tasks.iter().enumerate() {
                    // Re-schedule anything the VM had already scheduled.
                    if !t.done && !t.attempts.is_empty() {
                        out.push((vi, ti));
                    }
                }
            }
            out
        };
        for (vi, ti) in pending {
            self.schedule_task(ctx, vi, ti, false);
        }
    }

    // -- node loss ----------------------------------------------------------

    fn on_node_lost(&mut self, ctx: &mut AppContext<'_>, node: NodeId) {
        self.service.drop_node(node.0);
        if !self.config.proactive_reexecution {
            return;
        }
        // Proactively regenerate outputs whose consumers still need them
        // (paper §4.3).
        let victims: Vec<(usize, usize)> = {
            let Some(run) = self.run.as_ref() else { return };
            let mut out = Vec::new();
            for (vi, v) in run.vertices.iter().enumerate() {
                let consumers = run.dag.consumers(vi);
                let all_consumers_done = consumers.iter().all(|&c| {
                    let cv = &run.vertices[c];
                    cv.started && cv.tasks.iter().all(|t| t.done)
                });
                if all_consumers_done && !consumers.is_empty() {
                    continue;
                }
                for (ti, t) in v.tasks.iter().enumerate() {
                    if t.done && t.published.iter().any(|&(_, n, _)| n == node.0) {
                        out.push((vi, ti));
                    }
                }
            }
            out
        };
        for (vi, ti) in victims {
            self.reexecute_producer(ctx, vi, ti);
        }
    }
}

/// Stable snake-case name of an edge's data movement for timeline events.
fn movement_name(m: &DataMovement) -> &'static str {
    match m {
        DataMovement::ScatterGather => "scatter_gather",
        DataMovement::OneToOne => "one_to_one",
        DataMovement::Broadcast => "broadcast",
        DataMovement::Custom { .. } => "custom",
    }
}

// ---------------------------------------------------------------------------
// YarnApp implementation
// ---------------------------------------------------------------------------

impl YarnApp for DagAppMaster {
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>) {
        if self.finished {
            return;
        }
        match event {
            AppEvent::Start => {
                if let Some(at) = self.config.am_fail_at_ms {
                    ctx.set_timer(at, TIMER_AM_FAIL);
                }
                if self.config.session && self.config.prewarm_containers > 0 {
                    for _ in 0..self.config.prewarm_containers {
                        let rid = ctx.request_container(ContainerRequest::anywhere(
                            0,
                            self.config.task_resource(),
                        ));
                        // Not mapped to a task: allocation becomes a warm
                        // container immediately.
                        let _ = rid;
                        self.prewarm_outstanding += 1;
                        self.prewarm_requested += 1;
                    }
                }
                self.start_next_dag(ctx);
            }
            AppEvent::ContainerAllocated(Container {
                id, node, request, ..
            }) => {
                self.containers.insert(
                    id,
                    ContainerRt {
                        node,
                        idle_since: None,
                    },
                );
                if let Some(run) = self.run.as_mut() {
                    run.containers_allocated += 1;
                }
                match self.request_map.remove(&request) {
                    Some((vi, ti, ai)) => {
                        let stale = {
                            let run = self.run.as_ref();
                            run.is_none_or(|r| {
                                r.vertices
                                    .get(vi)
                                    .and_then(|v| v.tasks.get(ti))
                                    .and_then(|t| t.attempts.get(ai))
                                    .is_none_or(|a| !matches!(a.state, AState::Requesting(_)))
                            })
                        };
                        if stale {
                            self.return_to_pool(ctx, id);
                        } else {
                            self.assign_container(ctx, id, vi, ti, ai);
                        }
                    }
                    None => {
                        // Pre-warm container: run the warm-up payload
                        // (paper §4.2) so the JIT model kicks in.
                        self.prewarm_requested = self.prewarm_requested.saturating_sub(1);
                        let cost = WorkCost {
                            cpu_records: 1,
                            ..WorkCost::default()
                        };
                        let work = ctx.start_work(id, "w:prewarm".into(), cost);
                        let _ = work; // completes into the pool
                    }
                }
            }
            AppEvent::ContainerCompleted { container, .. } => {
                self.containers.remove(&container);
                self.objreg.drop_container(container.0);
                // Attempts on it: running works got their own ContainerLost
                // completion; waiting attempts must be failed here.
                let waiting: Vec<(usize, usize, usize)> = {
                    let Some(run) = self.run.as_ref() else { return };
                    run.vertices
                        .iter()
                        .enumerate()
                        .flat_map(|(vi, v)| {
                            v.tasks.iter().enumerate().flat_map(move |(ti, t)| {
                                t.attempts.iter().enumerate().filter_map(move |(ai, a)| {
                                    match a.state {
                                        AState::WaitingInputs { container: c, .. }
                                        | AState::Launching { container: c, .. }
                                            if c == container =>
                                        {
                                            Some((vi, ti, ai))
                                        }
                                        _ => None,
                                    }
                                })
                            })
                        })
                        .collect()
                };
                for (vi, ti, ai) in waiting {
                    self.attempt_failed(ctx, vi, ti, ai, false);
                }
            }
            AppEvent::WorkCompleted {
                work,
                container,
                outcome,
            } => self.on_work_completed(ctx, work, container, outcome),
            AppEvent::Timer { tag } => match tag {
                TIMER_SPECULATION => {
                    self.speculation_timer_armed = false;
                    if self.run.is_some() && !self.am_recovering {
                        self.run_speculator(ctx);
                        self.speculation_timer_armed = true;
                        ctx.set_timer(self.config.speculation_interval_ms, TIMER_SPECULATION);
                    }
                }
                TIMER_DEADLOCK => {
                    self.deadlock_timer_armed = false;
                    if self.run.is_some() && !self.am_recovering {
                        self.run_deadlock_detector(ctx);
                        self.deadlock_timer_armed = true;
                        ctx.set_timer(self.config.deadlock_check_ms, TIMER_DEADLOCK);
                    }
                }
                TIMER_IDLE_SWEEP => self.sweep_idle(ctx),
                TIMER_AM_FAIL => self.inject_am_failure(ctx),
                TIMER_AM_RESTART => self.recover_from_checkpoint(ctx),
                TIMER_NEXT_DAG => self.start_next_dag(ctx),
                _ => {}
            },
            AppEvent::PayloadReady { ticket } => self.on_payload_ready(ctx, ticket),
            AppEvent::NodeLost { node } => self.on_node_lost(ctx, node),
        }
    }
}

// ---------------------------------------------------------------------------
// Context adapters
// ---------------------------------------------------------------------------

enum VmCall {
    Initialize,
    RootSplits,
    Start,
}

struct SourceView {
    name: String,
    kind: SourceKind,
    parallelism: Option<usize>,
    completed: usize,
}

struct VmView {
    vertex: String,
    parallelism: Option<usize>,
    scheduled: usize,
    sources: Vec<SourceView>,
    splits: Vec<(String, Option<usize>)>,
    slots: usize,
}

enum VmAction {
    Reconfigure {
        parallelism: usize,
        routing: Vec<(String, Arc<dyn EdgeManagerPlugin>)>,
    },
    Schedule(Vec<usize>),
}

struct VmCtx {
    view: VmView,
    actions: Vec<VmAction>,
}

impl VertexManagerContext for VmCtx {
    fn vertex_name(&self) -> &str {
        &self.view.vertex
    }
    fn parallelism(&self) -> Option<usize> {
        self.view.parallelism
    }
    fn source_vertices(&self) -> Vec<String> {
        self.view.sources.iter().map(|s| s.name.clone()).collect()
    }
    fn source_parallelism(&self, vertex: &str) -> Option<usize> {
        self.view
            .sources
            .iter()
            .find(|s| s.name == vertex)
            .and_then(|s| s.parallelism)
    }
    fn completed_source_tasks(&self, vertex: &str) -> usize {
        self.view
            .sources
            .iter()
            .find(|s| s.name == vertex)
            .map_or(0, |s| s.completed)
    }
    fn source_edge_kind(&self, vertex: &str) -> Option<SourceKind> {
        self.view
            .sources
            .iter()
            .find(|s| s.name == vertex)
            .map(|s| s.kind)
    }
    fn root_input_splits(&self, source: &str) -> Option<usize> {
        self.view
            .splits
            .iter()
            .find(|(s, _)| s == source)
            .and_then(|(_, n)| *n)
    }
    fn reconfigure(
        &mut self,
        parallelism: usize,
        routing: Vec<(String, Arc<dyn EdgeManagerPlugin>)>,
    ) {
        self.view.parallelism = Some(parallelism);
        self.actions.push(VmAction::Reconfigure {
            parallelism,
            routing,
        });
    }
    fn schedule_tasks(&mut self, tasks: Vec<usize>) {
        self.view.scheduled += tasks.len();
        self.actions.push(VmAction::Schedule(tasks));
    }
    fn scheduled_tasks(&self) -> usize {
        self.view.scheduled
    }
    fn total_slots(&self) -> usize {
        self.view.slots
    }
}

struct InitCtx<'a> {
    dfs: &'a tez_yarn::SimHdfs,
    nodes: usize,
    slots: usize,
    vertex: &'a str,
    counters: &'a mut Counters,
}

impl<'a> InitializerContext for InitCtx<'a> {
    fn dfs(&self) -> &dyn Dfs {
        self.dfs
    }
    fn cluster_nodes(&self) -> usize {
        self.nodes
    }
    fn total_slots(&self) -> usize {
        self.slots
    }
    fn vertex_name(&self) -> &str {
        self.vertex
    }
    fn counters(&mut self) -> &mut Counters {
        self.counters
    }
}
