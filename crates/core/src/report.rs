//! Execution reports: what the client gets back from a DAG run.

use tez_runtime::{Counters, RunReport};
use tez_yarn::SimTime;

/// Terminal status of a DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagStatus {
    /// All vertices succeeded and sinks committed.
    Succeeded,
    /// The DAG failed (task exhausted attempts, fatal error, …).
    Failed(String),
}

impl DagStatus {
    /// Whether the DAG succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, DagStatus::Succeeded)
    }
}

/// Per-vertex execution statistics.
#[derive(Clone, Debug)]
pub struct VertexReport {
    /// Vertex name.
    pub name: String,
    /// Resolved parallelism.
    pub tasks: usize,
    /// Total attempts launched (tasks + retries + speculation).
    pub attempts: usize,
    /// Attempts that failed or were killed.
    pub failed_attempts: usize,
    /// First task launch time.
    pub first_launch: Option<SimTime>,
    /// Last task completion time.
    pub last_finish: Option<SimTime>,
}

/// Everything a DAG run produced.
#[derive(Clone, Debug)]
pub struct DagReport {
    /// DAG name.
    pub name: String,
    /// When the DAG was submitted to the AM.
    pub submitted: SimTime,
    /// When the DAG finished.
    pub finished: SimTime,
    /// Terminal status.
    pub status: DagStatus,
    /// Aggregated counters across all tasks.
    pub counters: Counters,
    /// Per-vertex statistics, in topological order.
    pub vertices: Vec<VertexReport>,
    /// Containers newly allocated while this DAG ran (session reuse shows
    /// up as a smaller number here).
    pub containers_allocated: usize,
    /// Task attempts that ran in a re-used (warm) container.
    pub warm_starts: usize,
    /// Speculative attempts launched.
    pub speculative_attempts: usize,
    /// Tasks re-executed to regenerate lost intermediate data.
    pub reexecuted_tasks: usize,
    /// The unified observability record: scheduler decisions, container
    /// lifecycle, per-edge data-plane stats and attempt spans
    /// ([`RunReport::to_json`] serializes it deterministically).
    pub run_report: RunReport,
}

impl DagReport {
    /// Wall-clock runtime of the DAG (submission to finish).
    pub fn runtime_ms(&self) -> u64 {
        self.finished.since(self.submitted)
    }

    /// Runtime in seconds.
    pub fn runtime_s(&self) -> f64 {
        self.runtime_ms() as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_math() {
        let r = DagReport {
            name: "d".into(),
            submitted: SimTime(1_000),
            finished: SimTime(11_500),
            status: DagStatus::Succeeded,
            counters: Counters::new(),
            vertices: vec![],
            containers_allocated: 0,
            warm_starts: 0,
            speculative_attempts: 0,
            reexecuted_tasks: 0,
            run_report: RunReport::default(),
        };
        assert_eq!(r.runtime_ms(), 10_500);
        assert!((r.runtime_s() - 10.5).abs() < 1e-9);
        assert!(r.status.is_success());
    }
}
