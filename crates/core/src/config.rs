//! Orchestrator configuration: every §4.2/§4.3 feature has a switch so the
//! ablation benches can isolate its contribution.

/// Tez execution configuration.
#[derive(Clone, Debug)]
pub struct TezConfig {
    /// Re-use containers for subsequent tasks instead of releasing after
    /// every task (paper §4.2 "Container Reuse").
    pub container_reuse: bool,
    /// How long an idle container is held for re-use before being returned
    /// to YARN.
    pub reuse_idle_ms: u64,
    /// Session mode: containers (and the object registry) survive across
    /// DAGs submitted to the same AM (paper §4.2 "Session").
    pub session: bool,
    /// Containers to pre-warm at session start (paper: "a session can be
    /// pre-warmed ... these pre-warmed containers can execute some
    /// pre-determined code to allow JVM optimizations to kick in").
    pub prewarm_containers: usize,
    /// Enable speculative execution of stragglers (paper §4.2).
    pub speculation: bool,
    /// Speculator evaluation period.
    pub speculation_interval_ms: u64,
    /// An attempt is speculatable when its projected runtime exceeds the
    /// vertex mean by this factor.
    pub speculation_slowdown: f64,
    /// Completed tasks required in a vertex before speculation engages.
    pub speculation_min_completed: usize,
    /// Slow-start window for shuffle consumers: start scheduling when this
    /// fraction of producer tasks finished…
    pub slowstart_min_fraction: f64,
    /// …and have all consumers scheduled at this fraction.
    pub slowstart_max_fraction: f64,
    /// Enable automatic partition-cardinality estimation (paper §3.4,
    /// Figure 6).
    pub auto_parallelism: bool,
    /// Target (scaled) bytes per consumer task for auto-parallelism.
    pub desired_bytes_per_reducer: u64,
    /// Fraction of producer statistics required before re-estimating.
    pub auto_parallelism_stats_fraction: f64,
    /// Min/max split sizes (scaled bytes) for split calculation.
    pub min_split_bytes: u64,
    /// Maximum split size (scaled bytes); larger blocks are not grouped.
    pub max_split_bytes: u64,
    /// Maximum attempts per task before failing the DAG.
    pub max_task_attempts: usize,
    /// Deadlock detector period (out-of-order scheduling can deadlock a
    /// constrained cluster; Tez detects and preempts, paper §3.4).
    pub deadlock_check_ms: u64,
    /// Proactively re-execute completed tasks whose outputs lived on a
    /// failed node (paper §4.3).
    pub proactive_reexecution: bool,
    /// Inject an AM failure at this time; the AM restarts and recovers from
    /// its checkpoint (paper §4.3 "The Tez AM periodically checkpoints its
    /// state").
    pub am_fail_at_ms: Option<u64>,
    /// AM restart cost after a failure.
    pub am_restart_ms: u64,
    /// Delay inserted between DAGs of one submission sequence, modelling a
    /// fresh AM launch per job (the classic-MapReduce chain behaviour; 0
    /// for Tez, which keeps one AM for the whole session).
    pub per_dag_am_penalty_ms: u64,
    /// Hard cap on concurrently-held containers (the service-executor
    /// model of §6.5 pre-allocates a fixed executor fleet; `None` = grow
    /// and shrink with demand, the Tez model).
    pub max_containers: Option<usize>,
    /// Per-task container resource.
    pub task_memory_mb: u64,
    /// Per-task vcores.
    pub task_vcores: u32,
    /// Attempts per shuffle fetch (including the first) before the failure
    /// surfaces as an `InputReadError` and drives producer re-execution
    /// (paper §4.3).
    pub fetch_retry_attempts: u32,
    /// Backoff before the first fetch retry, in simulated milliseconds;
    /// doubles per subsequent retry and is charged to the attempt's cost.
    pub fetch_retry_backoff_ms: u64,
    /// Multiplier converting real data-plane bytes/records into the
    /// *declared* scale charged by the cost model (see DESIGN.md §4;
    /// 1.0 for correctness tests).
    pub byte_scale: f64,
    /// Worker threads for real data-plane payloads. `None` defers to the
    /// `TEZ_WORKERS` environment variable, then to available parallelism.
    /// Simulated outcomes are byte-identical at any worker count — this
    /// knob only trades wall-clock time for threads.
    pub workers: Option<usize>,
}

impl Default for TezConfig {
    fn default() -> Self {
        TezConfig {
            container_reuse: true,
            reuse_idle_ms: 3_000,
            session: false,
            prewarm_containers: 0,
            speculation: true,
            speculation_interval_ms: 2_000,
            speculation_slowdown: 2.0,
            speculation_min_completed: 3,
            slowstart_min_fraction: 0.25,
            slowstart_max_fraction: 0.75,
            auto_parallelism: true,
            desired_bytes_per_reducer: 256 << 20,
            auto_parallelism_stats_fraction: 0.5,
            min_split_bytes: 64 << 20,
            max_split_bytes: 256 << 20,
            max_task_attempts: 4,
            deadlock_check_ms: 5_000,
            proactive_reexecution: true,
            am_fail_at_ms: None,
            am_restart_ms: 8_000,
            per_dag_am_penalty_ms: 0,
            max_containers: None,
            task_memory_mb: 1024,
            task_vcores: 1,
            fetch_retry_attempts: 3,
            fetch_retry_backoff_ms: 100,
            byte_scale: 1.0,
            workers: None,
        }
    }
}

impl TezConfig {
    /// The classic-MapReduce baseline personality: no container reuse, no
    /// session, no speculation beyond MR defaults, fixed parallelism, no
    /// late-binding optimizations. Used by `tez-mapreduce`'s baseline
    /// runtime so both systems share one orchestrator implementation while
    /// exercising different feature sets.
    pub fn mapreduce_baseline() -> Self {
        TezConfig {
            container_reuse: false,
            session: false,
            prewarm_containers: 0,
            auto_parallelism: false,
            // MR also slow-starts its reducers (mapreduce.job.reduce.slowstart).
            slowstart_min_fraction: 0.8,
            slowstart_max_fraction: 0.95,
            // Every job in a chain launches its own AM.
            per_dag_am_penalty_ms: 5_000,
            ..TezConfig::default()
        }
    }

    /// Scale factor applied to a real byte count.
    pub fn scale_bytes(&self, real: u64) -> u64 {
        (real as f64 * self.byte_scale) as u64
    }

    /// The per-task YARN resource.
    pub fn task_resource(&self) -> tez_yarn::Resource {
        tez_yarn::Resource::new(self.task_memory_mb, self.task_vcores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_tez_features() {
        let c = TezConfig::default();
        assert!(c.container_reuse);
        assert!(c.auto_parallelism);
        assert!(c.speculation);
        assert_eq!(c.byte_scale, 1.0);
    }

    #[test]
    fn baseline_disables_tez_features() {
        let c = TezConfig::mapreduce_baseline();
        assert!(!c.container_reuse);
        assert!(!c.auto_parallelism);
        assert!(!c.session);
        assert!(c.slowstart_min_fraction > 0.5);
    }

    #[test]
    fn byte_scaling() {
        let c = TezConfig {
            byte_scale: 1000.0,
            ..TezConfig::default()
        };
        assert_eq!(c.scale_bytes(1024), 1_024_000);
    }
}
