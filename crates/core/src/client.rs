//! [`TezClient`]: the high-level entry point used by engines, examples and
//! benches — build a simulated cluster, populate HDFS, submit one DAG or a
//! session of DAGs, run to completion, and collect reports.

use crate::am::{DagAppMaster, DagSubmission, SessionOutput, SharedSessionOutput};
use crate::config::TezConfig;
use crate::report::DagReport;
use parking_lot::Mutex;
use std::sync::Arc;
use tez_dag::Dag;
use tez_runtime::{ComponentRegistry, SecurityToken};
use tez_shuffle::{DataService, SharedDataService};
use tez_yarn::{
    ClusterSpec, CostModel, FaultPlan, QueueSpec, RmConfig, SimHdfs, SimTime, Simulation, Trace,
};

/// Client for running DAGs on a simulated cluster.
pub struct TezClient {
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// Cost model.
    pub cost: CostModel,
    /// Scheduler queues (empty → one default queue).
    pub queues: Vec<QueueSpec>,
    /// RM tunables.
    pub rm_config: RmConfig,
    /// Fault schedule.
    pub fault: FaultPlan,
    /// Determinism seed.
    pub seed: u64,
    /// Containers held by a synthetic background tenant for the whole run
    /// (models a busy production cluster, e.g. the paper's 60-70%
    /// utilization Yahoo setting of §6.3).
    pub background_containers: usize,
}

/// Synthetic tenant holding capacity for the whole simulation.
struct BackgroundTenant {
    containers: usize,
}

impl tez_yarn::YarnApp for BackgroundTenant {
    fn on_event(&mut self, event: tez_yarn::AppEvent, ctx: &mut tez_yarn::AppContext<'_>) {
        if let tez_yarn::AppEvent::Start = event {
            for _ in 0..self.containers {
                ctx.request_container(tez_yarn::ContainerRequest::anywhere(
                    0,
                    tez_yarn::Resource::default(),
                ));
            }
        }
    }
}

/// Everything a finished run exposes.
pub struct TezRun {
    /// One report per DAG, in submission order.
    pub reports: Vec<DagReport>,
    /// The hierarchical metrics registry (task → vertex → DAG → app
    /// rollups plus latency/size histograms), as of the last completed DAG.
    pub metrics: tez_runtime::MetricsRegistry,
    sim: Simulation,
}

impl TezRun {
    /// The cluster filesystem after the run (read committed outputs).
    pub fn hdfs(&self) -> &SimHdfs {
        self.sim.hdfs()
    }

    /// The execution trace (Gantt spans, allocation series), derived from
    /// the structured event timeline.
    pub fn trace(&self) -> Trace {
        self.sim.trace()
    }

    /// The full structured event timeline of the run (every app).
    pub fn timeline(&self) -> &tez_yarn::Timeline {
        self.sim.timeline()
    }

    /// ATS-style history entity store derived from the per-DAG reports
    /// (DAG / vertex / task-attempt / container entities with filters and
    /// related-entity links). Built on demand; deterministic.
    pub fn history(&self) -> tez_runtime::HistoryStore {
        tez_runtime::HistoryStore::from_reports(self.reports.iter().map(|r| &r.run_report))
    }

    /// The first (often only) DAG report.
    pub fn report(&self) -> &DagReport {
        &self.reports[0]
    }
}

impl TezClient {
    /// Client over a cluster with default cost model and scheduler, no
    /// faults, fixed seed.
    pub fn new(cluster: ClusterSpec) -> Self {
        TezClient {
            cluster,
            cost: CostModel::default(),
            queues: Vec::new(),
            rm_config: RmConfig::default(),
            fault: FaultPlan::none(),
            seed: 0x7e2,
            background_containers: 0,
        }
    }

    /// Hold `containers` cluster containers in a synthetic background
    /// tenant for the whole run.
    pub fn with_background_load(mut self, containers: usize) -> Self {
        self.background_containers = containers;
        self
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the fault plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the bare simulation (multi-app experiments drive it manually).
    pub fn build_simulation(&self) -> Simulation {
        Simulation::new(
            self.cluster.clone(),
            self.cost.clone(),
            self.queues.clone(),
            self.rm_config.clone(),
            self.fault.clone(),
            self.seed,
        )
    }

    /// Run one DAG. `setup` populates HDFS before execution.
    pub fn run_dag(
        &self,
        dag: Dag,
        registry: ComponentRegistry,
        config: TezConfig,
        setup: impl FnOnce(&SimHdfs),
    ) -> TezRun {
        self.run_session(vec![dag], registry, config, setup)
    }

    /// Run a sequence of DAGs on one AM (a session when
    /// `config.session`).
    pub fn run_session(
        &self,
        dags: Vec<Dag>,
        registry: ComponentRegistry,
        config: TezConfig,
        setup: impl FnOnce(&SimHdfs),
    ) -> TezRun {
        let mut sim = self.build_simulation();
        setup(sim.hdfs());
        if self.background_containers > 0 {
            sim.add_app(
                Box::new(BackgroundTenant {
                    containers: self.background_containers,
                }),
                "default",
                SimTime::ZERO,
            );
        }
        let service: SharedDataService = DataService::new();
        if self.fault.transient_fetch_failures > 0 {
            service.inject_transient_failures(self.fault.transient_fetch_failures);
        }
        let output: SharedSessionOutput = Arc::new(Mutex::new(SessionOutput::default()));
        let am = DagAppMaster::new(
            config,
            registry,
            service,
            SecurityToken(0xA11CE),
            dags.into_iter().map(|dag| DagSubmission { dag }).collect(),
            Arc::clone(&output),
        );
        sim.add_app(Box::new(am), "default", SimTime::ZERO);
        sim.run();
        let (reports, metrics) = {
            let mut out = output.lock();
            (
                std::mem::take(&mut out.reports),
                std::mem::take(&mut out.metrics),
            )
        };
        TezRun {
            reports,
            metrics,
            sim,
        }
    }
}
