//! The task runner: instantiates and drives one task's IPO pipeline.
//!
//! Mirrors the task runtime of paper §3.2: the framework creates the
//! inputs, processor and outputs from their descriptors, configures them
//! with their opaque payloads, starts the inputs, runs the processor, and
//! closes the outputs. Data plane errors surface as
//! [`TaskError::InputRead`] so the AM can regenerate producers (§4.3).

use tez_runtime::{
    counter_names, ComponentRegistry, Counters, NamedInput, NamedOutput, ProcessorContext, TaskEnv,
    TaskError, TaskOutcome, TaskSpec,
};

/// Run one task attempt to completion against the given environment.
///
/// On success, returns the outputs (not yet published — the AM publishes
/// them only when the simulated work completes successfully, preserving
/// failure semantics), the counters, and any control-plane events the
/// processor emitted.
pub fn run_task(
    spec: &TaskSpec,
    env: &mut TaskEnv<'_>,
    registry: &ComponentRegistry,
) -> Result<TaskOutcome, TaskError> {
    let mut counters = Counters::new();
    let mut events = Vec::new();

    // Instantiate IPOs from descriptors.
    let mut inputs: Vec<NamedInput> = Vec::with_capacity(spec.inputs.len());
    for ispec in &spec.inputs {
        inputs.push(NamedInput {
            name: ispec.name.clone(),
            input: registry.create_input(ispec)?,
        });
    }
    let mut outputs: Vec<NamedOutput> = Vec::with_capacity(spec.outputs.len());
    for ospec in &spec.outputs {
        outputs.push(NamedOutput {
            name: ospec.name.clone(),
            output: registry.create_output(ospec)?,
        });
    }
    let mut processor = registry.create_processor(&spec.processor.kind, &spec.processor.payload)?;

    // Start inputs (fetch phase). InputRead errors get the consumer
    // identity stamped here.
    for input in &mut inputs {
        if let Err(e) = input.input.start(env) {
            return Err(stamp_consumer(e, spec));
        }
    }
    for input in &inputs {
        counters.add(counter_names::BYTES_READ, input.input.bytes_read());
        counters.add(counter_names::REMOTE_BYTES, input.input.remote_bytes());
        counters.add(counter_names::RECORDS_IN, input.input.records_read());
        counters.add(counter_names::SHUFFLED_SHARDS, input.input.shards_fetched());
    }

    // Run the processor.
    {
        let mut ctx = ProcessorContext {
            meta: &spec.meta,
            inputs: &mut inputs,
            outputs: &mut outputs,
            env,
            counters: &mut counters,
            events: &mut events,
        };
        processor
            .run(&mut ctx)
            .map_err(|e| stamp_consumer(e, spec))?;
    }

    // Close outputs.
    let mut commits = Vec::with_capacity(outputs.len());
    for output in &mut outputs {
        let commit = output.output.close(env)?;
        counters.add(counter_names::BYTES_WRITTEN, commit.total_bytes());
        counters.add(counter_names::RECORDS_OUT, commit.total_records());
        counters.add(counter_names::SPILLED_BYTES, commit.spilled_bytes);
        commits.push((output.name.clone(), commit));
    }

    Ok(TaskOutcome {
        outputs: commits,
        counters,
        events,
    })
}

fn stamp_consumer(e: TaskError, spec: &TaskSpec) -> TaskError {
    match e {
        TaskError::InputRead(mut errs) => {
            for err in &mut errs {
                err.consumer_vertex = spec.meta.vertex.clone();
                err.consumer_task = spec.meta.task_index;
            }
            TaskError::InputRead(errs)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tez_dag::NamedDescriptor;
    use tez_runtime::{
        InputSource, InputSpec, MemDfs, NullObjectRegistry, OutputSpec, Processor, SecurityToken,
        ShardLocator, TaskMeta,
    };
    use tez_shuffle::io::kinds;
    use tez_shuffle::{Combiner, DataService, Partitioner};

    /// Word-count tokenizer: reads text values, emits (word, 1).
    struct Tokenizer;
    impl Processor for Tokenizer {
        fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
            let mut reader = ctx.reader("src")?.into_kv()?;
            let mut pairs = Vec::new();
            while let Some((_, v)) = reader.next() {
                for word in String::from_utf8_lossy(&v).split_whitespace() {
                    pairs.push(word.to_string());
                }
            }
            for w in pairs {
                ctx.write("sum", w.as_bytes(), &1u64.to_le_bytes())?;
            }
            Ok(())
        }
    }

    fn registry() -> ComponentRegistry {
        let mut r = ComponentRegistry::new();
        tez_shuffle::register_builtins(&mut r);
        r.register_processor("Tokenizer", |_| Box::new(Tokenizer));
        r
    }

    struct Fetcher(tez_shuffle::SharedDataService);
    impl tez_runtime::DataFetcher for Fetcher {
        fn fetch(
            &self,
            locator: &ShardLocator,
            token: SecurityToken,
        ) -> Result<tez_runtime::FetchedShard, tez_runtime::FetchError> {
            self.0.fetch_from(0, locator, token)
        }
    }

    #[test]
    fn tokenizer_task_end_to_end() {
        let svc = DataService::new();
        let token = SecurityToken(1);
        svc.register_token(token);

        // Stage input data in the service as a one-to-one style shard.
        let mut buf = Vec::new();
        tez_shuffle::codec::encode_kv(&mut buf, b"", b"the quick the");
        let oid = svc.new_output_id();
        let locs = svc.publish(
            0,
            oid,
            vec![tez_runtime::PartitionBuf {
                data: Bytes::from(buf),
                records: 1,
                sorted: false,
            }],
        );

        let spec = TaskSpec {
            meta: TaskMeta {
                dag: "wc".into(),
                vertex: "tok".into(),
                task_index: 0,
                num_tasks: 1,
                attempt: 0,
            },
            processor: NamedDescriptor::new("Tokenizer"),
            inputs: vec![InputSpec {
                name: "src".into(),
                descriptor: NamedDescriptor::new(kinds::UNORDERED_IN),
                source: InputSource::Shards(locs),
            }],
            outputs: vec![OutputSpec {
                name: "sum".into(),
                descriptor: NamedDescriptor::with_payload(
                    kinds::ORDERED_OUT,
                    tez_shuffle::io::output_payload(&Partitioner::Single, Combiner::SumU64),
                ),
                num_partitions: 1,
                is_sink: false,
                task_index: 0,
                vertex: "tok".into(),
            }],
        };

        let fetcher = Fetcher(svc);
        let dfs = MemDfs::new();
        let reg = NullObjectRegistry;
        let mut env = TaskEnv {
            fetcher: &fetcher,
            dfs: &dfs,
            registry: &reg,
            token,
        };
        let outcome = run_task(&spec, &mut env, &registry()).unwrap();
        assert_eq!(outcome.outputs.len(), 1);
        let commit = &outcome.outputs[0].1;
        // Combined: "the"->2, "quick"->1.
        assert_eq!(commit.partitions[0].records, 2);
        assert_eq!(outcome.counters.get(counter_names::RECORDS_OUT), 2);
        assert!(outcome.counters.get(counter_names::BYTES_READ) > 0);
    }

    #[test]
    fn unknown_processor_fails_fatally() {
        let spec = TaskSpec {
            meta: TaskMeta {
                dag: "d".into(),
                vertex: "v".into(),
                task_index: 0,
                num_tasks: 1,
                attempt: 0,
            },
            processor: NamedDescriptor::new("Nope"),
            inputs: vec![],
            outputs: vec![],
        };
        let svc = DataService::new();
        let fetcher = Fetcher(svc);
        let dfs = MemDfs::new();
        let reg = NullObjectRegistry;
        let mut env = TaskEnv {
            fetcher: &fetcher,
            dfs: &dfs,
            registry: &reg,
            token: SecurityToken(1),
        };
        let err = run_task(&spec, &mut env, &registry()).unwrap_err();
        assert!(!err.is_retriable());
    }

    #[test]
    fn fetch_failure_is_stamped_with_consumer() {
        let svc = DataService::new();
        let token = SecurityToken(1);
        svc.register_token(token);
        let missing = ShardLocator {
            node: 0,
            output_id: 999,
            partition: 0,
            bytes: 10,
            records: 1,
            sorted: false,
        };
        let spec = TaskSpec {
            meta: TaskMeta {
                dag: "d".into(),
                vertex: "consumer".into(),
                task_index: 7,
                num_tasks: 8,
                attempt: 0,
            },
            processor: NamedDescriptor::new("Tokenizer"),
            inputs: vec![InputSpec {
                name: "src".into(),
                descriptor: NamedDescriptor::new(kinds::UNORDERED_IN),
                source: InputSource::Shards(vec![missing]),
            }],
            outputs: vec![],
        };
        let fetcher = Fetcher(svc);
        let dfs = MemDfs::new();
        let reg = NullObjectRegistry;
        let mut env = TaskEnv {
            fetcher: &fetcher,
            dfs: &dfs,
            registry: &reg,
            token,
        };
        match run_task(&spec, &mut env, &registry()).unwrap_err() {
            TaskError::InputRead(errs) => {
                assert_eq!(errs[0].consumer_vertex, "consumer");
                assert_eq!(errs[0].consumer_task, 7);
                assert_eq!(errs[0].locator.output_id, 999);
            }
            other => panic!("expected InputRead, got {other:?}"),
        }
    }
}
