//! The shared object registry (paper §4.2): a per-container in-memory
//! cache whose entries live for a vertex, a DAG, or the whole session.
//!
//! "It can be used to avoid re-computing results when possible. E.g. Apache
//! Hive populates the hash table for the smaller side of a map join …
//! once a hash table has been constructed by a join task, other join tasks
//! don't need to re-compute it."

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use tez_runtime::{ObjectRegistry, ObjectScope};

#[derive(Default)]
struct Slot {
    entries: HashMap<String, (ObjectScope, Arc<dyn Any + Send + Sync>)>,
}

/// Registry state shared across containers of one AM; each container gets
/// its own namespace (objects are JVM-local in real Tez).
#[derive(Default)]
pub struct RegistryState {
    containers: Mutex<HashMap<u64, Slot>>,
}

impl RegistryState {
    /// Fresh state.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// View of one container's registry.
    pub fn for_container(self: &Arc<Self>, container: u64) -> ContainerObjectRegistry {
        ContainerObjectRegistry {
            state: Arc::clone(self),
            container,
        }
    }

    /// Drop a container's whole cache (container released/lost).
    pub fn drop_container(&self, container: u64) {
        self.containers.lock().remove(&container);
    }

    /// Evict entries at or below the given scope everywhere: `Vertex`
    /// evicts only vertex-scoped entries, `Dag` evicts vertex- and
    /// DAG-scoped, `Session` evicts everything.
    pub fn evict_scope(&self, scope: ObjectScope) {
        let rank = scope_rank(scope);
        let mut g = self.containers.lock();
        for slot in g.values_mut() {
            slot.entries.retain(|_, (s, _)| scope_rank(*s) > rank);
        }
    }

    /// Total cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.containers
            .lock()
            .values()
            .map(|s| s.entries.len())
            .sum()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn scope_rank(s: ObjectScope) -> u8 {
    match s {
        ObjectScope::Vertex => 0,
        ObjectScope::Dag => 1,
        ObjectScope::Session => 2,
    }
}

/// The [`ObjectRegistry`] handed to tasks: scoped to one container.
pub struct ContainerObjectRegistry {
    state: Arc<RegistryState>,
    container: u64,
}

impl ObjectRegistry for ContainerObjectRegistry {
    fn get(&self, key: &str) -> Option<Arc<dyn Any + Send + Sync>> {
        let g = self.state.containers.lock();
        g.get(&self.container)
            .and_then(|s| s.entries.get(key))
            .map(|(_, v)| Arc::clone(v))
    }

    fn put(&self, scope: ObjectScope, key: &str, value: Arc<dyn Any + Send + Sync>) {
        let mut g = self.state.containers.lock();
        g.entry(self.container)
            .or_default()
            .entries
            .insert(key.to_string(), (scope, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_container_isolation() {
        let state = RegistryState::new();
        let a = state.for_container(1);
        let b = state.for_container(2);
        a.put(ObjectScope::Dag, "table", Arc::new(42u32));
        assert!(a.get("table").is_some());
        assert!(b.get("table").is_none(), "objects are container-local");
    }

    #[test]
    fn downcast_roundtrip() {
        let state = RegistryState::new();
        let r = state.for_container(1);
        r.put(ObjectScope::Session, "x", Arc::new(vec![1u64, 2, 3]));
        let v = r.get("x").unwrap();
        let v = v.downcast_ref::<Vec<u64>>().unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn scope_eviction_order() {
        let state = RegistryState::new();
        let r = state.for_container(1);
        r.put(ObjectScope::Vertex, "v", Arc::new(1u8));
        r.put(ObjectScope::Dag, "d", Arc::new(1u8));
        r.put(ObjectScope::Session, "s", Arc::new(1u8));
        state.evict_scope(ObjectScope::Vertex);
        assert!(r.get("v").is_none());
        assert!(r.get("d").is_some());
        state.evict_scope(ObjectScope::Dag);
        assert!(r.get("d").is_none());
        assert!(r.get("s").is_some());
        state.evict_scope(ObjectScope::Session);
        assert!(state.is_empty());
    }

    #[test]
    fn drop_container_clears_cache() {
        let state = RegistryState::new();
        let r = state.for_container(9);
        r.put(ObjectScope::Session, "k", Arc::new(5i32));
        state.drop_container(9);
        assert!(r.get("k").is_none());
    }
}
