//! Input initializers (paper §3.5): split calculation and dynamic
//! partition pruning.

use tez_dag::{NamedDescriptor, PayloadReader, PayloadWriter, UserPayload};
use tez_runtime::{
    counter_names, InitializerContext, InitializerResult, InputInitializer, InputSplit, TaskError,
};
use tez_shuffle::SplitPayload;

/// Split calculation over a DFS file: groups blocks into splits respecting
/// min/max split sizes and block locality, capped so the split count never
/// exceeds a multiple of the cluster's task slots ("considers the data
/// distribution, data locality and available compute capacity to determine
/// the number of splits", §3.1).
///
/// With `wait_for_pruning`, the initializer defers until a pruning event
/// (see [`prune_event_payload`]) arrives with the set of relevant partition
/// keys — Hive's dynamic partition pruning. Files are expected to expose
/// one partition key per block group via the pruning column encoding of the
/// sender; here the pruning event simply carries the block indices to keep.
pub struct HdfsSplitInitializer {
    path: String,
    min_split_bytes: u64,
    max_split_bytes: u64,
    wait_for_pruning: bool,
    keep_blocks: Option<Vec<usize>>,
}

/// Payload: `path`, `min_split`, `max_split`, `wait_for_pruning` flag.
pub fn hdfs_split_initializer(
    path: &str,
    min_split_bytes: u64,
    max_split_bytes: u64,
    wait_for_pruning: bool,
) -> NamedDescriptor {
    let mut w = PayloadWriter::new();
    w.put_str(path)
        .put_u64(min_split_bytes)
        .put_u64(max_split_bytes)
        .put_u64(u64::from(wait_for_pruning));
    NamedDescriptor::with_payload(kinds::HDFS_SPLITS, w.finish())
}

/// Kinds registered by this module.
pub mod kinds {
    /// The DFS split initializer.
    pub const HDFS_SPLITS: &str = "tez.HdfsSplitInitializer";
}

impl HdfsSplitInitializer {
    /// Decode from a descriptor payload (see [`hdfs_split_initializer`]).
    pub fn from_payload(payload: &UserPayload) -> Self {
        let mut r = PayloadReader::new(payload.as_bytes());
        let path = r.get_str().to_string();
        let min_split_bytes = r.get_u64();
        let max_split_bytes = r.get_u64();
        let wait_for_pruning = r.get_u64() != 0;
        HdfsSplitInitializer {
            path,
            min_split_bytes,
            max_split_bytes,
            wait_for_pruning,
            keep_blocks: None,
        }
    }

    fn compute_splits(
        &self,
        ctx: &mut dyn InitializerContext,
    ) -> Result<Vec<InputSplit>, TaskError> {
        let blocks = ctx
            .dfs()
            .list_blocks(&self.path)
            .ok_or_else(|| TaskError::fatal(format!("input {:?} not found", self.path)))?;
        let total_blocks = blocks.len();
        let kept: Vec<_> = match &self.keep_blocks {
            Some(keep) => blocks
                .into_iter()
                .filter(|b| keep.contains(&b.index))
                .collect(),
            None => blocks,
        };
        if let Some(keep) = &self.keep_blocks {
            ctx.counters().add(
                counter_names::PRUNED_SPLITS,
                (total_blocks - keep.len().min(total_blocks)) as u64,
            );
        }

        // Cap split count at 3 waves over the cluster slots by raising the
        // effective minimum split size.
        let total_bytes: u64 = kept.iter().map(|b| b.bytes).sum();
        let max_splits = (ctx.total_slots() * 3).max(1) as u64;
        let min_split = self
            .min_split_bytes
            .max(total_bytes / max_splits.max(1))
            .max(1);

        let mut splits = Vec::new();
        let mut cur_blocks: Vec<usize> = Vec::new();
        let mut cur_bytes = 0u64;
        let mut cur_records = 0u64;
        let mut cur_hosts: Vec<String> = Vec::new();
        for b in &kept {
            if !cur_blocks.is_empty()
                && (cur_bytes + b.bytes > self.max_split_bytes || cur_bytes >= min_split)
            {
                splits.push(make_split(
                    &self.path,
                    &cur_blocks,
                    cur_bytes,
                    cur_records,
                    &cur_hosts,
                ));
                cur_blocks.clear();
                cur_bytes = 0;
                cur_records = 0;
                cur_hosts.clear();
            }
            if cur_blocks.is_empty() {
                cur_hosts = b.hosts.clone();
            } else {
                // Locality of a grouped split: hosts common to its blocks,
                // falling back to the first block's hosts.
                cur_hosts.retain(|h| b.hosts.contains(h));
            }
            cur_blocks.push(b.index);
            cur_bytes += b.bytes;
            cur_records += b.records;
        }
        if !cur_blocks.is_empty() {
            splits.push(make_split(
                &self.path,
                &cur_blocks,
                cur_bytes,
                cur_records,
                &cur_hosts,
            ));
        }
        if splits.is_empty() {
            // Empty input (e.g. a fully-filtered intermediate result):
            // still run one task over zero blocks so downstream stages see
            // a well-formed, empty stream.
            splits.push(make_split(&self.path, &[], 0, 0, &[]));
        }
        Ok(splits)
    }
}

fn make_split(
    path: &str,
    blocks: &[usize],
    bytes: u64,
    records: u64,
    hosts: &[String],
) -> InputSplit {
    InputSplit {
        payload: SplitPayload {
            path: path.to_string(),
            blocks: blocks.to_vec(),
        }
        .encode(),
        hosts: hosts.to_vec(),
        bytes,
        records,
    }
}

impl InputInitializer for HdfsSplitInitializer {
    fn initialize(
        &mut self,
        ctx: &mut dyn InitializerContext,
    ) -> Result<InitializerResult, TaskError> {
        if self.wait_for_pruning && self.keep_blocks.is_none() {
            return Ok(InitializerResult::Waiting);
        }
        Ok(InitializerResult::Ready(self.compute_splits(ctx)?))
    }

    fn on_event(
        &mut self,
        payload: &[u8],
        ctx: &mut dyn InitializerContext,
    ) -> Result<InitializerResult, TaskError> {
        self.keep_blocks = Some(decode_prune_event(payload));
        Ok(InitializerResult::Ready(self.compute_splits(ctx)?))
    }
}

/// Encode a pruning event: the block indices the reader should keep.
pub fn prune_event_payload(keep_blocks: &[usize]) -> bytes::Bytes {
    let mut w = PayloadWriter::new();
    w.put_u64(keep_blocks.len() as u64);
    for &b in keep_blocks {
        w.put_u64(b as u64);
    }
    w.finish_bytes()
}

/// Decode a pruning event.
pub fn decode_prune_event(payload: &[u8]) -> Vec<usize> {
    let mut r = PayloadReader::new(payload);
    let n = r.get_u64() as usize;
    (0..n).map(|_| r.get_u64() as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use tez_runtime::{Counters, Dfs, MemDfs};

    struct Ctx {
        dfs: MemDfs,
        slots: usize,
        counters: Counters,
    }

    impl InitializerContext for Ctx {
        fn dfs(&self) -> &dyn Dfs {
            &self.dfs
        }
        fn cluster_nodes(&self) -> usize {
            4
        }
        fn total_slots(&self) -> usize {
            self.slots
        }
        fn vertex_name(&self) -> &str {
            "v"
        }
        fn counters(&mut self) -> &mut Counters {
            &mut self.counters
        }
    }

    fn ctx_with_blocks(n: usize, bytes_per_block: u64) -> Ctx {
        let dfs = MemDfs::new();
        let blocks: Vec<(Bytes, u64)> = (0..n)
            .map(|_| (Bytes::from(vec![0u8; bytes_per_block as usize]), 10))
            .collect();
        dfs.write_file("/data", blocks);
        Ctx {
            dfs,
            slots: 100,
            counters: Counters::new(),
        }
    }

    fn init(min: u64, max: u64, wait: bool) -> HdfsSplitInitializer {
        let d = hdfs_split_initializer("/data", min, max, wait);
        HdfsSplitInitializer::from_payload(&d.payload)
    }

    #[test]
    fn one_split_per_block_when_blocks_are_large() {
        let mut ctx = ctx_with_blocks(5, 1000);
        let mut i = init(500, 1000, false);
        match i.initialize(&mut ctx).unwrap() {
            InitializerResult::Ready(splits) => {
                assert_eq!(splits.len(), 5);
                assert_eq!(splits[0].bytes, 1000);
                assert_eq!(splits[0].records, 10);
            }
            _ => panic!("expected ready"),
        }
    }

    #[test]
    fn small_blocks_are_grouped_up_to_min_split() {
        let mut ctx = ctx_with_blocks(10, 100);
        let mut i = init(250, 10_000, false);
        match i.initialize(&mut ctx).unwrap() {
            InitializerResult::Ready(splits) => {
                // 10 blocks of 100 bytes grouped at >=250 → groups of 3.
                assert_eq!(splits.len(), 4);
                let total: u64 = splits.iter().map(|s| s.bytes).sum();
                assert_eq!(total, 1000);
            }
            _ => panic!("expected ready"),
        }
    }

    #[test]
    fn slot_cap_limits_split_count() {
        let mut ctx = ctx_with_blocks(100, 100);
        ctx.slots = 2; // 3 waves x 2 slots = at most ~6 splits
        let mut i = init(1, 100_000, false);
        match i.initialize(&mut ctx).unwrap() {
            InitializerResult::Ready(splits) => {
                assert!(splits.len() <= 7, "got {}", splits.len());
            }
            _ => panic!("expected ready"),
        }
    }

    #[test]
    fn pruning_waits_then_filters() {
        let mut ctx = ctx_with_blocks(8, 1000);
        let mut i = init(500, 1000, true);
        assert!(matches!(
            i.initialize(&mut ctx).unwrap(),
            InitializerResult::Waiting
        ));
        let ev = prune_event_payload(&[1, 5]);
        match i.on_event(&ev, &mut ctx).unwrap() {
            InitializerResult::Ready(splits) => {
                assert_eq!(splits.len(), 2);
                assert_eq!(ctx.counters.get(counter_names::PRUNED_SPLITS), 6);
                let p = SplitPayload::decode(&splits[0].payload);
                assert_eq!(p.blocks, vec![1]);
            }
            _ => panic!("expected ready"),
        }
    }

    #[test]
    fn missing_file_is_fatal() {
        let mut ctx = Ctx {
            dfs: MemDfs::new(),
            slots: 4,
            counters: Counters::new(),
        };
        let mut i = init(1, 10, false);
        let err = match i.initialize(&mut ctx) {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert!(!err.is_retriable());
    }

    #[test]
    fn prune_event_roundtrip() {
        let ev = prune_event_payload(&[0, 3, 17]);
        assert_eq!(decode_prune_event(&ev), vec![0, 3, 17]);
    }
}
