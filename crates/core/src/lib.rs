//! # tez-core — the orchestration framework
//!
//! This crate is the Tez library proper: the **DAG ApplicationMaster**
//! (paper §4.1) that executes a logical DAG on a (simulated) YARN cluster,
//! together with the built-in runtime-optimization components of §3.4–3.5
//! and the production-readiness machinery of §4.2–4.3:
//!
//! * [`DagAppMaster`] — vertex/task/attempt state machines, event routing,
//!   and the YARN protocol (container requests, work launching).
//! * [`run_task`](executor::run_task) — executes one task's IPO pipeline
//!   (inputs → processor → outputs) against the real data plane.
//! * Built-in [`VertexManager`](tez_runtime::VertexManager)s — root-input,
//!   one-to-one, immediate-start, and the **ShuffleVertexManager** with
//!   slow-start scheduling and automatic partition-cardinality estimation
//!   (paper Figure 6).
//! * [`HdfsSplitInitializer`] — split
//!   calculation from block locations with min/max split sizes, plus
//!   event-driven **dynamic partition pruning** (paper §3.5).
//! * Scheduling: locality-aware container requests with delay-scheduling
//!   relaxation (via `tez-yarn`), **container reuse**, **sessions** with
//!   pre-warming, **speculation**, deadlock detection with preemption.
//! * Fault tolerance: task re-execution, `InputReadError` back-tracking to
//!   regenerate lost intermediate data, proactive re-execution on node
//!   loss, and AM checkpoint/recovery.
//! * [`TezClient`] — the high-level entry point: run one DAG or a session
//!   of DAGs on a simulated cluster and collect [`DagReport`]s.

pub mod client;
pub mod config;
pub mod edge_managers;
pub mod executor;
pub mod initializers;
pub mod objreg;
pub mod report;
pub mod vertex_managers;

mod am;

pub use am::{DagAppMaster, DagSubmission, SessionOutput, SharedSessionOutput};
pub use client::{TezClient, TezRun};
pub use config::TezConfig;
pub use edge_managers::GroupedScatterGatherEdgeManager;
pub use initializers::{hdfs_split_initializer, prune_event_payload, HdfsSplitInitializer};
pub use objreg::{ContainerObjectRegistry, RegistryState};
pub use report::{DagReport, DagStatus, VertexReport};
pub use vertex_managers::{standard_registry, vm_kinds, ShuffleVertexManagerConfig};
