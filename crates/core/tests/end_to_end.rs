//! End-to-end orchestration tests: the canonical WordCount DAG (paper
//! Figure 4) and every §4.2/§4.3 feature, executed through the full stack
//! (client → AM → simulated YARN → real data plane).

use bytes::Bytes;
use std::collections::BTreeMap;
use tez_core::{hdfs_split_initializer, standard_registry, DagReport, TezClient, TezConfig};
use tez_dag::{DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_runtime::{
    counter_names, ComponentRegistry, Dfs, OutboundEvent, Processor, ProcessorContext, TaskError,
};
use tez_shuffle::codec::{encode_kv, KvCursor};
use tez_shuffle::io::{kinds, output_payload, scatter_gather_edge};
use tez_shuffle::{Combiner, Partitioner};
use tez_yarn::{ClusterSpec, CostModel, FaultPlan, SimHdfs, SimTime};

// ---------------------------------------------------------------------------
// WordCount components
// ---------------------------------------------------------------------------

struct TokenProcessor;
impl Processor for TokenProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader("in")?.into_kv()?;
        let mut words = Vec::new();
        while let Some((_, line)) = reader.next() {
            for w in String::from_utf8_lossy(&line).split_whitespace() {
                words.push(w.to_string());
            }
        }
        for w in words {
            ctx.write("summer", w.as_bytes(), &1u64.to_le_bytes())?;
        }
        Ok(())
    }
}

struct SumProcessor;
impl Processor for SumProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader("tokenizer")?.into_grouped()?;
        let mut out = Vec::new();
        while let Some(g) = reader.next_group() {
            let total: u64 = g
                .values
                .iter()
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .sum();
            out.push((g.key, total));
        }
        for (k, total) in out {
            ctx.write("out", &k, &total.to_le_bytes())?;
        }
        Ok(())
    }
}

fn wordcount_registry() -> ComponentRegistry {
    let mut r = standard_registry();
    r.register_processor("TokenProcessor", |_| Box::new(TokenProcessor));
    r.register_processor("SumProcessor", |_| Box::new(SumProcessor));
    r
}

/// WordCount DAG per paper Figure 4.
fn wordcount_dag(reducers: usize) -> tez_dag::Dag {
    DagBuilder::new("wordcount")
        .add_vertex(
            Vertex::new("tokenizer", NamedDescriptor::new("TokenProcessor")).with_data_source(
                "in",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer("/input/text", 1, 1 << 30, false)),
            ),
        )
        .add_vertex(
            Vertex::new("summer", NamedDescriptor::new("SumProcessor"))
                .with_parallelism(reducers)
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str("/output")),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        )
        .add_edge("tokenizer", "summer", scatter_gather_edge(Combiner::SumU64))
        .build()
        .unwrap()
}

const CORPUS: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs",
    "tez runs dags on yarn and yarn runs tez",
    "quick quick slow",
];

fn write_corpus(hdfs: &SimHdfs, blocks: usize) {
    let data: Vec<(Bytes, u64)> = (0..blocks)
        .map(|i| {
            let mut buf = Vec::new();
            encode_kv(&mut buf, b"", CORPUS[i % CORPUS.len()].as_bytes());
            (Bytes::from(buf), 1)
        })
        .collect();
    hdfs.put_file("/input/text", data);
}

fn expected_counts(blocks: usize) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for i in 0..blocks {
        for w in CORPUS[i % CORPUS.len()].split_whitespace() {
            *m.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    m
}

fn read_output(hdfs: &SimHdfs, path: &str) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    let blocks = hdfs.list_blocks(path).expect("output committed");
    for b in blocks {
        let data = hdfs.read_block(path, b.index).unwrap();
        let mut c = KvCursor::new(data);
        while let Some((k, v)) = c.next() {
            m.insert(
                String::from_utf8(k.to_vec()).unwrap(),
                u64::from_le_bytes(v[..8].try_into().unwrap()),
            );
        }
    }
    m
}

fn quiet_cost() -> CostModel {
    CostModel {
        straggler_prob: 0.0,
        ..CostModel::default()
    }
}

fn small_cluster() -> TezClient {
    TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(quiet_cost())
}

fn run_wordcount(
    client: &TezClient,
    config: TezConfig,
    blocks: usize,
) -> (DagReport, BTreeMap<String, u64>) {
    let run = client.run_dag(wordcount_dag(3), wordcount_registry(), config, |hdfs| {
        write_corpus(hdfs, blocks)
    });
    let report = run.report().clone();
    let out = if report.status.is_success() {
        read_output(run.hdfs(), "/output")
    } else {
        BTreeMap::new()
    };
    (report, out)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[test]
fn wordcount_produces_correct_counts() {
    let (report, out) = run_wordcount(&small_cluster(), TezConfig::default(), 8);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(8));
    assert!(report.counters.get(counter_names::RECORDS_IN) > 0);
    assert_eq!(report.vertices.len(), 2);
    assert_eq!(report.vertices[0].name, "tokenizer");
    assert_eq!(report.vertices[0].tasks, 8, "one task per block");
}

#[test]
fn wordcount_correct_under_mapreduce_baseline_config() {
    let (report, out) = run_wordcount(&small_cluster(), TezConfig::mapreduce_baseline(), 8);
    assert!(report.status.is_success());
    assert_eq!(out, expected_counts(8));
}

#[test]
fn container_reuse_reduces_allocations_and_runtime() {
    let cfg_reuse = TezConfig::default();
    let cfg_cold = TezConfig {
        container_reuse: false,
        ..TezConfig::default()
    };
    // 1 node x 4 slots, 16 map tasks → reuse matters.
    let client = TezClient::new(ClusterSpec::homogeneous(1, 4096, 4)).with_cost(quiet_cost());
    let (warm, out1) = run_wordcount(&client, cfg_reuse, 16);
    let (cold, out2) = run_wordcount(&client, cfg_cold, 16);
    assert!(warm.status.is_success() && cold.status.is_success());
    assert_eq!(out1, out2, "feature flags must not change results");
    assert!(warm.warm_starts > 0);
    assert_eq!(cold.warm_starts, 0);
    assert!(
        warm.containers_allocated < cold.containers_allocated,
        "reuse: {} vs cold: {}",
        warm.containers_allocated,
        cold.containers_allocated
    );
    assert!(
        warm.runtime_ms() < cold.runtime_ms(),
        "reuse {}ms vs cold {}ms",
        warm.runtime_ms(),
        cold.runtime_ms()
    );
}

#[test]
fn session_reuses_containers_across_dags() {
    let client = small_cluster();
    let config = TezConfig {
        session: true,
        ..TezConfig::default()
    };
    let run = client.run_session(
        vec![wordcount_dag(2), wordcount_dag(2)],
        wordcount_registry(),
        config,
        |hdfs| write_corpus(hdfs, 6),
    );
    assert_eq!(run.reports.len(), 2);
    assert!(run.reports.iter().all(|r| r.status.is_success()));
    let (d1, d2) = (&run.reports[0], &run.reports[1]);
    assert!(
        d2.containers_allocated < d1.containers_allocated,
        "cross-DAG reuse: dag2 allocated {} vs dag1 {}",
        d2.containers_allocated,
        d1.containers_allocated
    );
    assert!(
        d2.runtime_ms() < d1.runtime_ms(),
        "warm session dag2 {}ms vs dag1 {}ms",
        d2.runtime_ms(),
        d1.runtime_ms()
    );
    // Fig. 7: the same container appears in both DAGs' spans.
    let trace = run.trace();
    let rows = trace.container_rows();
    assert!(rows.iter().any(|(_, spans)| {
        spans.iter().any(|s| s.label.starts_with("A:"))
            && spans.iter().any(|s| s.label.starts_with("B:"))
    }));
}

#[test]
fn auto_parallelism_shrinks_reducers() {
    // Tiny data, 16 declared reducers → the ShuffleVertexManager should
    // collapse them (paper Figure 6).
    let client = small_cluster();
    let config = TezConfig {
        auto_parallelism: true,
        desired_bytes_per_reducer: 1 << 20,
        ..TezConfig::default()
    };
    let run = client.run_dag(wordcount_dag(16), wordcount_registry(), config, |hdfs| {
        write_corpus(hdfs, 8)
    });
    let report = run.report();
    assert!(report.status.is_success());
    let summer = report.vertices.iter().find(|v| v.name == "summer").unwrap();
    assert!(
        summer.tasks < 16,
        "auto-parallelism should shrink 16 reducers, got {}",
        summer.tasks
    );
    assert_eq!(
        read_output(run.hdfs(), "/output"),
        expected_counts(8),
        "re-routed partitions must preserve results"
    );
}

#[test]
fn node_failure_recovers_by_reexecution() {
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8))
        .with_cost(quiet_cost())
        .with_fault(FaultPlan::none().with_node_failure(SimTime(9_000), 1));
    let (report, out) = run_wordcount(&client, TezConfig::default(), 12);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(12));
}

#[test]
fn injected_task_failures_are_retried() {
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8))
        .with_cost(quiet_cost())
        .with_fault(FaultPlan::none().with_task_fail_prob(0.2));
    let (report, out) = run_wordcount(&client, TezConfig::default(), 12);
    assert!(report.status.is_success());
    assert_eq!(out, expected_counts(12));
    let failed: usize = report.vertices.iter().map(|v| v.failed_attempts).sum();
    assert!(
        failed > 0,
        "with p=0.2 over 15 tasks some attempt must fail"
    );
}

#[test]
fn speculation_races_stragglers() {
    let cost = CostModel {
        straggler_prob: 0.3,
        straggler_factor: 20.0,
        ..CostModel::default()
    };
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(cost);
    let config = TezConfig {
        speculation: true,
        speculation_min_completed: 2,
        speculation_interval_ms: 1_000,
        ..TezConfig::default()
    };
    let (report, out) = run_wordcount(&client, config, 16);
    assert!(report.status.is_success());
    assert_eq!(out, expected_counts(16));
    assert!(
        report.speculative_attempts > 0,
        "30% stragglers at 20x must trigger speculation"
    );
}

#[test]
fn am_failure_recovers_from_checkpoint() {
    let client = small_cluster();
    let config = TezConfig {
        am_fail_at_ms: Some(9_000),
        ..TezConfig::default()
    };
    let (report, out) = run_wordcount(&client, config, 12);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(12));
}

#[test]
fn deadlock_from_out_of_order_scheduling_is_resolved() {
    // 1 node x 2 slots; schedule reducers immediately (slow-start from 0).
    // Reducers can grab both containers and starve the mappers; the
    // detector must preempt them.
    let client = TezClient::new(ClusterSpec::homogeneous(1, 2048, 2)).with_cost(quiet_cost());
    let config = TezConfig {
        slowstart_min_fraction: 0.0,
        slowstart_max_fraction: 0.0,
        auto_parallelism: false,
        deadlock_check_ms: 2_000,
        ..TezConfig::default()
    };
    let (report, out) = run_wordcount(&client, config, 6);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(6));
}

// ---------------------------------------------------------------------------
// Dynamic partition pruning (paper §3.5)
// ---------------------------------------------------------------------------

/// Dimension-side processor: emits the pruning metadata to the fact scan's
/// initializer (keep only block 0), then produces nothing.
struct DimProcessor;
impl Processor for DimProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        ctx.emit(OutboundEvent::InputInitializer {
            target_vertex: "fact".into(),
            source: "facts".into(),
            payload: tez_core::prune_event_payload(&[0]),
        });
        ctx.write("fact", b"join-key", b"dim-row")?;
        Ok(())
    }
}

/// Fact-side processor: counts its input rows into the sink.
struct FactProcessor;
impl Processor for FactProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut n = 0u64;
        let mut reader = ctx.reader("facts")?.into_kv()?;
        while reader.next().is_some() {
            n += 1;
        }
        let mut bcast = ctx.reader("dim")?.into_kv()?;
        let mut dim_rows = 0u64;
        while bcast.next().is_some() {
            dim_rows += 1;
        }
        // The broadcast side is consumed for its side effect only.
        let _ = dim_rows;
        let task = ctx.meta.task_index;
        ctx.write("out", format!("task{task}").as_bytes(), &n.to_le_bytes())?;
        Ok(())
    }
}

#[test]
fn dynamic_partition_pruning_reads_subset() {
    let mut registry = standard_registry();
    registry.register_processor("DimProcessor", |_| Box::new(DimProcessor));
    registry.register_processor("FactProcessor", |_| Box::new(FactProcessor));

    let dag = DagBuilder::new("dpp")
        .add_vertex(Vertex::new("dim", NamedDescriptor::new("DimProcessor")).with_parallelism(1))
        .add_vertex(
            Vertex::new("fact", NamedDescriptor::new("FactProcessor"))
                .with_data_source(
                    "facts",
                    NamedDescriptor::new(kinds::DFS_IN),
                    Some(hdfs_split_initializer("/facts", 1, 1 << 30, true)),
                )
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(
                        kinds::DFS_OUT,
                        UserPayload::from_str("/dpp-out"),
                    ),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        )
        .add_edge("dim", "fact", tez_shuffle::io::broadcast_edge())
        .build()
        .unwrap();

    let client = small_cluster();
    let run = client.run_dag(dag, registry, TezConfig::default(), |hdfs| {
        // 4 fact blocks with 2 rows each; pruning keeps only block 0.
        let blocks: Vec<(Bytes, u64)> = (0..4)
            .map(|i| {
                let mut buf = Vec::new();
                encode_kv(&mut buf, format!("k{i}a").as_bytes(), b"1");
                encode_kv(&mut buf, format!("k{i}b").as_bytes(), b"2");
                (Bytes::from(buf), 2)
            })
            .collect();
        hdfs.put_file("/facts", blocks);
    });
    let report = run.report();
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(report.counters.get(counter_names::PRUNED_SPLITS), 3);
    let out = read_output(run.hdfs(), "/dpp-out");
    // One fact task (block 0 only), reading exactly 2 rows.
    assert_eq!(out.len(), 1);
    assert_eq!(out["task0"], 2);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| {
        let client = small_cluster().with_seed(seed);
        let (report, out) = {
            let run = client.run_dag(
                wordcount_dag(3),
                wordcount_registry(),
                TezConfig::default(),
                |hdfs| write_corpus(hdfs, 8),
            );
            (run.report().clone(), read_output(run.hdfs(), "/output"))
        };
        (report.runtime_ms(), out)
    };
    assert_eq!(run(1), run(1));
    let (t1, o1) = run(1);
    let (t2, o2) = run(2);
    assert_eq!(o1, o2, "seed must not change results");
    let _ = (t1, t2);
}

/// The ordered output must also work when the processor reconfigures it to
/// range partitioning at runtime — exercised end-to-end by the engines; the
/// low-level path is covered in tez-shuffle. Here we double-check that an
/// output payload built with `output_payload` flows through the DAG API.
#[test]
fn output_payload_roundtrips_through_dag() {
    let prop = scatter_gather_edge(Combiner::SumU64);
    let (p, c) = tez_shuffle::io::parse_output_payload(prop.src_output.payload.as_bytes()).unwrap();
    assert!(matches!(p, Partitioner::Hash));
    assert_eq!(c, Combiner::SumU64);
    let single = output_payload(&Partitioner::Single, Combiner::None);
    let (p2, _) = tez_shuffle::io::parse_output_payload(single.as_bytes()).unwrap();
    assert!(matches!(p2, Partitioner::Single));
}

// ---------------------------------------------------------------------------
// Control-plane error handling
// ---------------------------------------------------------------------------

/// An unregistered custom edge manager must fail that DAG with a
/// diagnosable report — not panic the AM, which in session mode would take
/// every queued DAG down with it.
#[test]
fn missing_custom_edge_manager_fails_dag_without_panicking() {
    use tez_dag::{DataMovement, EdgeProperty};

    let dag = DagBuilder::new("custom-edge")
        .add_vertex(Vertex::new("a", NamedDescriptor::new("TokenProcessor")).with_parallelism(1))
        .add_vertex(Vertex::new("b", NamedDescriptor::new("SumProcessor")).with_parallelism(1))
        .add_edge(
            "a",
            "b",
            EdgeProperty::new(
                DataMovement::Custom {
                    manager: NamedDescriptor::new("user.MissingManager"),
                },
                NamedDescriptor::new(kinds::UNORDERED_OUT),
                NamedDescriptor::new(kinds::UNORDERED_IN),
            ),
        )
        .build()
        .unwrap();
    let client = small_cluster();
    let run = client.run_dag(dag, wordcount_registry(), TezConfig::default(), |_| {});
    match &run.report().status {
        tez_core::DagStatus::Failed(reason) => {
            assert!(reason.contains("MissingManager"), "reason: {reason}");
        }
        other => panic!("expected DAG failure, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Shuffle fetch retry (bounded, deterministic backoff)
// ---------------------------------------------------------------------------

/// Transient fetch failures within the retry budget are absorbed by the
/// fetcher: the DAG succeeds, the retries show up in the FETCH_RETRIES
/// counter, and no producer is re-executed.
#[test]
fn transient_fetch_failures_are_retried_and_counted() {
    // Two injected failures, retry budget of 3 attempts per fetch: the
    // first shuffle fetch retries twice and succeeds.
    let client = small_cluster().with_fault(FaultPlan::none().with_transient_fetch_failures(2));
    let (report, out) = run_wordcount(&client, TezConfig::default(), 8);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(8));
    assert_eq!(report.counters.get(counter_names::FETCH_RETRIES), 2);
    assert_eq!(report.reexecuted_tasks, 0);
}

/// Enough consecutive transient failures to exhaust one fetch's retry
/// budget surface as an InputReadError, which re-executes the producer
/// (paper §4.3) — the DAG still completes with correct output.
#[test]
fn exhausted_fetch_retries_trigger_producer_reexecution() {
    // Four injected failures, budget 3: the first fetch burns all three
    // attempts and fails -> InputReadError -> producer re-executed. The
    // leftover failure is absorbed by a later fetch's retry.
    let client = small_cluster().with_fault(FaultPlan::none().with_transient_fetch_failures(4));
    let (report, out) = run_wordcount(&client, TezConfig::default(), 8);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(8));
    assert!(
        report.reexecuted_tasks >= 1,
        "exhaustion must re-execute the producer, got {}",
        report.reexecuted_tasks
    );
    assert!(report.counters.get(counter_names::FETCH_RETRIES) >= 3);
}

// ---------------------------------------------------------------------------
// Unified run report (observability layer)
// ---------------------------------------------------------------------------

/// Every DAG run carries a RunReport aggregating scheduler decisions,
/// container lifecycle, per-edge data-plane stats and attempt spans, and
/// its JSON codec round-trips exactly.
#[test]
fn run_report_aggregates_all_layers_and_round_trips() {
    let (report, out) = run_wordcount(&small_cluster(), TezConfig::default(), 8);
    assert!(report.status.is_success(), "status: {:?}", report.status);
    assert_eq!(out, expected_counts(8));

    let rr = &report.run_report;
    assert_eq!(rr.dag, report.name);
    assert_eq!(rr.status, "succeeded");
    assert_eq!(rr.runtime_ms(), report.runtime_ms());

    // Scheduler section: every placement is classified into exactly one
    // locality bucket.
    let s = &rr.scheduler;
    assert!(s.placements > 0);
    assert_eq!(
        s.node_local + s.rack_local + s.off_rack + s.unconstrained,
        s.placements
    );

    // Container section: cold starts and reuse hits partition the
    // assignments. (reuse_hits counts warm-at-assignment containers; the
    // legacy warm_starts also counts pick-time reuse of idle prewarmed
    // containers, so it can only be larger.)
    let c = &rr.containers;
    assert!(c.assignments > 0);
    assert_eq!(c.cold_starts + c.reuse_hits, c.assignments);
    assert!(c.reuse_hits > 0);
    assert!(report.warm_starts >= c.reuse_hits as usize);

    // Data-plane section: wordcount's single shuffle edge moved bytes.
    let e = rr.edge("tokenizer", "summer").expect("shuffle edge stats");
    assert!(e.fetched_bytes > 0);
    assert_eq!(e.fetch_failures, 0);

    // Attempt spans cover every attempt; counters roll up identically.
    assert_eq!(
        rr.attempts.len(),
        report.vertices.iter().map(|v| v.attempts).sum::<usize>()
    );
    assert!(rr
        .attempts
        .iter()
        .all(|a| a.status == "succeeded" && a.end_ms >= a.start_ms));
    assert_eq!(
        rr.counters.get(counter_names::RECORDS_IN),
        report.counters.get(counter_names::RECORDS_IN)
    );

    // The deterministic JSON codec round-trips exactly.
    let json = rr.to_json();
    let back = tez_runtime::RunReport::from_json(&json).expect("parse own output");
    assert_eq!(&back, rr);
    assert_eq!(back.to_json(), json);
}

/// Exhausted fetch retries surface in the run report as per-edge fetch
/// failures alongside the producer re-execution.
#[test]
fn run_report_records_fetch_failures_per_edge() {
    let client = small_cluster().with_fault(FaultPlan::none().with_transient_fetch_failures(4));
    let (report, _) = run_wordcount(&client, TezConfig::default(), 8);
    assert!(report.status.is_success());
    let e = report
        .run_report
        .edge("tokenizer", "summer")
        .expect("shuffle edge stats");
    assert!(
        e.fetch_failures >= 1,
        "exhausted retries must be attributed to the edge"
    );
}
