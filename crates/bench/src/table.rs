//! Plain-text table rendering for bench output.

/// Render rows as an aligned table with a header.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Format milliseconds as seconds with one decimal.
pub fn secs(ms: u64) -> String {
    format!("{:.1}", ms as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["query", "tez (s)", "mr (s)"],
            &[
                vec!["q1".into(), "10.0".into(), "55.2".into()],
                vec!["q99".into(), "3.5".into(), "7.0".into()],
            ],
        );
        assert!(t.contains("query"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(10_500), "10.5");
    }
}
