//! # tez-bench — harnesses regenerating every figure in the paper
//!
//! The Tez paper's quantitative evaluation is Figures 7–13 (there are no
//! numbered tables). Each figure has a `cargo bench` target here that
//! re-runs the corresponding experiment on the simulated cluster and
//! prints the same rows/series the paper plots. Absolute numbers differ
//! from the authors' testbeds (see DESIGN.md); the *shape* — who wins, by
//! roughly what factor, where the crossovers are — is the reproduction
//! target, recorded in EXPERIMENTS.md.
//!
//! The harness logic lives in this library so the integration suite can
//! assert the shapes programmatically while the bench binaries print them.

pub mod figs;
pub mod load;
pub mod table;

pub use figs::*;
