//! Background cluster load: models the paper's Figure 10 setting, where
//! the Yahoo production clusters were "already running regular jobs with
//! average utilization of 60-70%".

use tez_yarn::{AppContext, AppEvent, ContainerRequest, Resource, YarnApp};

/// An app that grabs `containers` containers at start and holds them for
/// the whole simulation (steady background utilization).
pub struct BackgroundLoad {
    /// Containers to hold.
    pub containers: usize,
}

impl YarnApp for BackgroundLoad {
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>) {
        if let AppEvent::Start = event {
            for _ in 0..self.containers {
                ctx.request_container(ContainerRequest::anywhere(0, Resource::default()));
            }
        }
        // Containers are held forever; the load app never finishes.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tez_yarn::{ClusterSpec, CostModel, FaultPlan, RmConfig, SimTime, Simulation};

    #[test]
    fn background_load_holds_capacity() {
        let mut sim = Simulation::new(
            ClusterSpec::homogeneous(2, 8192, 8),
            CostModel::default(),
            vec![],
            RmConfig::default(),
            FaultPlan::none(),
            1,
        );
        let id = sim.add_app(
            Box::new(BackgroundLoad { containers: 10 }),
            "default",
            SimTime::ZERO,
        );
        sim.run();
        let mean = sim
            .trace()
            .mean_allocation(id, SimTime(6_000), SimTime(7_000));
        assert!((mean - 10.0).abs() < 1e-9, "holds 10 vcores, got {mean}");
    }
}
