//! The experiment harnesses, one per paper figure.
//!
//! Every function takes `quick` — `true` shrinks data/cluster for CI and
//! the integration suite; `false` approximates the paper's scales (within
//! simulation tractability).

use tez_core::{DagReport, TezClient, TezConfig};
use tez_hive::{tpcds, tpch, HiveEngine, HiveOpts};
use tez_pig::kmeans::{generate_points, run_kmeans};
use tez_pig::workloads::{event_catalog, production_scripts};
use tez_pig::{PigEngine, PigOpts};
use tez_spark::tenancy::{run_tenancy, ExecutionModel, TenancyResult, TenancySpec};
use tez_yarn::{ClusterSpec, CostModel};

/// One Tez-vs-MapReduce comparison row.
#[derive(Clone, Debug)]
pub struct BackendRow {
    /// Workload name.
    pub name: String,
    /// Tez runtime (ms).
    pub tez_ms: u64,
    /// MapReduce runtime (ms).
    pub mr_ms: u64,
}

impl BackendRow {
    /// MR / Tez speedup factor.
    pub fn speedup(&self) -> f64 {
        self.mr_ms as f64 / self.tez_ms.max(1) as f64
    }
}

/// Cost model used by the figure harnesses: calibrated so scan-dominated
/// queries at the paper's declared scales land in the paper's
/// seconds-to-minutes range (~4M rows/s/core, ~150 MB/s disk).
pub fn bench_cost() -> CostModel {
    CostModel {
        cpu_ns_per_record: 200,
        cpu_ns_per_byte: 2,
        straggler_prob: 0.01,
        ..CostModel::default()
    }
}

// ---------------------------------------------------------------------------
// Figure 7 — session container reuse trace
// ---------------------------------------------------------------------------

/// Two DAGs in one Tez session; the Gantt shows containers re-used within
/// and across DAGs (paper Figure 7). Also returns the session's metrics
/// registry so the bench harness can export metrics/history artifacts.
pub fn fig7_session_trace() -> (String, Vec<DagReport>, tez_runtime::MetricsRegistry) {
    let catalog = tpcds::generate(1_000, 8, 7);
    let engine = HiveEngine::new(catalog);
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q52")
        .unwrap()
        .1;
    let opts = HiveOpts {
        byte_scale: 100_000.0,
        reducers: 4,
        ..HiveOpts::default()
    };
    let config = TezConfig {
        session: true,
        prewarm_containers: 2,
        byte_scale: opts.byte_scale,
        min_split_bytes: 8 << 20,
        max_split_bytes: 64 << 20,
        ..TezConfig::default()
    };
    // Build two DAGs of the same query under different names and run them
    // in one session.
    let mut registry = tez_core::standard_registry();
    let popts = tez_hive::physical::PhysicalOpts {
        reducers: opts.reducers,
        broadcast_joins: true,
        dpp: false,
    };
    let sp = tez_hive::physical::build_stages(&q.plan, &engine.catalog, &popts);
    let dag1 = tez_hive::compile_tez::build_tez_dag(
        "dagA",
        &sp,
        &engine.catalog,
        &mut registry,
        "/results/dagA",
        &config,
    );
    let dag2 = tez_hive::compile_tez::build_tez_dag(
        "dagB",
        &sp,
        &engine.catalog,
        &mut registry,
        "/results/dagB",
        &config,
    );
    let client = TezClient::new(ClusterSpec::homogeneous(1, 4096, 4)).with_cost(bench_cost());
    let scale = opts.byte_scale;
    let run = client.run_session(vec![dag1, dag2], registry, config, |hdfs| {
        hdfs.set_stat_scale(scale);
        engine.catalog.load_hdfs(hdfs, scale);
    });
    // The Gantt is rendered from the unified run reports: rows are
    // containers, letters the per-DAG attempt spans, so cross-DAG reuse
    // shows as one row carrying both letters.
    let run_reports: Vec<&tez_runtime::RunReport> =
        run.reports.iter().map(|r| &r.run_report).collect();
    (
        tez_runtime::render_gantt(&run_reports, 100),
        run.reports,
        run.metrics,
    )
}

// ---------------------------------------------------------------------------
// Figures 8 & 9 — Hive on Tez vs Hive on MapReduce
// ---------------------------------------------------------------------------

fn hive_suite(
    engine: &HiveEngine,
    queries: Vec<(&'static str, tez_hive::Q)>,
    client: &TezClient,
    opts: &HiveOpts,
) -> Vec<BackendRow> {
    queries
        .into_iter()
        .map(|(name, q)| {
            let tez = engine.run_tez(client, name, &q.plan, opts);
            assert!(tez.success(), "{name} tez failed");
            let mr = engine.run_mr(client, name, &q.plan, opts);
            assert!(mr.success(), "{name} mr failed");
            BackendRow {
                name: name.to_string(),
                tez_ms: tez.runtime_ms(),
                mr_ms: mr.runtime_ms(),
            }
        })
        .collect()
}

/// Figure 8: TPC-DS-derived Hive workload, 30 TB scale, 20-node cluster
/// (16 cores, 256 GB each).
pub fn fig8_hive_tpcds(quick: bool) -> Vec<BackendRow> {
    let (nodes, rows, blocks, scale) = if quick {
        (8, 1_200, 16, 100_000.0)
    } else {
        // Declared fact bytes ≈ rows x ~45 B x scale ≈ 22 TB.
        (20, 4_000, 64, 120_000_000.0)
    };
    let engine = HiveEngine::new(tpcds::generate(rows, blocks, 7));
    let client =
        TezClient::new(ClusterSpec::homogeneous(nodes, 256 * 1024, 16)).with_cost(bench_cost());
    let opts = HiveOpts {
        reducers: if quick { 8 } else { 64 },
        byte_scale: scale,
        ..HiveOpts::default()
    };
    hive_suite(&engine, tpcds::queries(&engine.catalog), &client, &opts)
}

/// Figure 9: TPC-H-derived Hive workload at Yahoo scale — 10 TB on a
/// 350-node research cluster (16 cores, 24 GB each).
pub fn fig9_hive_tpch(quick: bool) -> Vec<BackendRow> {
    let (nodes, rows, blocks, scale) = if quick {
        (10, 1_000, 8, 100_000.0)
    } else {
        // Declared lineitem bytes ≈ rows x ~90 B x scale ≈ 7 TB (+ orders).
        (350, 8_000, 128, 10_000_000.0)
    };
    let engine = HiveEngine::new(tpch::generate(rows, blocks, 7));
    let client =
        TezClient::new(ClusterSpec::homogeneous(nodes, 24 * 1024, 16)).with_cost(bench_cost());
    let opts = HiveOpts {
        reducers: if quick { 8 } else { 128 },
        byte_scale: scale,
        ..HiveOpts::default()
    };
    hive_suite(&engine, tpch::queries(&engine.catalog), &client, &opts)
}

// ---------------------------------------------------------------------------
// Figure 10 — Pig production workloads on a busy cluster
// ---------------------------------------------------------------------------

/// Figure 10: production-style Pig ETL scripts on a cluster running at
/// 60-70% background utilization (the Yahoo setting). Expect 1.5–2x.
pub fn fig10_pig_production(quick: bool) -> Vec<BackendRow> {
    let (nodes, rows, blocks, scale) = if quick {
        (8, 600, 8, 100_000.0)
    } else {
        (60, 2_000, 48, 20_000_000.0)
    };
    let engine = PigEngine::new(event_catalog(rows, blocks, 7));
    let slots = nodes * 8;
    let background = (slots as f64 * 0.65) as usize;
    let opts = PigOpts {
        reducers: if quick { 4 } else { 32 },
        byte_scale: scale,
        ..PigOpts::default()
    };
    let client = TezClient::new(ClusterSpec::homogeneous(nodes, 8192, 8))
        .with_cost(bench_cost())
        .with_background_load(background);
    production_scripts()
        .into_iter()
        .map(|(name, script)| {
            let tez = engine.run_tez(&client, &script, &opts);
            assert!(tez.success(), "{name} tez failed");
            let mr = engine.run_mr(&client, &script, &opts);
            assert!(mr.success(), "{name} mr failed");
            BackendRow {
                name: name.to_string(),
                tez_ms: tez.runtime_ms(),
                mr_ms: mr.runtime_ms(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 11 — Pig K-means iterations
// ---------------------------------------------------------------------------

/// Figure 11: K-means for 10/50/100 iterations over a 10,000-row input on
/// a single node; Tez sessions amortize container launches and cache the
/// points.
pub fn fig11_pig_kmeans(quick: bool) -> Vec<BackendRow> {
    let iteration_counts: Vec<usize> = if quick {
        vec![5, 10, 20]
    } else {
        vec![10, 50, 100]
    };
    let points = generate_points(10_000, 4, 7);
    let client = TezClient::new(ClusterSpec::homogeneous(1, 8192, 8)).with_cost(bench_cost());
    iteration_counts
        .into_iter()
        .map(|iters| {
            let session = TezConfig {
                session: true,
                prewarm_containers: 4,
                ..TezConfig::default()
            };
            let tez = run_kmeans(&client, &points, 4, iters, session, 4);
            let mr = run_kmeans(
                &client,
                &points,
                4,
                iters,
                TezConfig::mapreduce_baseline(),
                4,
            );
            assert!(tez.reports.iter().all(|r| r.status.is_success()));
            assert!(mr.reports.iter().all(|r| r.status.is_success()));
            BackendRow {
                name: format!("{iters} iterations"),
                tez_ms: tez.total_ms,
                mr_ms: mr.total_ms,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 12 & 13 — Spark multi-tenancy
// ---------------------------------------------------------------------------

/// The paper's 5-user tenancy spec over a 20-node cluster.
pub fn tenancy_spec(quick: bool, byte_scale: f64) -> TenancySpec {
    if quick {
        TenancySpec {
            cluster: ClusterSpec::homogeneous(2, 8192, 8),
            cost: bench_cost(),
            users: 3,
            rows: 600,
            blocks: 8,
            partitions: 2,
            byte_scale,
            stagger_ms: 2_000,
            seed: 9,
        }
    } else {
        TenancySpec {
            cluster: ClusterSpec::homogeneous(20, 256 * 1024, 16),
            cost: bench_cost(),
            users: 5,
            rows: 4_000,
            blocks: 64,
            partitions: 32,
            byte_scale,
            stagger_ms: 5_000,
            seed: 9,
        }
    }
}

/// Figure 12: capacity-vs-time per tenant under both models.
pub fn fig12_tenancy_traces(quick: bool) -> (TenancyResult, TenancyResult) {
    let spec = tenancy_spec(quick, if quick { 50_000.0 } else { 2_000_000.0 });
    let executors = if quick { 8 } else { 64 };
    let service = run_tenancy(&spec, ExecutionModel::ServiceBased { executors });
    let tez = run_tenancy(&spec, ExecutionModel::TezBased);
    (service, tez)
}

/// Figure 13: mean latency per warehouse scale factor under both models.
/// Returns `(scale label, service ms, tez ms)`.
pub fn fig13_tenancy_latency(quick: bool) -> Vec<(String, u64, u64)> {
    // 100 GB … 1 TB: the declared byte scale maps the fixed real dataset
    // onto each warehouse scale factor.
    let scales: &[(&str, f64)] = if quick {
        &[("100GB", 25_000.0), ("200GB", 50_000.0)]
    } else {
        &[
            ("100GB", 500_000.0),
            ("200GB", 1_000_000.0),
            ("500GB", 2_500_000.0),
            ("1TB", 5_000_000.0),
        ]
    };
    let executors = if quick { 8 } else { 64 };
    scales
        .iter()
        .map(|(label, s)| {
            let spec = tenancy_spec(quick, *s);
            let service = run_tenancy(&spec, ExecutionModel::ServiceBased { executors });
            let tez = run_tenancy(&spec, ExecutionModel::TezBased);
            (
                label.to_string(),
                service.mean_latency_ms() as u64,
                tez.mean_latency_ms() as u64,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablations (§3.4, §3.5, §4.2)
// ---------------------------------------------------------------------------

/// Feature ablations on a representative Hive query: each row is
/// `(feature, on ms, off ms)` — turning the feature off should not help.
pub fn ablation_features(quick: bool) -> Vec<(String, u64, u64)> {
    let (nodes, rows, blocks, scale) = if quick {
        (2, 1_000, 16, 200_000.0)
    } else {
        (8, 2_000, 32, 2_000_000.0)
    };
    let engine = HiveEngine::new(tpcds::generate(rows, blocks, 7));
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q3")
        .unwrap()
        .1;
    // Ablations are controlled A/B comparisons: random straggler injection
    // would let noise on one side's critical path swamp the feature delta,
    // so it is disabled here (the figure benches keep it for realism).
    let cost = CostModel {
        straggler_prob: 0.0,
        ..bench_cost()
    };
    let client = TezClient::new(ClusterSpec::homogeneous(nodes, 8192, 8)).with_cost(cost);
    let base_opts = HiveOpts {
        reducers: 8,
        byte_scale: scale,
        ..HiveOpts::default()
    };
    let run = |opts: &HiveOpts, config: TezConfig, tag: &str| {
        let r = engine.run_tez_with(&client, &format!("q3-{tag}"), &q.plan, opts, config);
        assert!(r.success(), "{tag} failed");
        // Runtimes come from the unified run report, which also lets the
        // harness sanity-check that the observability layer saw the run.
        r.reports
            .iter()
            .map(|rep| {
                assert_eq!(rep.run_report.status, "succeeded", "{tag}");
                assert!(rep.run_report.containers.assignments > 0, "{tag}");
                rep.run_report.runtime_ms()
            })
            .sum()
    };

    let mut rows_out = Vec::new();
    let on = run(&base_opts, TezConfig::default(), "base");

    rows_out.push((
        "container reuse".to_string(),
        on,
        run(
            &base_opts,
            TezConfig {
                container_reuse: false,
                ..TezConfig::default()
            },
            "noreuse",
        ),
    ));
    rows_out.push((
        "dynamic partition pruning".to_string(),
        on,
        run(
            &HiveOpts {
                dpp: false,
                ..base_opts.clone()
            },
            TezConfig::default(),
            "nodpp",
        ),
    ));
    rows_out.push((
        "broadcast joins".to_string(),
        on,
        run(
            &HiveOpts {
                broadcast_joins: false,
                dpp: false,
                ..base_opts.clone()
            },
            TezConfig::default(),
            "nobcast",
        ),
    ));
    rows_out.push((
        "slow-start overlap".to_string(),
        on,
        run(
            &base_opts,
            TezConfig {
                slowstart_min_fraction: 1.0,
                slowstart_max_fraction: 1.0,
                ..TezConfig::default()
            },
            "noslowstart",
        ),
    ));
    rows_out
}

// ---------------------------------------------------------------------------
// Worker-pool wall-clock scaling
// ---------------------------------------------------------------------------

/// One workload measured at two worker counts. Simulated results are
/// byte-identical by construction (asserted); only wall-clock differs.
#[derive(Clone, Debug)]
pub struct WorkerScalingRow {
    /// Workload name.
    pub name: String,
    /// Wall-clock with a single data-plane worker, ms.
    pub single_ms: u64,
    /// Wall-clock with `workers` data-plane workers, ms.
    pub multi_ms: u64,
    /// Worker count of the multi measurement.
    pub workers: usize,
}

impl WorkerScalingRow {
    /// single / multi wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.single_ms as f64 / self.multi_ms.max(1) as f64
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let t = std::time::Instant::now();
    let r = f();
    (t.elapsed().as_millis() as u64, r)
}

/// Wall-clock scaling of the data-plane worker pool on the Figure 9
/// (Hive TPC-H) and Figure 10 (Pig ETL) workloads: the same run with
/// 1 worker and with `workers` workers. Panics if the run-report JSON
/// differs between the two — determinism is part of what this measures.
pub fn worker_scaling(quick: bool, workers: usize) -> Vec<WorkerScalingRow> {
    let digest = |reports: &[DagReport]| -> String {
        reports
            .iter()
            .map(|r| r.run_report.to_json())
            .collect::<Vec<_>>()
            .join("\n")
    };

    let hive = |n: usize| {
        let (nodes, rows, blocks, scale) = if quick {
            (10, 1_000, 8, 100_000.0)
        } else {
            (350, 8_000, 128, 10_000_000.0)
        };
        let engine = HiveEngine::new(tpch::generate(rows, blocks, 7));
        let client =
            TezClient::new(ClusterSpec::homogeneous(nodes, 24 * 1024, 16)).with_cost(bench_cost());
        let opts = HiveOpts {
            reducers: if quick { 8 } else { 128 },
            byte_scale: scale,
            ..HiveOpts::default()
        };
        let config = TezConfig {
            workers: Some(n),
            ..TezConfig::default()
        };
        timed(move || {
            tpch::queries(&engine.catalog)
                .into_iter()
                .map(|(name, q)| {
                    let res = engine.run_tez_with(&client, name, &q.plan, &opts, config.clone());
                    assert!(res.success(), "{name} failed");
                    digest(&res.reports)
                })
                .collect::<Vec<_>>()
        })
    };
    let pig = |n: usize| {
        let (rows, blocks, scale) = if quick {
            (600, 8, 100_000.0)
        } else {
            (2_000, 48, 20_000_000.0)
        };
        let engine = PigEngine::new(event_catalog(rows, blocks, 7));
        let opts = PigOpts {
            reducers: if quick { 4 } else { 32 },
            byte_scale: scale,
            ..PigOpts::default()
        };
        let client = TezClient::new(ClusterSpec::homogeneous(8, 8192, 8)).with_cost(bench_cost());
        let config = TezConfig {
            workers: Some(n),
            ..TezConfig::default()
        };
        timed(move || {
            production_scripts()
                .into_iter()
                .map(|(name, script)| {
                    let res = engine.run_tez_with(&client, &script, &opts, config.clone());
                    assert!(res.success(), "{name} failed");
                    digest(&res.reports)
                })
                .collect::<Vec<_>>()
        })
    };

    let mut out = Vec::new();
    for (name, run) in [
        ("hive_tpch", &hive as &dyn Fn(usize) -> (u64, Vec<String>)),
        ("pig_etl", &pig),
    ] {
        let (single_ms, single_digests) = run(1);
        let (multi_ms, multi_digests) = run(workers);
        assert_eq!(
            single_digests, multi_digests,
            "{name}: simulated results diverged across worker counts"
        );
        out.push(WorkerScalingRow {
            name: name.to_string(),
            single_ms,
            multi_ms,
            workers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_gantt_shows_cross_dag_reuse() {
        let (gantt, reports, metrics) = fig7_session_trace();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.status.is_success()));
        // Some container row hosts tasks of both DAGs (A… and B…).
        assert!(
            gantt.lines().any(|l| l.contains('A') && l.contains('B')),
            "expected cross-DAG reuse in:\n{gantt}"
        );
        // Both DAGs rolled up into the registry.
        assert!(metrics.dag("dagA").is_some() && metrics.dag("dagB").is_some());
    }

    #[test]
    fn fig11_speedup_grows_with_iterations() {
        let rows = fig11_pig_kmeans(true);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.speedup() > 1.0, "{}: {}", r.name, r.speedup());
        }
        assert!(
            rows.last().unwrap().speedup() >= rows.first().unwrap().speedup(),
            "session benefit should grow with iteration count"
        );
    }

    #[test]
    fn fig13_service_model_is_worse_at_every_scale() {
        for (label, service, tez) in fig13_tenancy_latency(true) {
            assert!(
                tez < service,
                "{label}: tez {tez} should beat service {service}"
            );
        }
    }
}
