//! Figure 12: sharing a cluster across concurrent Spark jobs — allocated
//! capacity over time per tenant, service-executor model vs Tez model.

use tez_bench::fig12_tenancy_traces;

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let (service, tez) = fig12_tenancy_traces(quick);
    for (label, res) in [("service-based", &service), ("tez-based", &tez)] {
        println!("== {label} ==");
        for &(app, submit, finish) in &res.apps {
            let series = res.trace.allocation_series(app);
            let peak = series.iter().map(|&(_, v)| v).max().unwrap_or(0);
            let mean = res.trace.mean_allocation(
                app,
                tez_yarn::SimTime(submit),
                tez_yarn::SimTime(finish),
            );
            println!(
                "  app {:>2}: submit {:>6.1}s finish {:>7.1}s latency {:>7.1}s peak {:>3} vcores, mean {:>5.1}",
                app.0,
                submit as f64 / 1000.0,
                finish as f64 / 1000.0,
                (finish - submit) as f64 / 1000.0,
                peak,
                mean
            );
        }
        println!("  mean latency: {:.1}s", res.mean_latency_ms() / 1000.0);
    }
    println!("(paper: the Tez model releases idle resources that speed up the other jobs;");
    println!(" the service model holds resources for the life of the service)");
    assert!(tez.mean_latency_ms() < service.mean_latency_ms());
}
