//! Figure 13: Spark multi-tenancy latency across warehouse scale factors.

use tez_bench::{fig13_tenancy_latency, table};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let rows = fig13_tenancy_latency(quick);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, s, t)| {
            vec![
                label.clone(),
                table::secs(*s),
                table::secs(*t),
                format!("{:.1}x", *s as f64 / (*t).max(1) as f64),
            ]
        })
        .collect();
    println!("Figure 13 — Spark multi-tenancy mean latency per scale factor");
    println!(
        "{}",
        table::render(
            &["scale", "service (s)", "tez (s)", "improvement"],
            &table_rows
        )
    );
    println!("(paper: Tez-based implementation wins at every scale factor)");
    assert!(rows.iter().all(|(_, s, t)| t < s));
}
