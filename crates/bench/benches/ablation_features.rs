//! Ablations: isolate the runtime features the paper credits — container
//! reuse (§4.2), dynamic partition pruning (§3.5), broadcast joins (§5.2),
//! and slow-start shuffle overlap (§3.4).

use tez_bench::{ablation_features, table};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let rows = ablation_features(quick);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, on, off)| {
            vec![
                name.clone(),
                table::secs(*on),
                table::secs(*off),
                format!("{:+.0}%", (*off as f64 / (*on).max(1) as f64 - 1.0) * 100.0),
            ]
        })
        .collect();
    println!("Feature ablations on TPC-DS q3 (all features on vs one disabled)");
    println!(
        "{}",
        table::render(
            &["feature", "on (s)", "off (s)", "cost of disabling"],
            &table_rows
        )
    );
    for (name, on, off) in &rows {
        assert!(
            off >= on,
            "{name}: disabling must not speed things up ({off} < {on})"
        );
    }
}
