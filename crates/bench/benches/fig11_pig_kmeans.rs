//! Figure 11: Pig K-means iteration workload (10/50/100 iterations,
//! 10,000-row input, single node). Sessions + container reuse amortize
//! startup; the benefit grows with iteration count.

use tez_bench::{fig11_pig_kmeans, table};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let rows = fig11_pig_kmeans(quick);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                table::secs(r.tez_ms),
                table::secs(r.mr_ms),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    println!("Figure 11 — Pig K-means iterations (10,000 rows, single node)");
    println!(
        "{}",
        table::render(
            &["workload", "tez session (s)", "mr (s)", "speedup"],
            &table_rows
        )
    );
    println!("(paper: session/reuse advantage grows with the number of iterations)");
    assert!(rows
        .windows(2)
        .all(|w| w[1].speedup() >= w[0].speedup() * 0.9));
}
