//! Data-plane worker-pool wall-clock scaling: the same Hive TPC-H and Pig
//! ETL runs with 1 worker vs N workers. Simulated results are asserted
//! byte-identical; only wall-clock time may change.
//!
//! Set TEZ_BENCH_FULL=1 for paper-scale parameters and TEZ_WORKERS to pick
//! the multi-worker count (default: available parallelism).

use tez_bench::{table, worker_scaling};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let workers = tez_yarn::resolve_workers(None);
    let rows = worker_scaling(quick, workers);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                table::secs(r.single_ms),
                table::secs(r.multi_ms),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    println!("Worker-pool scaling — wall-clock, {workers} workers vs 1");
    println!(
        "{}",
        table::render(
            &["workload", "1 worker (s)", "N workers (s)", "speedup"],
            &table_rows
        )
    );
    println!("simulated outputs byte-identical at both worker counts");
}
