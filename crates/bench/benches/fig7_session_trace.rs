//! Figure 7: execution trace of 2 DAGs in one Tez session — containers are
//! re-used by tasks within a DAG and across DAGs.
//!
//! Pass `--chrome-trace <path>` to also export the session as a Chrome
//! Trace Event file (open in Perfetto or `chrome://tracing`).

use tez_bench::fig7_session_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut chrome_trace_path = None;
    while let Some(a) = args.next() {
        if a == "--chrome-trace" {
            chrome_trace_path = Some(args.next().expect("--chrome-trace needs a path"));
        }
    }

    let (gantt, reports) = fig7_session_trace();
    println!("Figure 7 — session trace (rows = containers; A/B = DAG of each task)");
    println!("{gantt}");
    for r in &reports {
        println!(
            "{}: {:.1}s, {} containers newly allocated, {} warm starts",
            r.name,
            r.runtime_s(),
            r.containers_allocated,
            r.warm_starts
        );
        if let Some(cp) = r.run_report.critical_path() {
            let (phase, ms) = cp.dominant_phase();
            println!("  critical path: dominant phase {phase} ({ms} ms)");
        }
    }
    if let Some(path) = chrome_trace_path {
        let rrs: Vec<&tez_runtime::RunReport> = reports.iter().map(|r| &r.run_report).collect();
        std::fs::write(&path, tez_runtime::chrome_trace(&rrs)).expect("write chrome trace");
        println!("chrome trace written to {path}");
    }
    assert!(
        gantt.lines().any(|l| l.contains('A') && l.contains('B')),
        "cross-DAG container reuse must be visible"
    );
    assert!(reports[1].containers_allocated < reports[0].containers_allocated.max(1));
}
