//! Figure 7: execution trace of 2 DAGs in one Tez session — containers are
//! re-used by tasks within a DAG and across DAGs.

use tez_bench::fig7_session_trace;

fn main() {
    let (gantt, reports) = fig7_session_trace();
    println!("Figure 7 — session trace (rows = containers; A/B = DAG of each task)");
    println!("{gantt}");
    for r in &reports {
        println!(
            "{}: {:.1}s, {} containers newly allocated, {} warm starts",
            r.name,
            r.runtime_s(),
            r.containers_allocated,
            r.warm_starts
        );
    }
    assert!(
        gantt.lines().any(|l| l.contains('A') && l.contains('B')),
        "cross-DAG container reuse must be visible"
    );
    assert!(reports[1].containers_allocated < reports[0].containers_allocated.max(1));
}
