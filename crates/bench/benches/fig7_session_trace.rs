//! Figure 7: execution trace of 2 DAGs in one Tez session — containers are
//! re-used by tasks within a DAG and across DAGs.
//!
//! Pass `--chrome-trace <path>` to also export the session as a Chrome
//! Trace Event file (open in Perfetto or `chrome://tracing`),
//! `--metrics <path>` / `--prometheus <path>` to export the metrics
//! registry as JSON / Prometheus text exposition, and `--history <path>`
//! to export the ATS-style history entity store as JSON.

use tez_bench::fig7_session_trace;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut chrome_trace_path = None;
    let mut metrics_path = None;
    let mut history_path = None;
    let mut prometheus_path = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome-trace" => {
                chrome_trace_path = Some(args.next().expect("--chrome-trace needs a path"));
            }
            "--metrics" => metrics_path = Some(args.next().expect("--metrics needs a path")),
            "--history" => history_path = Some(args.next().expect("--history needs a path")),
            "--prometheus" => {
                prometheus_path = Some(args.next().expect("--prometheus needs a path"));
            }
            _ => {}
        }
    }

    let (gantt, reports, metrics) = fig7_session_trace();
    println!("Figure 7 — session trace (rows = containers; A/B = DAG of each task)");
    println!("{gantt}");
    for r in &reports {
        println!(
            "{}: {:.1}s, {} containers newly allocated, {} warm starts",
            r.name,
            r.runtime_s(),
            r.containers_allocated,
            r.warm_starts
        );
        if let Some(cp) = r.run_report.critical_path() {
            let (phase, ms) = cp.dominant_phase();
            println!("  critical path: dominant phase {phase} ({ms} ms)");
        }
    }
    if let Some(path) = chrome_trace_path {
        let rrs: Vec<&tez_runtime::RunReport> = reports.iter().map(|r| &r.run_report).collect();
        std::fs::write(&path, tez_runtime::chrome_trace(&rrs)).expect("write chrome trace");
        println!("chrome trace written to {path}");
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, metrics.to_json()).expect("write metrics json");
        println!("metrics written to {path}");
    }
    if let Some(path) = prometheus_path {
        std::fs::write(&path, metrics.to_prometheus()).expect("write prometheus exposition");
        println!("prometheus exposition written to {path}");
    }
    if let Some(path) = history_path {
        let store = tez_runtime::HistoryStore::from_reports(reports.iter().map(|r| &r.run_report));
        std::fs::write(&path, store.to_json()).expect("write history json");
        println!("history written to {path}");
    }
    assert!(
        gantt.lines().any(|l| l.contains('A') && l.contains('B')),
        "cross-DAG container reuse must be visible"
    );
    assert!(reports[1].containers_allocated < reports[0].containers_allocated.max(1));
}
