//! Figure 10: Pig production ETL workloads on a busy (65% utilized)
//! cluster. Paper expectation: 1.5–2x over MapReduce.

use tez_bench::{fig10_pig_production, table};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let rows = fig10_pig_production(quick);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                table::secs(r.tez_ms),
                table::secs(r.mr_ms),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    println!("Figure 10 — Pig production workloads (cluster at ~65% background utilization)");
    println!(
        "{}",
        table::render(&["script", "tez (s)", "mr (s)", "speedup"], &table_rows)
    );
    let mean: f64 = rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64;
    println!("mean speedup: {mean:.1}x (paper: 1.5x to 2x keeping configuration identical)");
    assert!(rows.iter().all(|r| r.speedup() >= 1.0));
}
