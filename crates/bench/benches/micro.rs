//! Criterion micro-benchmarks of the performance-critical data structures:
//! the order-preserving codec, the external sorter, the k-way merge, DAG
//! expansion and the RM scheduling pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use tez_dag::{expand, DagBuilder, DataMovement, EdgeProperty, NamedDescriptor, Vertex};
use tez_shuffle::codec::{encode_kv, KvCursor};
use tez_shuffle::{Combiner, ExternalSorter, KeyBuilder, MergingCursor, Partitioner};
use tez_yarn::{ContainerRequest, QueueSpec, Resource, Rm, RmConfig, SimTime};

fn bench_codec(c: &mut Criterion) {
    c.bench_function("codec/composite_key_encode", |b| {
        b.iter(|| {
            let mut kb = KeyBuilder::new();
            kb.push_i64(black_box(123456789))
                .push_str(black_box("hello-world-key"))
                .push_f64(black_box(std::f64::consts::E));
            black_box(kb.finish())
        })
    });
    let mut frame = Vec::new();
    for i in 0..1000u64 {
        encode_kv(&mut frame, &i.to_be_bytes(), b"value-bytes-here");
    }
    let frame = bytes::Bytes::from(frame);
    c.bench_function("codec/kv_cursor_scan_1k", |b| {
        b.iter(|| {
            let mut cur = KvCursor::new(frame.clone());
            let mut n = 0;
            while let Some((k, _)) = cur.next() {
                n += k.len();
            }
            black_box(n)
        })
    });
}

fn bench_sorter(c: &mut Criterion) {
    c.bench_function("sorter/10k_rows_4_partitions", |b| {
        b.iter_batched(
            || ExternalSorter::new(4, Partitioner::Hash, Combiner::None, 1 << 20),
            |mut s| {
                for i in 0..10_000u64 {
                    s.insert(&(i * 2654435761 % 10_000).to_be_bytes(), b"v");
                }
                black_box(s.finish())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_merge(c: &mut Criterion) {
    let runs: Vec<bytes::Bytes> = (0..8)
        .map(|r| {
            let mut buf = Vec::new();
            for i in 0..1_000u64 {
                encode_kv(&mut buf, &(i * 8 + r).to_be_bytes(), b"v");
            }
            bytes::Bytes::from(buf)
        })
        .collect();
    c.bench_function("merge/8_way_8k_rows", |b| {
        b.iter(|| {
            let cursors = runs.iter().map(|r| KvCursor::new(r.clone())).collect();
            let mut m = MergingCursor::new(cursors);
            let mut n = 0usize;
            while m.next().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_expansion(c: &mut Criterion) {
    let prop = |m| EdgeProperty::new(m, NamedDescriptor::new("O"), NamedDescriptor::new("I"));
    let dag = DagBuilder::new("bench")
        .add_vertex(Vertex::new("a", NamedDescriptor::new("P")).with_parallelism(200))
        .add_vertex(Vertex::new("b", NamedDescriptor::new("P")).with_parallelism(200))
        .add_vertex(Vertex::new("c", NamedDescriptor::new("P")).with_parallelism(100))
        .add_edge("a", "c", prop(DataMovement::ScatterGather))
        .add_edge("b", "c", prop(DataMovement::ScatterGather))
        .build()
        .unwrap();
    c.bench_function("dag/expand_200x200x100", |b| {
        b.iter(|| black_box(expand(&dag, &[200, 200, 100], &HashMap::new()).unwrap()))
    });
}

fn bench_rm(c: &mut Criterion) {
    c.bench_function("rm/schedule_100_requests_50_nodes", |b| {
        b.iter_batched(
            || {
                let nodes: Vec<(Resource, u32)> =
                    (0..50).map(|i| (Resource::new(8192, 8), i / 10)).collect();
                let mut rm = Rm::new(nodes, vec![QueueSpec::new("q", 1.0)], RmConfig::default());
                rm.register_app(tez_yarn::AppId(0), "q");
                for _ in 0..100 {
                    rm.add_request(
                        tez_yarn::AppId(0),
                        ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                        SimTime::ZERO,
                    );
                }
                rm
            },
            |mut rm| black_box(rm.schedule(SimTime::ZERO)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_sorter,
    bench_merge,
    bench_expansion,
    bench_rm
);
criterion_main!(benches);
