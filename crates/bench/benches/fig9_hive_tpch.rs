//! Figure 9: Hive TPC-H derived workload at Yahoo (10 TB, 350 nodes).
//! Set TEZ_BENCH_FULL=1 for paper-scale parameters.

use tez_bench::{fig9_hive_tpch, table};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let rows = fig9_hive_tpch(quick);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                table::secs(r.tez_ms),
                table::secs(r.mr_ms),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "Figure 9 — Hive TPC-H derived workload ({})",
        if quick { "quick" } else { "10TB, 350 nodes" }
    );
    println!(
        "{}",
        table::render(&["query", "tez (s)", "mr (s)", "speedup"], &table_rows)
    );
    let mean: f64 = rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64;
    println!("mean speedup: {mean:.1}x (paper: Tez outperforms MR at large cluster scale)");
    assert!(
        rows.iter().all(|r| r.speedup() >= 1.0),
        "Tez must win every query"
    );
}
