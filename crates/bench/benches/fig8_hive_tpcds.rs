//! Figure 8: Hive TPC-DS derived workload (30 TB scale), Tez vs MapReduce.
//! Set TEZ_BENCH_FULL=1 for paper-scale parameters.

use tez_bench::{fig8_hive_tpcds, table};

fn main() {
    let quick = std::env::var("TEZ_BENCH_FULL").is_err();
    let rows = fig8_hive_tpcds(quick);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                table::secs(r.tez_ms),
                table::secs(r.mr_ms),
                format!("{:.1}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "Figure 8 — Hive TPC-DS derived workload ({} scale)",
        if quick { "quick" } else { "30TB" }
    );
    println!(
        "{}",
        table::render(&["query", "tez (s)", "mr (s)", "speedup"], &table_rows)
    );
    let mean: f64 = rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64;
    println!("mean speedup: {mean:.1}x (paper: Tez substantially outperforms MR, up to ~10x on short queries)");
    assert!(
        rows.iter().all(|r| r.speedup() >= 1.0),
        "Tez must win every query"
    );
}
