//! Backend equivalence: for every TPC-H- and TPC-DS-derived query, the Tez
//! backend, the classic MapReduce backend, and the in-memory reference
//! executor must produce identical results — and Tez must not be slower.

use tez_core::TezClient;
use tez_hive::plan::compare_rows;
use tez_hive::types::{Datum, Row};
use tez_hive::{tpcds, tpch, HiveEngine, HiveOpts, Plan};
use tez_runtime::counter_names;
use tez_yarn::{ClusterSpec, CostModel};

fn client() -> TezClient {
    TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(CostModel {
        straggler_prob: 0.0,
        ..CostModel::default()
    })
}

/// Order rows canonically for comparison. Ordered queries (limit) are
/// compared as-is.
fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    let width = rows.first().map(Vec::len).unwrap_or(0);
    let keys: Vec<(usize, bool)> = (0..width).map(|i| (i, false)).collect();
    rows.sort_by(|a, b| compare_rows(a, b, &keys));
    rows
}

/// Floats accumulate in different orders across backends; compare with a
/// tolerance.
fn rows_equal(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Datum::F64(p), Datum::F64(q)) => {
                    (p - q).abs() <= 1e-6 * (1.0 + p.abs().max(q.abs()))
                }
                _ => x == y,
            })
    })
}

fn is_ordered_query(plan: &Plan) -> bool {
    matches!(plan, Plan::OrderBy { limit: Some(_), .. })
}

fn check_suite(queries: Vec<(&'static str, tez_hive::Q)>, engine: &HiveEngine) {
    let client = client();
    let opts = HiveOpts::default();
    for (name, q) in queries {
        eprintln!("== {name}");
        let expected = engine.reference(&q.plan);
        let tez = engine.run_tez(&client, name, &q.plan, &opts);
        assert!(tez.success(), "{name} tez failed: {:?}", tez.reports);
        let mr = engine.run_mr(&client, name, &q.plan, &opts);
        assert!(mr.success(), "{name} mr failed: {:?}", mr.reports);

        let (e, t, m) = if is_ordered_query(&q.plan) {
            (expected, tez.rows.clone(), mr.rows.clone())
        } else {
            (
                canon(expected),
                canon(tez.rows.clone()),
                canon(mr.rows.clone()),
            )
        };
        assert!(
            rows_equal(&e, &t),
            "{name}: tez mismatch\nexpected {:?}\n     got {:?}",
            e.iter().take(3).collect::<Vec<_>>(),
            t.iter().take(3).collect::<Vec<_>>()
        );
        assert!(
            rows_equal(&e, &m),
            "{name}: mr mismatch\nexpected {:?}\n     got {:?}",
            e.iter().take(3).collect::<Vec<_>>(),
            m.iter().take(3).collect::<Vec<_>>()
        );
        assert!(
            tez.runtime_ms() <= mr.runtime_ms(),
            "{name}: tez ({}) slower than mr ({})",
            tez.runtime_ms(),
            mr.runtime_ms()
        );
    }
}

#[test]
fn tpch_suite_backends_agree() {
    let catalog = tpch::generate(600, 4, 7);
    let engine = HiveEngine::new(catalog);
    let queries = tpch::queries(&engine.catalog);
    check_suite(queries, &engine);
}

#[test]
fn tpcds_suite_backends_agree() {
    let catalog = tpcds::generate(800, 8, 7);
    let engine = HiveEngine::new(catalog);
    let queries = tpcds::queries(&engine.catalog);
    check_suite(queries, &engine);
}

#[test]
fn dpp_prunes_fact_blocks_on_tez() {
    let catalog = tpcds::generate(800, 16, 7);
    let engine = HiveEngine::new(catalog);
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q3")
        .unwrap()
        .1;
    let client = client();
    let with_dpp = engine.run_tez(&client, "q3dpp", &q.plan, &HiveOpts::default());
    assert!(with_dpp.success());
    let pruned = with_dpp.reports[0]
        .counters
        .get(counter_names::PRUNED_SPLITS);
    assert!(
        pruned > 0,
        "q3 (one month of three years) must prune blocks"
    );

    let no_dpp = engine.run_tez(
        &client,
        "q3nodpp",
        &q.plan,
        &HiveOpts {
            dpp: false,
            ..HiveOpts::default()
        },
    );
    assert!(no_dpp.success());
    assert_eq!(
        no_dpp.reports[0].counters.get(counter_names::PRUNED_SPLITS),
        0
    );
    assert!(rows_equal(
        &canon(with_dpp.rows.clone()),
        &canon(no_dpp.rows.clone())
    ));
    assert!(
        with_dpp.runtime_ms() <= no_dpp.runtime_ms(),
        "pruning must not slow the query ({} vs {})",
        with_dpp.runtime_ms(),
        no_dpp.runtime_ms()
    );
}

#[test]
fn broadcast_join_uses_object_registry() {
    let catalog = tpcds::generate(800, 8, 7);
    let engine = HiveEngine::new(catalog);
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q42")
        .unwrap()
        .1;
    // A small cluster forces several tasks through each container, so the
    // second task in a container finds the hash table cached.
    let client = TezClient::new(ClusterSpec::homogeneous(1, 2048, 2)).with_cost(CostModel {
        straggler_prob: 0.0,
        ..CostModel::default()
    });
    // One split per block so the probe vertex runs several tasks.
    let config = tez_core::TezConfig {
        min_split_bytes: 1,
        max_split_bytes: 1,
        ..tez_core::TezConfig::default()
    };
    // DPP off: all fact blocks scan, so the probe vertex runs many tasks.
    let opts = HiveOpts {
        dpp: false,
        ..HiveOpts::default()
    };
    let res = engine.run_tez_with(&client, "q42", &q.plan, &opts, config);
    assert!(res.success());
    // With container reuse, later tasks find the hash table cached.
    assert!(
        res.reports[0].counters.get(counter_names::REGISTRY_HITS) > 0,
        "map-join hash tables should be re-used across tasks in a container"
    );
}

/// The unified run report on the hive_tpch setup (q3, 6 nodes): two
/// same-seed runs serialize byte-identically, and every section carries
/// nonzero data — locality outcomes, container reuse, shuffle bytes.
#[test]
fn run_report_is_deterministic_and_populated_on_tpch_q3() {
    let engine = HiveEngine::new(tpch::generate(1_000, 8, 7));
    let tez_client = TezClient::new(ClusterSpec::homogeneous(6, 8192, 8));
    let opts = HiveOpts {
        byte_scale: 200_000.0,
        ..HiveOpts::default()
    };
    let (name, q) = tpch::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q3")
        .expect("q3 in suite");

    let a = engine.run_tez(&tez_client, name, &q.plan, &opts);
    let b = engine.run_tez(&tez_client, name, &q.plan, &opts);
    assert!(a.success() && b.success());

    let ra = &a.reports.last().unwrap().run_report;
    let rb = &b.reports.last().unwrap().run_report;
    assert_eq!(
        ra.to_json(),
        rb.to_json(),
        "same-seed runs must serialize byte-identically"
    );

    assert!(ra.scheduler.placements > 0);
    assert!(
        ra.scheduler.node_local > 0,
        "HDFS-located scans should yield node-local placements: {:?}",
        ra.scheduler
    );
    assert!(
        ra.containers.reuse_hits > 0,
        "downstream vertices should reuse producer containers: {:?}",
        ra.containers
    );
    assert!(ra.total_fetched_bytes() > 0, "shuffle moved bytes");
    assert!(!ra.attempts.is_empty());
    // And the JSON round-trips through the parser.
    let back = tez_runtime::RunReport::from_json(&ra.to_json()).expect("parse");
    assert_eq!(&back, ra);
}
