//! Property-based tests of the engine's typed layer: row/key codecs agree
//! with SQL comparison semantics, and aggregation is partition-invariant
//! (the map-side-combine correctness condition).

use proptest::prelude::*;
use tez_hive::expr::Expr;
use tez_hive::plan::{row_to_state, state_to_row, AggExpr};
use tez_hive::types::{decode_row, encode_key, row_bytes, Datum, Row};

fn datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<i64>().prop_map(Datum::I64),
        (-1e12f64..1e12).prop_map(Datum::F64),
        "[a-z]{0,12}".prop_map(|s| Datum::str(&s)),
    ]
}

fn row(max_cols: usize) -> impl Strategy<Value = Row> {
    proptest::collection::vec(datum(), 1..=max_cols)
}

proptest! {
    /// Rows survive the binary codec byte-exactly.
    #[test]
    fn row_codec_roundtrip(r in row(6)) {
        prop_assert_eq!(decode_row(&row_bytes(&r)).unwrap(), r);
    }

    /// Key encoding agrees with SQL comparison on same-typed single
    /// columns (the invariant the sorted shuffle relies on).
    #[test]
    fn key_order_matches_sql_i64(a in proptest::option::of(any::<i64>()),
                                 b in proptest::option::of(any::<i64>())) {
        let da = a.map_or(Datum::Null, Datum::I64);
        let db = b.map_or(Datum::Null, Datum::I64);
        let ka = encode_key(&vec![da.clone()], &[0], &[]);
        let kb = encode_key(&vec![db.clone()], &[0], &[]);
        prop_assert_eq!(ka.cmp(&kb), da.cmp_sql(&db));
    }

    #[test]
    fn key_order_matches_sql_str(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let (da, db) = (Datum::str(&a), Datum::str(&b));
        let ka = encode_key(&vec![da.clone()], &[0], &[]);
        let kb = encode_key(&vec![db.clone()], &[0], &[]);
        prop_assert_eq!(ka.cmp(&kb), da.cmp_sql(&db));
    }

    /// Descending keys invert the order exactly (ignoring NULL placement,
    /// which deliberately moves to the end).
    #[test]
    fn desc_key_inverts_order(a: i64, b: i64) {
        let ka = encode_key(&vec![Datum::I64(a)], &[0], &[true]);
        let kb = encode_key(&vec![Datum::I64(b)], &[0], &[true]);
        prop_assert_eq!(ka.cmp(&kb), b.cmp(&a));
    }

    /// Aggregation state is partition-invariant: folding rows in any split
    /// and merging partials gives the same result as folding everything
    /// (the condition that makes map-side combining sound).
    #[test]
    fn aggregation_is_partition_invariant(
        values in proptest::collection::vec(proptest::option::of(-1000i64..1000), 1..60),
        split in 0usize..60,
    ) {
        let rows: Vec<Row> = values
            .iter()
            .map(|v| vec![v.map_or(Datum::Null, Datum::I64)])
            .collect();
        let split = split.min(rows.len());
        let aggs = [
            AggExpr::CountStar,
            AggExpr::Sum(Expr::col(0)),
            AggExpr::Min(Expr::col(0)),
            AggExpr::Max(Expr::col(0)),
            AggExpr::Avg(Expr::col(0)),
        ];
        for agg in &aggs {
            let mut all = agg.init();
            for r in &rows {
                agg.update(&mut all, r);
            }
            let mut left = agg.init();
            for r in &rows[..split] {
                agg.update(&mut left, r);
            }
            let mut right = agg.init();
            for r in &rows[split..] {
                agg.update(&mut right, r);
            }
            agg.merge(&mut left, &right);
            match (agg.finish(all), agg.finish(left)) {
                (Datum::F64(x), Datum::F64(y)) => {
                    prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
                }
                (x, y) => prop_assert_eq!(x, y),
            }
        }
    }

    /// Aggregate states survive the row encoding used by partial shuffles.
    #[test]
    fn agg_state_row_roundtrip(
        values in proptest::collection::vec(-1000i64..1000, 0..30)
    ) {
        let aggs = vec![
            AggExpr::CountStar,
            AggExpr::Sum(Expr::col(0)),
            AggExpr::Avg(Expr::col(0)),
            AggExpr::Min(Expr::col(0)),
            AggExpr::Max(Expr::col(0)),
        ];
        let mut states: Vec<_> = aggs.iter().map(AggExpr::init).collect();
        for v in &values {
            let r: Row = vec![Datum::I64(*v)];
            for (a, s) in aggs.iter().zip(states.iter_mut()) {
                a.update(s, &r);
            }
        }
        let encoded = state_to_row(&states);
        let decoded = row_to_state(&aggs, &decode_row(&row_bytes(&encoded)).unwrap());
        prop_assert_eq!(decoded, states);
    }

    /// Filter predicates never panic and behave like their reference
    /// evaluation over arbitrary typed rows.
    #[test]
    fn exprs_are_total_over_i64_rows(vals in proptest::collection::vec(
        proptest::option::of(any::<i64>()), 2..4), threshold: i64) {
        let r: Row = vals.iter().map(|v| v.map_or(Datum::Null, Datum::I64)).collect();
        let e = Expr::col(0)
            .ge(Expr::lit_i64(threshold))
            .and(Expr::col(1).ne(Expr::lit_i64(0)));
        // NULL-safe three-valued logic: matches() is false on NULL.
        let expected = match (&r[0], &r[1]) {
            (Datum::I64(a), Datum::I64(b)) => *a >= threshold && *b != 0,
            _ => false,
        };
        prop_assert_eq!(e.matches(&r), expected);
    }
}
