//! The engine facade: run a query on the Tez backend, the classic
//! MapReduce backend, or the in-memory reference executor.

use crate::catalog::Catalog;
use crate::compile_mr::build_mr_dags;
use crate::compile_tez::build_tez_dag;
use crate::physical::{build_stages, rewrite_for_mr, PhysicalOpts};
use crate::plan::{execute_reference, Plan};
use crate::types::{decode_row, Row};
use tez_core::{standard_registry, DagReport, TezClient, TezConfig};
use tez_runtime::Dfs;
use tez_shuffle::KvCursor;
use tez_yarn::SimHdfs;

/// Engine options.
#[derive(Clone, Debug)]
pub struct HiveOpts {
    /// Reducer count for shuffle stages (Tez shrinks it automatically when
    /// auto-parallelism is on).
    pub reducers: usize,
    /// Allow broadcast (map) joins on the Tez backend.
    pub broadcast_joins: bool,
    /// Allow dynamic partition pruning on the Tez backend.
    pub dpp: bool,
    /// Declared-scale multiplier (see DESIGN.md).
    pub byte_scale: f64,
}

impl Default for HiveOpts {
    fn default() -> Self {
        HiveOpts {
            reducers: 8,
            broadcast_joins: true,
            dpp: true,
            byte_scale: 1.0,
        }
    }
}

/// A finished query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Result rows (sink file order).
    pub rows: Vec<Row>,
    /// One report per DAG (Tez: one; MR: one per job).
    pub reports: Vec<DagReport>,
}

impl QueryResult {
    /// End-to-end runtime: first submission to last finish.
    pub fn runtime_ms(&self) -> u64 {
        let start = self
            .reports
            .first()
            .map(|r| r.submitted.millis())
            .unwrap_or(0);
        let end = self
            .reports
            .last()
            .map(|r| r.finished.millis())
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Whether every DAG succeeded.
    pub fn success(&self) -> bool {
        !self.reports.is_empty() && self.reports.iter().all(|r| r.status.is_success())
    }
}

/// The Hive engine: a catalog plus compilation backends.
pub struct HiveEngine {
    /// The warehouse.
    pub catalog: Catalog,
}

impl HiveEngine {
    /// Engine over a catalog.
    pub fn new(catalog: Catalog) -> Self {
        HiveEngine { catalog }
    }

    /// In-memory reference execution (ground truth for tests).
    pub fn reference(&self, plan: &Plan) -> Vec<Row> {
        execute_reference(plan, &self.catalog.reference_tables())
    }

    fn result_path(name: &str) -> String {
        format!("/results/{name}")
    }

    /// Run on the Tez backend with a custom base config.
    pub fn run_tez_with(
        &self,
        client: &TezClient,
        name: &str,
        plan: &Plan,
        opts: &HiveOpts,
        mut config: TezConfig,
    ) -> QueryResult {
        config.byte_scale = opts.byte_scale;
        let popts = PhysicalOpts {
            reducers: opts.reducers,
            broadcast_joins: opts.broadcast_joins,
            dpp: opts.dpp,
        };
        let sp = build_stages(plan, &self.catalog, &popts);
        let mut registry = standard_registry();
        let result_path = Self::result_path(name);
        let dag = build_tez_dag(
            name,
            &sp,
            &self.catalog,
            &mut registry,
            &result_path,
            &config,
        );
        let scale = opts.byte_scale;
        let run = client.run_dag(dag, registry, config, |hdfs| {
            hdfs.set_stat_scale(scale);
            self.catalog.load_hdfs(hdfs, scale);
        });
        QueryResult {
            rows: read_rows(run.hdfs(), &result_path),
            reports: run.reports,
        }
    }

    /// Run on the Tez backend with default Tez configuration.
    pub fn run_tez(
        &self,
        client: &TezClient,
        name: &str,
        plan: &Plan,
        opts: &HiveOpts,
    ) -> QueryResult {
        self.run_tez_with(client, name, plan, opts, TezConfig::default())
    }

    /// Run on the classic MapReduce backend.
    pub fn run_mr(
        &self,
        client: &TezClient,
        name: &str,
        plan: &Plan,
        opts: &HiveOpts,
    ) -> QueryResult {
        let mut config = TezConfig::mapreduce_baseline();
        config.byte_scale = opts.byte_scale;
        let popts = PhysicalOpts {
            reducers: opts.reducers,
            broadcast_joins: false,
            dpp: false,
        };
        let mr_plan = rewrite_for_mr(plan);
        let sp = build_stages(&mr_plan, &self.catalog, &popts);
        let mut registry = standard_registry();
        let result_path = Self::result_path(name);
        let dags = build_mr_dags(
            name,
            &sp,
            &self.catalog,
            &mut registry,
            &result_path,
            &config,
        );
        let scale = opts.byte_scale;
        let run = client.run_session(dags, registry, config, |hdfs| {
            hdfs.set_stat_scale(scale);
            self.catalog.load_hdfs(hdfs, scale);
        });
        QueryResult {
            rows: read_rows(run.hdfs(), &result_path),
            reports: run.reports,
        }
    }
}

/// Read result rows from a committed sink path.
pub fn read_rows(hdfs: &SimHdfs, path: &str) -> Vec<Row> {
    let Some(blocks) = hdfs.list_blocks(path) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for b in blocks {
        if let Some(data) = hdfs.read_block(path, b.index) {
            let mut c = KvCursor::new(data);
            while let Some((_, v)) = c.next() {
                rows.push(decode_row(&v).expect("corrupt row in committed sink"));
            }
        }
    }
    rows
}
