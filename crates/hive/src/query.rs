//! A small named-column query builder (dataframe style) on top of
//! [`Plan`], used by the TPC-H/TPC-DS suites so join/group column indices
//! are derived from names instead of hand-counted offsets.

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::plan::{AggExpr, Plan};

/// A plan under construction together with its output column names.
#[derive(Clone, Debug)]
pub struct Q {
    /// The logical plan so far.
    pub plan: Plan,
    /// Output column names, in order.
    pub cols: Vec<String>,
}

impl Q {
    /// Start from a full table scan.
    pub fn scan(catalog: &Catalog, table: &str) -> Q {
        Q {
            plan: Plan::scan(table),
            cols: catalog
                .schema(table)
                .columns
                .iter()
                .map(|(n, _)| n.clone())
                .collect(),
        }
    }

    /// Index of a named column.
    pub fn col(&self, name: &str) -> usize {
        self.cols
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name:?} in {:?}", self.cols))
    }

    /// Column-reference expression by name.
    pub fn c(&self, name: &str) -> Expr {
        Expr::Col(self.col(name))
    }

    /// Filter rows.
    pub fn filter(mut self, predicate: Expr) -> Q {
        self.plan = self.plan.filter(predicate);
        self
    }

    /// Project to named expressions.
    pub fn select(mut self, exprs: Vec<(Expr, &str)>) -> Q {
        self.cols = exprs.iter().map(|(_, n)| n.to_string()).collect();
        self.plan = self
            .plan
            .project(exprs.into_iter().map(|(e, _)| e).collect());
        self
    }

    /// Inner equi-join (shuffle).
    pub fn join(self, right: Q, on: &[(&str, &str)]) -> Q {
        let lk = on.iter().map(|(l, _)| self.col(l)).collect();
        let rk = on.iter().map(|(_, r)| right.col(r)).collect();
        let mut cols = self.cols.clone();
        cols.extend(right.cols.iter().cloned());
        Q {
            plan: self.plan.hash_join(right.plan, lk, rk),
            cols,
        }
    }

    /// Inner equi-join broadcasting the (small) right side.
    pub fn broadcast_join(self, right: Q, on: &[(&str, &str)]) -> Q {
        let lk = on.iter().map(|(l, _)| self.col(l)).collect();
        let rk = on.iter().map(|(_, r)| right.col(r)).collect();
        let mut cols = self.cols.clone();
        cols.extend(right.cols.iter().cloned());
        Q {
            plan: self.plan.broadcast_join(right.plan, lk, rk),
            cols,
        }
    }

    /// Group by named columns with named aggregates.
    pub fn group(self, keys: &[&str], aggs: Vec<(AggExpr, &str)>) -> Q {
        let key_idx: Vec<usize> = keys.iter().map(|k| self.col(k)).collect();
        let mut cols: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        cols.extend(aggs.iter().map(|(_, n)| n.to_string()));
        Q {
            plan: self
                .plan
                .aggregate(key_idx, aggs.into_iter().map(|(a, _)| a).collect()),
            cols,
        }
    }

    /// Order by named `(column, descending)` keys with optional limit.
    pub fn order(mut self, keys: &[(&str, bool)], limit: Option<usize>) -> Q {
        let k: Vec<(usize, bool)> = keys.iter().map(|(n, d)| (self.col(n), *d)).collect();
        self.plan = self.plan.order_by(k, limit);
        self
    }

    /// Union with another query of the same shape.
    pub fn union(self, other: Q) -> Q {
        Q {
            cols: self.cols.clone(),
            plan: Plan::Union {
                inputs: vec![
                    std::sync::Arc::new(self.plan),
                    std::sync::Arc::new(other.plan),
                ],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColType, Datum, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![("a", ColType::I64), ("b", ColType::Str)]),
            vec![vec![Datum::I64(1), Datum::str("x")]],
            1,
            None,
        );
        c.add_table(
            "u",
            Schema::new(vec![("a", ColType::I64), ("c", ColType::I64)]),
            vec![vec![Datum::I64(1), Datum::I64(9)]],
            1,
            None,
        );
        c
    }

    #[test]
    fn join_extends_columns() {
        let cat = catalog();
        let q = Q::scan(&cat, "t").join(Q::scan(&cat, "u"), &[("a", "a")]);
        assert_eq!(q.cols, vec!["a", "b", "a", "c"]);
        // First "a" wins positional lookup; use the right-side name "c".
        assert_eq!(q.col("c"), 3);
    }

    #[test]
    fn group_renames_columns() {
        let cat = catalog();
        let q = Q::scan(&cat, "t").group(&["b"], vec![(AggExpr::CountStar, "n")]);
        assert_eq!(q.cols, vec!["b", "n"]);
        assert_eq!(q.col("n"), 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn unknown_column_panics() {
        let cat = catalog();
        Q::scan(&cat, "t").col("zzz");
    }
}
