//! TPC-H-derived schema, data generator, and query suite (paper §6.2: the
//! Yahoo-scale Hive comparison of Figure 9 runs a TPC-H derived workload).
//!
//! Queries keep the published queries' *shape* — the same joins, grouping
//! structure and top-k patterns — with simplified predicates, which is what
//! "TPC-H derived workload" means in the paper's evaluation too.

use crate::catalog::Catalog;
use crate::plan::AggExpr;
use crate::query::Q;
use crate::types::{ColType, Datum, Row, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: &[&str] = &["AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "FOB", "REG AIR"];
const TYPES: &[&str] = &[
    "PROMO BRUSHED",
    "STANDARD POLISHED",
    "PROMO PLATED",
    "ECONOMY BURNISHED",
];
const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const FLAGS: &[&str] = &["A", "N", "R"];
const STATUS: &[&str] = &["F", "O"];

fn date(rng: &mut StdRng) -> i64 {
    // 1992-01-01 .. 1998-12-01 as yyyymmdd.
    let y = rng.random_range(1992..=1998);
    let m = rng.random_range(1..=12);
    let d = rng.random_range(1..=28);
    y * 10000 + m * 100 + d
}

fn pick<'a>(rng: &mut StdRng, v: &'a [&str]) -> &'a str {
    v[rng.random_range(0..v.len())]
}

/// Generate a TPC-H-derived catalog.
///
/// `sf_rows` sets the lineitem row count; other tables follow TPC-H's
/// ratios. `blocks` controls the HDFS block count of the two big tables.
pub fn generate(sf_rows: usize, blocks: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cat = Catalog::new();

    let num_lineitem = sf_rows.max(40);
    let num_orders = (num_lineitem / 4).max(10);
    let num_customers = (num_orders / 10).max(5);
    let num_parts = (num_lineitem / 30).max(5);
    let num_suppliers = (num_parts / 2).max(10);
    let num_nations = 25;

    cat.add_table(
        "region",
        Schema::new(vec![
            ("r_regionkey", ColType::I64),
            ("r_name", ColType::Str),
        ]),
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, r)| vec![Datum::I64(i as i64), Datum::str(r)])
            .collect(),
        1,
        None,
    );

    let nations: Vec<Row> = (0..num_nations)
        .map(|i| {
            vec![
                Datum::I64(i as i64),
                Datum::str(format!("NATION{i:02}")),
                Datum::I64((i % REGIONS.len()) as i64),
            ]
        })
        .collect();
    cat.add_table(
        "nation",
        Schema::new(vec![
            ("n_nationkey", ColType::I64),
            ("n_name", ColType::Str),
            ("n_regionkey", ColType::I64),
        ]),
        nations,
        1,
        None,
    );

    cat.add_table(
        "supplier",
        Schema::new(vec![
            ("s_suppkey", ColType::I64),
            ("s_nationkey", ColType::I64),
        ]),
        (0..num_suppliers)
            .map(|i| {
                vec![
                    Datum::I64(i as i64),
                    Datum::I64(rng.random_range(0..num_nations) as i64),
                ]
            })
            .collect(),
        1,
        None,
    );

    cat.add_table(
        "customer",
        Schema::new(vec![
            ("c_custkey", ColType::I64),
            ("c_name", ColType::Str),
            ("c_nationkey", ColType::I64),
            ("c_mktsegment", ColType::Str),
            ("c_acctbal", ColType::F64),
        ]),
        (0..num_customers)
            .map(|i| {
                vec![
                    Datum::I64(i as i64),
                    Datum::str(format!("Customer#{i:06}")),
                    Datum::I64(rng.random_range(0..num_nations) as i64),
                    // Stripe segments instead of drawing them: every segment
                    // is populated at every scale, so segment-filtered
                    // queries (q3) stay satisfiable on tiny test catalogs.
                    Datum::str(SEGMENTS[i % SEGMENTS.len()]),
                    Datum::F64(rng.random_range(-999.0..9999.0)),
                ]
            })
            .collect(),
        1,
        None,
    );

    cat.add_table(
        "part",
        Schema::new(vec![
            ("p_partkey", ColType::I64),
            ("p_type", ColType::Str),
            ("p_size", ColType::I64),
        ]),
        (0..num_parts)
            .map(|i| {
                vec![
                    Datum::I64(i as i64),
                    Datum::str(pick(&mut rng, TYPES)),
                    Datum::I64(rng.random_range(1..=50)),
                ]
            })
            .collect(),
        1,
        None,
    );

    let orders: Vec<Row> = (0..num_orders)
        .map(|i| {
            vec![
                Datum::I64(i as i64),
                Datum::I64(rng.random_range(0..num_customers) as i64),
                Datum::str(pick(&mut rng, STATUS)),
                Datum::F64(rng.random_range(1000.0..500_000.0)),
                Datum::I64(date(&mut rng)),
                Datum::str(pick(&mut rng, PRIORITIES)),
                Datum::I64(rng.random_range(0..2)),
            ]
        })
        .collect();
    cat.add_table(
        "orders",
        Schema::new(vec![
            ("o_orderkey", ColType::I64),
            ("o_custkey", ColType::I64),
            ("o_orderstatus", ColType::Str),
            ("o_totalprice", ColType::F64),
            ("o_orderdate", ColType::I64),
            ("o_orderpriority", ColType::Str),
            ("o_shippriority", ColType::I64),
        ]),
        orders,
        blocks,
        None,
    );

    let lineitem: Vec<Row> = (0..num_lineitem)
        .map(|_| {
            let ship = date(&mut rng);
            vec![
                Datum::I64(rng.random_range(0..num_orders) as i64),
                Datum::I64(rng.random_range(0..num_parts) as i64),
                Datum::I64(rng.random_range(0..num_suppliers) as i64),
                Datum::I64(rng.random_range(1..=50)),
                Datum::F64(rng.random_range(900.0..105_000.0)),
                Datum::F64((rng.random_range(0..=10) as f64) / 100.0),
                Datum::F64((rng.random_range(0..=8) as f64) / 100.0),
                Datum::str(pick(&mut rng, FLAGS)),
                Datum::str(pick(&mut rng, STATUS)),
                Datum::I64(ship),
                Datum::I64(ship + rng.random_range(0..60)),
                Datum::str(pick(&mut rng, SHIPMODES)),
            ]
        })
        .collect();
    cat.add_table(
        "lineitem",
        Schema::new(vec![
            ("l_orderkey", ColType::I64),
            ("l_partkey", ColType::I64),
            ("l_suppkey", ColType::I64),
            ("l_quantity", ColType::I64),
            ("l_extendedprice", ColType::F64),
            ("l_discount", ColType::F64),
            ("l_tax", ColType::F64),
            ("l_returnflag", ColType::Str),
            ("l_linestatus", ColType::Str),
            ("l_shipdate", ColType::I64),
            ("l_receiptdate", ColType::I64),
            ("l_shipmode", ColType::Str),
        ]),
        lineitem,
        blocks,
        None,
    );
    // region/nation are fixed-size tables in TPC-H; everything else grows
    // with the scale factor (and our row ratios track the spec).
    for dim in ["region", "nation"] {
        cat.set_scale_override(dim, 1.0);
    }
    cat
}

/// The derived query suite: `(name, builder)` pairs.
pub fn queries(cat: &Catalog) -> Vec<(&'static str, Q)> {
    use crate::expr::Expr as E;
    let one = || E::lit_f64(1.0);
    vec![
        // Q1: pricing summary report.
        ("q1", {
            let l = Q::scan(cat, "lineitem");
            let disc_price = l.c("l_extendedprice").mul(one().sub(l.c("l_discount")));
            let shipdate = l.c("l_shipdate");
            l.filter(shipdate.le(E::lit_i64(19980902)))
                .group(
                    &["l_returnflag", "l_linestatus"],
                    vec![
                        (AggExpr::Sum(E::Col(3)), "sum_qty"),
                        (AggExpr::Sum(E::Col(4)), "sum_base_price"),
                        (AggExpr::Sum(disc_price), "sum_disc_price"),
                        (AggExpr::Avg(E::Col(3)), "avg_qty"),
                        (AggExpr::CountStar, "count_order"),
                    ],
                )
                .order(&[("l_returnflag", false), ("l_linestatus", false)], None)
        }),
        // Q3: shipping priority — two joins, aggregate, top 10.
        ("q3", {
            let c = Q::scan(cat, "customer");
            let seg = c.c("c_mktsegment");
            let c = c.filter(seg.eq(E::lit_str("BUILDING")));
            let o = Q::scan(cat, "orders");
            let od = o.c("o_orderdate");
            let o = o.filter(od.lt(E::lit_i64(19950315)));
            let l = Q::scan(cat, "lineitem");
            let sd = l.c("l_shipdate");
            let l = l.filter(sd.gt(E::lit_i64(19950315)));
            let oc = o.broadcast_join(c, &[("o_custkey", "c_custkey")]);
            let j = l.join(oc, &[("l_orderkey", "o_orderkey")]);
            let revenue = j.c("l_extendedprice").mul(one().sub(j.c("l_discount")));
            j.group(
                &["l_orderkey", "o_orderdate", "o_shippriority"],
                vec![(AggExpr::Sum(revenue), "revenue")],
            )
            .order(&[("revenue", true), ("o_orderdate", false)], Some(10))
        }),
        // Q5: local supplier volume — five-way join.
        ("q5", {
            let r = Q::scan(cat, "region");
            let rn = r.c("r_name");
            let r = r.filter(rn.eq(E::lit_str("ASIA")));
            let n = Q::scan(cat, "nation").broadcast_join(r, &[("n_regionkey", "r_regionkey")]);
            let s = Q::scan(cat, "supplier").broadcast_join(n, &[("s_nationkey", "n_nationkey")]);
            let o = Q::scan(cat, "orders");
            let od = o.c("o_orderdate");
            let o = o.filter(od.between(Datum::I64(19940101), Datum::I64(19941231)));
            let l = Q::scan(cat, "lineitem");
            let lo = l.join(o, &[("l_orderkey", "o_orderkey")]);
            let j = lo.join(s, &[("l_suppkey", "s_suppkey")]);
            let revenue = j.c("l_extendedprice").mul(one().sub(j.c("l_discount")));
            j.group(&["n_name"], vec![(AggExpr::Sum(revenue), "revenue")])
                .order(&[("revenue", true)], None)
        }),
        // Q6: forecasting revenue change — scan-only aggregate.
        ("q6", {
            let l = Q::scan(cat, "lineitem");
            let p = l
                .c("l_shipdate")
                .between(Datum::I64(19940101), Datum::I64(19941231))
                .and(
                    l.c("l_discount")
                        .between(Datum::F64(0.02), Datum::F64(0.06)),
                )
                .and(l.c("l_quantity").lt(E::lit_i64(24)));
            let revenue = l.c("l_extendedprice").mul(l.c("l_discount"));
            l.filter(p)
                .group(&[], vec![(AggExpr::Sum(revenue), "revenue")])
        }),
        // Q10: returned item reporting — top 20 customers.
        ("q10", {
            let l = Q::scan(cat, "lineitem");
            let rf = l.c("l_returnflag");
            let l = l.filter(rf.eq(E::lit_str("R")));
            let o = Q::scan(cat, "orders");
            let od = o.c("o_orderdate");
            let o = o.filter(od.between(Datum::I64(19931001), Datum::I64(19931231)));
            let c = Q::scan(cat, "customer");
            let lo = l.join(o, &[("l_orderkey", "o_orderkey")]);
            let j = lo.broadcast_join(c, &[("o_custkey", "c_custkey")]);
            let revenue = j.c("l_extendedprice").mul(one().sub(j.c("l_discount")));
            j.group(
                &["c_custkey", "c_name"],
                vec![(AggExpr::Sum(revenue), "revenue")],
            )
            .order(&[("revenue", true)], Some(20))
        }),
        // Q12: shipping modes — join + conditional-ish counts.
        ("q12", {
            let l = Q::scan(cat, "lineitem");
            let p = l
                .c("l_shipmode")
                .in_list(vec![Datum::str("MAIL"), Datum::str("SHIP")])
                .and(
                    l.c("l_receiptdate")
                        .between(Datum::I64(19940101), Datum::I64(19941231)),
                );
            let l = l.filter(p);
            let o = Q::scan(cat, "orders");
            let j = l.join(o, &[("l_orderkey", "o_orderkey")]);
            j.group(&["l_shipmode"], vec![(AggExpr::CountStar, "n")])
                .order(&[("l_shipmode", false)], None)
        }),
        // Q14: promotion effect — join with part.
        ("q14", {
            let l = Q::scan(cat, "lineitem");
            let sd = l.c("l_shipdate");
            let l = l.filter(sd.between(Datum::I64(19950901), Datum::I64(19950930)));
            let p = Q::scan(cat, "part");
            let j = l.broadcast_join(p, &[("l_partkey", "p_partkey")]);
            let revenue = j.c("l_extendedprice").mul(one().sub(j.c("l_discount")));
            j.group(&["p_type"], vec![(AggExpr::Sum(revenue), "revenue")])
                .order(&[("revenue", true)], Some(5))
        }),
        // Q18: large volume customers — aggregate, join, top 100.
        ("q18", {
            let l = Q::scan(cat, "lineitem").group(
                &["l_orderkey"],
                vec![(
                    AggExpr::Sum(Q::scan(cat, "lineitem").c("l_quantity")),
                    "sum_qty",
                )],
            );
            let lq = l.c("sum_qty");
            let big = l.filter(lq.gt(E::lit_i64(150)));
            let o = Q::scan(cat, "orders");
            let j = big.join(o, &[("l_orderkey", "o_orderkey")]);
            j.order(&[("sum_qty", true), ("o_totalprice", true)], Some(100))
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_ratioed() {
        let a = generate(400, 4, 7);
        let b = generate(400, 4, 7);
        assert_eq!(
            a.table("lineitem").rows.len(),
            b.table("lineitem").rows.len()
        );
        assert_eq!(a.table("lineitem").rows[0], b.table("lineitem").rows[0]);
        assert!(a.table("orders").rows.len() < a.table("lineitem").rows.len());
        assert!(a.table("customer").rows.len() < a.table("orders").rows.len());
    }

    #[test]
    fn all_queries_run_on_reference() {
        let cat = generate(400, 4, 7);
        let tables = cat.reference_tables();
        for (name, q) in queries(&cat) {
            let rows = crate::plan::execute_reference(&q.plan, &tables);
            assert!(!rows.is_empty() || name == "q18", "{name} returned no rows");
        }
    }

    #[test]
    fn q6_is_single_global_row() {
        let cat = generate(400, 4, 7);
        let q = queries(&cat)
            .into_iter()
            .find(|(n, _)| *n == "q6")
            .unwrap()
            .1;
        let rows = crate::plan::execute_reference(&q.plan, &cat.reference_tables());
        assert_eq!(rows.len(), 1);
    }
}
