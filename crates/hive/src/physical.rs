//! Physical planning shared by both backends: the **stage graph** (one
//! stage per shuffle boundary) and the generic stage processor that
//! executes a stage's operators inside a Tez task.
//!
//! The same stage graph is wired either into one Tez DAG
//! ([`crate::compile_tez`]) or into a chain of MapReduce jobs
//! ([`crate::compile_mr`]) — the operator code is identical, exactly as
//! Hive's operator pipeline was reused when its runtime moved to Tez
//! (paper §5.2: "allows existing applications like Hive or Pig to leverage
//! Tez without significant changes in their core operator pipelines").

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::plan::{row_to_state, state_to_row, AggExpr, AggState, Plan};
use crate::types::{decode_key, decode_row, encode_key, row_bytes, Datum, Row};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use tez_runtime::{
    counter_names, ObjectScope, OutboundEvent, Processor, ProcessorContext, TaskError,
};

/// Counter: rows a map-join build phase had to hash (registry miss).
pub const MAPJOIN_BUILD_ROWS: &str = "MAPJOIN_BUILD_ROWS";

// ---------------------------------------------------------------------------
// Stage graph
// ---------------------------------------------------------------------------

/// Row-level operators applied inside a stage after its kind-specific
/// input handling.
#[derive(Clone, Debug)]
pub enum RowOp {
    /// Drop rows failing the predicate.
    Filter(Expr),
    /// Replace the row with evaluated expressions.
    Project(Vec<Expr>),
    /// Map join: probe a hash table built from a broadcast input (cached in
    /// the shared object registry, paper §4.2).
    MapJoin {
        /// Broadcast input name (producer vertex).
        input: String,
        /// Probe key columns of the streamed row.
        left_keys: Vec<usize>,
        /// Build key columns of the broadcast rows.
        right_keys: Vec<usize>,
        /// Object-registry cache key.
        registry_key: String,
    },
    /// Collect distinct `i64` join-key values and send a pruning event to
    /// the target vertex's input initializer (dynamic partition pruning,
    /// paper §3.5).
    EmitPrune {
        /// Vertex whose data source gets pruned.
        target_vertex: String,
        /// Data source name on that vertex.
        source: String,
        /// Key column of the streamed rows.
        key_col: usize,
        /// `(min, max)` of the pruning column per fact block.
        block_ranges: Vec<(i64, i64)>,
    },
}

/// How a stage receives its data.
#[derive(Clone, Debug)]
pub enum StageLink {
    /// Root scan of a catalog table.
    Table(String),
    /// Scatter-gather edge from another stage.
    Shuffle(usize),
    /// Broadcast edge from another stage (consumed by a
    /// [`RowOp::MapJoin`]).
    Broadcast(usize),
}

/// Kind-specific input handling of a stage.
#[derive(Clone, Debug)]
pub enum StageKind {
    /// Flat rows from table blocks (or materialized temp tables in the MR
    /// backend).
    Map,
    /// Shuffle join: build from the right links, probe the left links.
    Join {
        /// Indices into `links` forming the probe side.
        left: Vec<usize>,
        /// Indices into `links` forming the build side.
        right: Vec<usize>,
    },
    /// Final aggregation over partial states.
    FinalAgg {
        /// Number of group-key fields in the shuffle key.
        group_cols: usize,
        /// The aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Final ordered merge (top-k when `limit` is set, full sort when not).
    FinalOrdered {
        /// Optional row limit.
        limit: Option<usize>,
    },
}

/// Where a stage's rows go.
#[derive(Clone, Debug)]
pub enum StageOut {
    /// Shuffle `(key(cols), row)` toward a join.
    ShuffleRows {
        /// Key columns.
        key_cols: Vec<usize>,
    },
    /// Map-side partial aggregation, then shuffle `(groupkey, state-row)`.
    ShuffleForAgg {
        /// Group columns.
        group: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Map-side top-k, then shuffle `(sortkey, row)` to one partition.
    ShuffleForTopK {
        /// `(column, descending)` sort keys.
        keys: Vec<(usize, bool)>,
        /// Limit.
        limit: usize,
    },
    /// Shuffle `(sortkey, row)` for a full sort.
    ShuffleSort {
        /// `(column, descending)` sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Broadcast rows (map-join small side).
    Broadcast,
    /// Write rows to the query result (or an MR temp table).
    Sink,
}

/// One stage of the physical plan.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Stage id (vertex name `s{id}`).
    pub id: usize,
    /// Inputs.
    pub links: Vec<StageLink>,
    /// Kind-specific input handling.
    pub kind: StageKind,
    /// Operators applied after the kind.
    pub ops: Vec<RowOp>,
    /// Output direction (set by the consuming side during build).
    pub out: StageOut,
    /// Fixed parallelism (None = decided by split calculation).
    pub parallelism: Option<usize>,
    /// Whether this stage's root input waits for a pruning event.
    pub pruned_scan: bool,
}

impl Stage {
    /// Canonical vertex name.
    pub fn vertex_name(&self) -> String {
        format!("s{}", self.id)
    }
}

/// The complete stage graph of one query.
#[derive(Clone, Debug)]
pub struct StagePlan {
    /// Stages, indexed by id.
    pub stages: Vec<Stage>,
}

impl StagePlan {
    /// Stages whose `out` is [`StageOut::Sink`] (query results).
    pub fn sink_stages(&self) -> Vec<usize> {
        self.stages
            .iter()
            .filter(|s| matches!(s.out, StageOut::Sink))
            .map(|s| s.id)
            .collect()
    }

    /// The stage consuming `id` via a shuffle/broadcast link, if any.
    pub fn consumer_of(&self, id: usize) -> Option<usize> {
        self.stages.iter().find_map(|s| {
            s.links
                .iter()
                .any(|l| matches!(l, StageLink::Shuffle(p) | StageLink::Broadcast(p) if *p == id))
                .then_some(s.id)
        })
    }
}

/// Physical planning options.
#[derive(Clone, Debug)]
pub struct PhysicalOpts {
    /// Reducer count for shuffle stages (Tez shrinks it automatically).
    pub reducers: usize,
    /// Allow broadcast (map) joins.
    pub broadcast_joins: bool,
    /// Allow dynamic partition pruning.
    pub dpp: bool,
}

impl Default for PhysicalOpts {
    fn default() -> Self {
        PhysicalOpts {
            reducers: 8,
            broadcast_joins: true,
            dpp: true,
        }
    }
}

/// Build the stage graph for a logical plan.
pub fn build_stages(plan: &Plan, catalog: &Catalog, opts: &PhysicalOpts) -> StagePlan {
    let mut b = Builder {
        catalog,
        opts,
        stages: Vec::new(),
    };
    let roots = b.compile(plan);
    for id in roots {
        b.stages[id].out = StageOut::Sink;
    }
    StagePlan { stages: b.stages }
}

struct Builder<'a> {
    catalog: &'a Catalog,
    opts: &'a PhysicalOpts,
    stages: Vec<Stage>,
}

impl<'a> Builder<'a> {
    fn new_stage(
        &mut self,
        links: Vec<StageLink>,
        kind: StageKind,
        parallelism: Option<usize>,
    ) -> usize {
        let id = self.stages.len();
        self.stages.push(Stage {
            id,
            links,
            kind,
            ops: Vec::new(),
            out: StageOut::Sink, // placeholder; overwritten by consumer
            parallelism,
            pruned_scan: false,
        });
        id
    }

    /// Compile a plan node; returns the stages currently producing the
    /// stream (multiple for unions).
    fn compile(&mut self, plan: &Plan) -> Vec<usize> {
        match plan {
            Plan::Scan {
                table,
                filter,
                project,
            } => {
                let id =
                    self.new_stage(vec![StageLink::Table(table.clone())], StageKind::Map, None);
                if let Some(f) = filter {
                    self.stages[id].ops.push(RowOp::Filter(f.clone()));
                }
                if let Some(cols) = project {
                    self.stages[id]
                        .ops
                        .push(RowOp::Project(cols.iter().map(|&c| Expr::Col(c)).collect()));
                }
                vec![id]
            }
            Plan::Filter { input, predicate } => {
                let ids = self.compile(input);
                for &id in &ids {
                    self.stages[id].ops.push(RowOp::Filter(predicate.clone()));
                }
                ids
            }
            Plan::Project { input, exprs } => {
                let ids = self.compile(input);
                for &id in &ids {
                    self.stages[id].ops.push(RowOp::Project(exprs.clone()));
                }
                ids
            }
            Plan::BroadcastJoin {
                left,
                right,
                left_keys,
                right_keys,
            } if self.opts.broadcast_joins => {
                let lids = self.compile(left);
                let rids = self.compile(right);
                assert_eq!(rids.len(), 1, "broadcast side must be a single stream");
                let rid = rids[0];
                self.stages[rid].out = StageOut::Broadcast;

                // Dynamic partition pruning: probe side is a bare scan of a
                // table clustered by the single join key.
                if self.opts.dpp && left_keys.len() == 1 && lids.len() == 1 {
                    let lid = lids[0];
                    let fact_ok = matches!(self.stages[lid].kind, StageKind::Map)
                        && !self.stages[lid]
                            .ops
                            .iter()
                            .any(|op| matches!(op, RowOp::Project(_)));
                    if fact_ok {
                        if let Some(StageLink::Table(t)) = self.stages[lid].links.first() {
                            let table = t.clone();
                            if self.catalog.cluster_column(&table) == Some(left_keys[0]) {
                                let ranges = self.catalog.block_ranges(&table, left_keys[0]);
                                let target = self.stages[lid].vertex_name();
                                self.stages[lid].pruned_scan = true;
                                // The dim side must be a single task so one
                                // event carries the complete key set.
                                self.stages[rid].parallelism = Some(1);
                                let key_col = right_keys[0];
                                self.stages[rid].ops.push(RowOp::EmitPrune {
                                    target_vertex: target,
                                    source: "scan".into(),
                                    key_col,
                                    block_ranges: ranges,
                                });
                            }
                        }
                    }
                }

                let rname = self.stages[rid].vertex_name();
                for (i, &lid) in lids.iter().enumerate() {
                    self.stages[lid].links.push(StageLink::Broadcast(rid));
                    self.stages[lid].ops.push(RowOp::MapJoin {
                        input: rname.clone(),
                        left_keys: left_keys.clone(),
                        right_keys: right_keys.clone(),
                        registry_key: format!("mapjoin:{rname}:{i}"),
                    });
                }
                lids
            }
            Plan::BroadcastJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                // Broadcast disabled: degrade to a shuffle join.
                let demoted = Plan::HashJoin {
                    left: left.clone(),
                    right: right.clone(),
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                };
                self.compile(&demoted)
            }
            Plan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let lids = self.compile(left);
                let rids = self.compile(right);
                for &id in &lids {
                    self.stages[id].out = StageOut::ShuffleRows {
                        key_cols: left_keys.clone(),
                    };
                }
                for &id in &rids {
                    self.stages[id].out = StageOut::ShuffleRows {
                        key_cols: right_keys.clone(),
                    };
                }
                let mut links = Vec::new();
                let mut lidx = Vec::new();
                let mut ridx = Vec::new();
                for &id in &lids {
                    lidx.push(links.len());
                    links.push(StageLink::Shuffle(id));
                }
                for &id in &rids {
                    ridx.push(links.len());
                    links.push(StageLink::Shuffle(id));
                }
                let id = self.new_stage(
                    links,
                    StageKind::Join {
                        left: lidx,
                        right: ridx,
                    },
                    Some(self.opts.reducers),
                );
                vec![id]
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let ids = self.compile(input);
                for &id in &ids {
                    self.stages[id].out = StageOut::ShuffleForAgg {
                        group: group_by.clone(),
                        aggs: aggs.clone(),
                    };
                }
                let parallelism = if group_by.is_empty() {
                    Some(1) // global aggregate
                } else {
                    Some(self.opts.reducers)
                };
                let id = self.new_stage(
                    ids.iter().map(|&i| StageLink::Shuffle(i)).collect(),
                    StageKind::FinalAgg {
                        group_cols: group_by.len(),
                        aggs: aggs.clone(),
                    },
                    parallelism,
                );
                vec![id]
            }
            Plan::OrderBy { input, keys, limit } => {
                let ids = self.compile(input);
                for &id in &ids {
                    self.stages[id].out = match limit {
                        Some(n) => StageOut::ShuffleForTopK {
                            keys: keys.clone(),
                            limit: *n,
                        },
                        None => StageOut::ShuffleSort { keys: keys.clone() },
                    };
                }
                let id = self.new_stage(
                    ids.iter().map(|&i| StageLink::Shuffle(i)).collect(),
                    StageKind::FinalOrdered { limit: *limit },
                    Some(1),
                );
                vec![id]
            }
            Plan::Union { inputs } => inputs.iter().flat_map(|p| self.compile(p)).collect(),
        }
    }
}

/// Rewrite a plan for the MapReduce backend: broadcast joins become shuffle
/// joins (no broadcast edges or shared registry in classic MR).
pub fn rewrite_for_mr(plan: &Plan) -> Plan {
    match plan {
        Plan::BroadcastJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => Plan::HashJoin {
            left: Arc::new(rewrite_for_mr(left)),
            right: Arc::new(rewrite_for_mr(right)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
        },
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => Plan::HashJoin {
            left: Arc::new(rewrite_for_mr(left)),
            right: Arc::new(rewrite_for_mr(right)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Arc::new(rewrite_for_mr(input)),
            predicate: predicate.clone(),
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Arc::new(rewrite_for_mr(input)),
            exprs: exprs.clone(),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Arc::new(rewrite_for_mr(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        Plan::OrderBy { input, keys, limit } => Plan::OrderBy {
            input: Arc::new(rewrite_for_mr(input)),
            keys: keys.clone(),
            limit: *limit,
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.iter().map(|p| Arc::new(rewrite_for_mr(p))).collect(),
        },
        Plan::Scan { .. } => plan.clone(),
    }
}

// ---------------------------------------------------------------------------
// Stage executor (the processor)
// ---------------------------------------------------------------------------

/// Runtime description of one vertex's work, handed to
/// [`HiveStageProcessor`] by the backend compilers.
#[derive(Clone, Debug)]
pub struct StageExec {
    /// Kind-specific input handling, with resolved input names.
    pub kind: ExecKind,
    /// Row operators.
    pub ops: Vec<RowOp>,
    /// Output handling, one entry per consumer (vertices may feed several
    /// downstream vertices — Pig's multi-output operators, paper §5.3).
    pub outs: Vec<ExecOut>,
}

/// Resolved input handling.
#[derive(Clone, Debug)]
pub enum ExecKind {
    /// Read flat rows from the named inputs.
    MapRows {
        /// Input names (root sources or flat edges).
        inputs: Vec<String>,
    },
    /// Shuffle join.
    Join {
        /// Probe-side input names.
        left: Vec<String>,
        /// Build-side input names.
        right: Vec<String>,
    },
    /// Final aggregation.
    FinalAgg {
        /// Grouped input names.
        inputs: Vec<String>,
        /// Group-key field count.
        group_cols: usize,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Ordered merge with optional limit.
    FinalOrdered {
        /// Grouped input names.
        inputs: Vec<String>,
        /// Optional limit.
        limit: Option<usize>,
    },
    /// Deduplicate grouped inputs (Pig DISTINCT): one row per group.
    FinalDistinct {
        /// Grouped input names.
        inputs: Vec<String>,
    },
    /// Quantile sampler (Pig ORDER BY / skew join, paper §5.3): collects
    /// sampled keys from flat inputs and emits `bounds` range boundaries
    /// as raw keys on its single output.
    Sampler {
        /// Flat inputs carrying `(encoded key, empty)` pairs.
        inputs: Vec<String>,
        /// Number of boundaries to emit (consumer partitions - 1).
        bounds: usize,
    },
}

/// Resolved output handling.
#[derive(Clone, Debug)]
pub enum ExecOut {
    /// `(key(cols), row)` to `out`.
    ShuffleRows {
        /// Output name.
        out: String,
        /// Key columns.
        key_cols: Vec<usize>,
    },
    /// Partial aggregation, then `(groupkey, state)` to `out`.
    ShuffleForAgg {
        /// Output name.
        out: String,
        /// Group columns.
        group: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Local top-k, then `(sortkey, row)` to `out`.
    ShuffleForTopK {
        /// Output name.
        out: String,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
        /// Limit.
        limit: usize,
    },
    /// `(sortkey, row)` to `out`.
    ShuffleSort {
        /// Output name.
        out: String,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Rows (empty key) to `out` — broadcast edges and sinks alike.
    Rows {
        /// Output name.
        out: String,
    },
    /// Every `every`-th row's sort key, as `(encoded key, empty)` pairs —
    /// feeds a [`ExecKind::Sampler`].
    SampleRows {
        /// Output name.
        out: String,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
        /// Sampling period (1 = every row).
        every: usize,
    },
    /// Range-partitioned `(sortkey, row)` shuffle: the output's
    /// partitioner is **reconfigured at runtime** with boundaries computed
    /// by a sampler (the late-binding IPO configuration hook of §3.2).
    RangeShuffle {
        /// Output name.
        out: String,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
        /// Where the boundaries come from.
        bounds: BoundsSource,
    },
}

/// Where runtime range boundaries come from.
#[derive(Clone, Debug)]
pub enum BoundsSource {
    /// A broadcast input carrying `(bound, empty)` pairs (Tez backend).
    Input(String),
    /// A DFS file written by an earlier job (classic MapReduce backend:
    /// "create histograms based on the samples on the client machine",
    /// paper §5.3).
    DfsFile(String),
}

/// Translate a stage's `out` into an exec out aimed at `out_name`.
pub fn resolve_out(out: &StageOut, out_name: &str) -> ExecOut {
    match out {
        StageOut::ShuffleRows { key_cols } => ExecOut::ShuffleRows {
            out: out_name.to_string(),
            key_cols: key_cols.clone(),
        },
        StageOut::ShuffleForAgg { group, aggs } => ExecOut::ShuffleForAgg {
            out: out_name.to_string(),
            group: group.clone(),
            aggs: aggs.clone(),
        },
        StageOut::ShuffleForTopK { keys, limit } => ExecOut::ShuffleForTopK {
            out: out_name.to_string(),
            keys: keys.clone(),
            limit: *limit,
        },
        StageOut::ShuffleSort { keys } => ExecOut::ShuffleSort {
            out: out_name.to_string(),
            keys: keys.clone(),
        },
        StageOut::Broadcast | StageOut::Sink => ExecOut::Rows {
            out: out_name.to_string(),
        },
    }
}

/// The generic Hive stage processor.
pub struct HiveStageProcessor {
    exec: StageExec,
}

impl HiveStageProcessor {
    /// New processor for a stage exec.
    pub fn new(exec: StageExec) -> Self {
        HiveStageProcessor { exec }
    }
}

/// Prepared (stateful) operators for one task run.
enum PreparedOp {
    Filter(Expr),
    Project(Vec<Expr>),
    MapJoin {
        table: Arc<HashMap<Vec<u8>, Vec<Row>>>,
        left_keys: Vec<usize>,
    },
    EmitPrune {
        target_vertex: String,
        source: String,
        key_col: usize,
        block_ranges: Vec<(i64, i64)>,
        seen: HashSet<i64>,
    },
}

fn prepare_ops(
    ops: &[RowOp],
    ctx: &mut ProcessorContext<'_, '_>,
) -> Result<Vec<PreparedOp>, TaskError> {
    let mut prepared = Vec::with_capacity(ops.len());
    for op in ops {
        prepared.push(match op {
            RowOp::Filter(e) => PreparedOp::Filter(e.clone()),
            RowOp::Project(es) => PreparedOp::Project(es.clone()),
            RowOp::MapJoin {
                input,
                left_keys,
                right_keys,
                registry_key,
            } => {
                // The shared object registry avoids rebuilding the hash
                // table for every task in the container (paper §4.2).
                let cached = ctx.env.registry.get(registry_key);
                let table = match cached {
                    Some(any) => {
                        ctx.counters.inc(counter_names::REGISTRY_HITS);
                        any.downcast::<HashMap<Vec<u8>, Vec<Row>>>()
                            .map_err(|_| TaskError::fatal("registry type mismatch"))?
                    }
                    None => {
                        let mut reader = ctx.reader(input)?.into_kv()?;
                        let mut map: HashMap<Vec<u8>, Vec<Row>> = HashMap::new();
                        let mut built = 0u64;
                        while let Some((_, v)) = reader.next() {
                            let row = decode_row(&v)?;
                            if right_keys.iter().any(|&k| row[k].is_null()) {
                                continue;
                            }
                            let key = encode_key(&row, right_keys, &[]);
                            map.entry(key).or_default().push(row);
                            built += 1;
                        }
                        ctx.counters.add(MAPJOIN_BUILD_ROWS, built);
                        let arc = Arc::new(map);
                        ctx.env.registry.put(
                            ObjectScope::Dag,
                            registry_key,
                            arc.clone() as Arc<dyn std::any::Any + Send + Sync>,
                        );
                        arc
                    }
                };
                PreparedOp::MapJoin {
                    table,
                    left_keys: left_keys.clone(),
                }
            }
            RowOp::EmitPrune {
                target_vertex,
                source,
                key_col,
                block_ranges,
            } => PreparedOp::EmitPrune {
                target_vertex: target_vertex.clone(),
                source: source.clone(),
                key_col: *key_col,
                block_ranges: block_ranges.clone(),
                seen: HashSet::new(),
            },
        });
    }
    Ok(prepared)
}

fn apply_ops(ops: &mut [PreparedOp], row: Row, out: &mut Vec<Row>) {
    fn rec(ops: &mut [PreparedOp], row: Row, out: &mut Vec<Row>) {
        let Some((op, rest)) = ops.split_first_mut() else {
            out.push(row);
            return;
        };
        match op {
            PreparedOp::Filter(e) => {
                if e.matches(&row) {
                    rec(rest, row, out);
                }
            }
            PreparedOp::Project(es) => {
                let projected = es.iter().map(|e| e.eval(&row)).collect();
                rec(rest, projected, out);
            }
            PreparedOp::MapJoin { table, left_keys } => {
                if left_keys.iter().any(|&k| row[k].is_null()) {
                    return;
                }
                let key = encode_key(&row, left_keys, &[]);
                if let Some(matches) = table.get(&key) {
                    for m in matches {
                        let mut joined = row.clone();
                        joined.extend(m.iter().cloned());
                        rec(rest, joined, out);
                    }
                }
            }
            PreparedOp::EmitPrune { key_col, seen, .. } => {
                if let Datum::I64(v) = &row[*key_col] {
                    seen.insert(*v);
                }
                rec(rest, row, out);
            }
        }
    }
    rec(ops, row, out);
}

fn finish_ops(ops: Vec<PreparedOp>, ctx: &mut ProcessorContext<'_, '_>) {
    for op in ops {
        if let PreparedOp::EmitPrune {
            target_vertex,
            source,
            block_ranges,
            seen,
            ..
        } = op
        {
            let keep: Vec<usize> = block_ranges
                .iter()
                .enumerate()
                .filter(|(_, &(lo, hi))| seen.iter().any(|&v| v >= lo && v <= hi))
                .map(|(i, _)| i)
                .collect();
            ctx.emit(OutboundEvent::InputInitializer {
                target_vertex,
                source,
                payload: tez_core::prune_event_payload(&keep),
            });
        }
    }
}

/// Output accumulator.
enum OutAcc {
    Direct,
    Agg {
        groups: BTreeMap<Vec<u8>, Vec<AggState>>,
    },
    TopK {
        rows: Vec<(Vec<u8>, Row)>,
    },
    Sample {
        count: usize,
    },
}

impl Processor for HiveStageProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let exec = self.exec.clone();
        let mut ops = prepare_ops(&exec.ops, ctx)?;

        // Gather the stage's input rows according to its kind.
        let mut rows: Vec<Row> = Vec::new();
        match &exec.kind {
            ExecKind::MapRows { inputs } => {
                for name in inputs {
                    let mut reader = ctx.reader(name)?.into_kv()?;
                    while let Some((_, v)) = reader.next() {
                        rows.push(decode_row(&v)?);
                    }
                }
            }
            ExecKind::Join { left, right } => {
                let mut build: HashMap<Vec<u8>, Vec<Row>> = HashMap::new();
                for name in right {
                    let mut reader = ctx.reader(name)?.into_grouped()?;
                    while let Some(g) = reader.next_group() {
                        let entry = build.entry(g.key.to_vec()).or_default();
                        for v in g.values {
                            entry.push(decode_row(&v)?);
                        }
                    }
                }
                for name in left {
                    let mut reader = ctx.reader(name)?.into_grouped()?;
                    while let Some(g) = reader.next_group() {
                        if let Some(matches) = build.get(g.key.as_ref()) {
                            for v in g.values {
                                let lrow = decode_row(&v)?;
                                for m in matches {
                                    let mut joined = lrow.clone();
                                    joined.extend(m.iter().cloned());
                                    rows.push(joined);
                                }
                            }
                        }
                    }
                }
            }
            ExecKind::FinalAgg {
                inputs,
                group_cols,
                aggs,
            } => {
                let mut groups: BTreeMap<Vec<u8>, Vec<AggState>> = BTreeMap::new();
                for name in inputs {
                    let mut reader = ctx.reader(name)?.into_grouped()?;
                    while let Some(g) = reader.next_group() {
                        let entry = groups
                            .entry(g.key.to_vec())
                            .or_insert_with(|| aggs.iter().map(AggExpr::init).collect());
                        for v in g.values {
                            let partial = row_to_state(aggs, &decode_row(&v)?);
                            for (a, (s, p)) in aggs.iter().zip(entry.iter_mut().zip(partial.iter()))
                            {
                                a.merge(s, p);
                            }
                        }
                    }
                }
                if *group_cols == 0 && groups.is_empty() {
                    groups.insert(Vec::new(), aggs.iter().map(AggExpr::init).collect());
                }
                for (key, states) in groups {
                    let mut row = if *group_cols > 0 {
                        decode_key(&key, *group_cols)?
                    } else {
                        Vec::new()
                    };
                    row.extend(aggs.iter().zip(states).map(|(a, s)| a.finish(s)));
                    rows.push(row);
                }
            }
            ExecKind::FinalDistinct { inputs } => {
                let mut seen: std::collections::BTreeSet<Vec<u8>> =
                    std::collections::BTreeSet::new();
                let mut uniq: Vec<Row> = Vec::new();
                for name in inputs {
                    let mut reader = ctx.reader(name)?.into_grouped()?;
                    while let Some(g) = reader.next_group() {
                        if seen.insert(g.key.to_vec()) {
                            uniq.push(decode_row(&g.values[0])?);
                        }
                    }
                }
                rows.extend(uniq);
            }
            ExecKind::Sampler { inputs, bounds } => {
                // Collect sampled keys, pick evenly-spaced quantiles, and
                // emit them as raw boundary keys (paper §5.3: "the samples
                // are collected in a histogram vertex that calculates the
                // histogram").
                let mut keys: Vec<Vec<u8>> = Vec::new();
                for name in inputs {
                    // Samples arrive flat (unordered edges) or grouped
                    // (ordered edges in the MR job chain); accept both.
                    for (k, _) in ctx.reader(name)?.collect_pairs() {
                        keys.push(k.to_vec());
                    }
                }
                keys.sort();
                let outs: Vec<String> = exec
                    .outs
                    .iter()
                    .map(|o| match o {
                        ExecOut::Rows { out } => Ok(out.clone()),
                        other => Err(TaskError::fatal(format!(
                            "sampler needs Rows outputs, got {other:?}"
                        ))),
                    })
                    .collect::<Result<_, _>>()?;
                if !keys.is_empty() {
                    let mut emitted: Vec<Vec<u8>> = Vec::new();
                    for i in 1..=*bounds {
                        let idx = (i * keys.len()) / (bounds + 1);
                        emitted.push(keys[idx.min(keys.len() - 1)].clone());
                    }
                    emitted.dedup();
                    for b in emitted {
                        for out in &outs {
                            ctx.write(out, &b, b"")?;
                        }
                    }
                }
                return Ok(());
            }
            ExecKind::FinalOrdered { inputs, limit } => {
                let mut keyed: Vec<(Vec<u8>, Row)> = Vec::new();
                for name in inputs {
                    let mut reader = ctx.reader(name)?.into_grouped()?;
                    while let Some(g) = reader.next_group() {
                        for v in g.values {
                            keyed.push((g.key.to_vec(), decode_row(&v)?));
                        }
                    }
                }
                keyed.sort_by(|a, b| a.0.cmp(&b.0));
                if let Some(n) = limit {
                    keyed.truncate(*n);
                }
                rows.extend(keyed.into_iter().map(|(_, r)| r));
            }
        }

        // Apply operators.
        let mut processed = Vec::with_capacity(rows.len());
        for row in rows {
            apply_ops(&mut ops, row, &mut processed);
        }
        finish_ops(ops, ctx);

        // Pre-pass: range-partitioned outputs must be reconfigured with
        // their runtime boundaries before the first write (§3.2 IPO
        // configuration).
        for out in &exec.outs {
            if let ExecOut::RangeShuffle { out, bounds, .. } = out {
                let boundary_keys = read_bounds(bounds, ctx)?;
                let payload = tez_shuffle::io::output_payload(
                    &tez_shuffle::Partitioner::Range(boundary_keys),
                    tez_shuffle::Combiner::None,
                );
                ctx.reconfigure_output(out, payload.as_bytes())?;
            }
        }

        // Emit to every output.
        let mut accs: Vec<OutAcc> = exec
            .outs
            .iter()
            .map(|o| match o {
                ExecOut::ShuffleForAgg { .. } => OutAcc::Agg {
                    groups: BTreeMap::new(),
                },
                ExecOut::ShuffleForTopK { .. } => OutAcc::TopK { rows: Vec::new() },
                ExecOut::SampleRows { .. } => OutAcc::Sample { count: 0 },
                _ => OutAcc::Direct,
            })
            .collect();
        for row in processed {
            for (out, acc) in exec.outs.iter().zip(accs.iter_mut()) {
                match (out, acc) {
                    (ExecOut::Rows { out }, _) => {
                        ctx.write(out, b"", &row_bytes(&row))?;
                    }
                    (ExecOut::ShuffleRows { out, key_cols }, _) => {
                        if key_cols.iter().any(|&k| row[k].is_null()) {
                            continue; // inner join: null keys never match
                        }
                        let key = encode_key(&row, key_cols, &[]);
                        ctx.write(out, &key, &row_bytes(&row))?;
                    }
                    (ExecOut::ShuffleForAgg { group, aggs, .. }, OutAcc::Agg { groups }) => {
                        let key = encode_key(&row, group, &[]);
                        let entry = groups
                            .entry(key)
                            .or_insert_with(|| aggs.iter().map(AggExpr::init).collect());
                        for (a, s) in aggs.iter().zip(entry.iter_mut()) {
                            a.update(s, &row);
                        }
                    }
                    (ExecOut::ShuffleForTopK { keys, .. }, OutAcc::TopK { rows }) => {
                        rows.push((encode_key(&row, &cols(keys), &descs(keys)), row.clone()));
                    }
                    (ExecOut::ShuffleSort { out, keys }, _)
                    | (ExecOut::RangeShuffle { out, keys, .. }, _) => {
                        let key = encode_key(&row, &cols(keys), &descs(keys));
                        ctx.write(out, &key, &row_bytes(&row))?;
                    }
                    (ExecOut::SampleRows { out, keys, every }, OutAcc::Sample { count }) => {
                        if *count % every.max(&1) == 0 {
                            let key = encode_key(&row, &cols(keys), &descs(keys));
                            ctx.write(out, &key, b"")?;
                        }
                        *count += 1;
                    }
                    _ => unreachable!("accumulator matches out kind"),
                }
            }
        }
        for (out, acc) in exec.outs.iter().zip(accs) {
            match (out, acc) {
                (ExecOut::ShuffleForAgg { out, .. }, OutAcc::Agg { groups }) => {
                    for (key, states) in groups {
                        ctx.write(out, &key, &row_bytes(&state_to_row(&states)))?;
                    }
                }
                (ExecOut::ShuffleForTopK { out, limit, .. }, OutAcc::TopK { mut rows }) => {
                    rows.sort_by(|a, b| a.0.cmp(&b.0));
                    rows.truncate(*limit);
                    for (key, row) in rows {
                        ctx.write(out, &key, &row_bytes(&row))?;
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Read range boundaries from their source.
fn read_bounds(
    bounds: &BoundsSource,
    ctx: &mut ProcessorContext<'_, '_>,
) -> Result<Vec<Vec<u8>>, TaskError> {
    let mut keys: Vec<Vec<u8>> = Vec::new();
    match bounds {
        BoundsSource::Input(name) => {
            let mut reader = ctx.reader(name)?.into_kv()?;
            while let Some((k, _)) = reader.next() {
                keys.push(k.to_vec());
            }
        }
        BoundsSource::DfsFile(path) => {
            let blocks = ctx
                .env
                .dfs
                .list_blocks(path)
                .ok_or_else(|| TaskError::failed(format!("bounds file {path:?} not found")))?;
            for b in blocks {
                if let Some(data) = ctx.env.dfs.read_block(path, b.index) {
                    let mut c = tez_shuffle::KvCursor::new(data);
                    while let Some((k, _)) = c.next() {
                        keys.push(k.to_vec());
                    }
                }
            }
        }
    }
    keys.sort();
    keys.dedup();
    Ok(keys)
}

fn cols(keys: &[(usize, bool)]) -> Vec<usize> {
    keys.iter().map(|&(c, _)| c).collect()
}

fn descs(keys: &[(usize, bool)]) -> Vec<bool> {
    keys.iter().map(|&(_, d)| d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::types::{ColType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![("k", ColType::I64), ("v", ColType::I64)]),
            (0..10)
                .map(|i| vec![Datum::I64(i % 3), Datum::I64(i)])
                .collect(),
            2,
            None,
        );
        c.add_table(
            "d",
            Schema::new(vec![("k", ColType::I64)]),
            vec![vec![Datum::I64(0)], vec![Datum::I64(1)]],
            1,
            None,
        );
        c
    }

    #[test]
    fn scan_agg_produces_two_stages() {
        let plan = Plan::scan("t").aggregate(vec![0], vec![AggExpr::CountStar]);
        let sp = build_stages(&plan, &catalog(), &PhysicalOpts::default());
        assert_eq!(sp.stages.len(), 2);
        assert!(matches!(sp.stages[0].kind, StageKind::Map));
        assert!(matches!(sp.stages[0].out, StageOut::ShuffleForAgg { .. }));
        assert!(matches!(sp.stages[1].kind, StageKind::FinalAgg { .. }));
        assert_eq!(sp.sink_stages(), vec![1]);
        assert_eq!(sp.consumer_of(0), Some(1));
    }

    #[test]
    fn hash_join_wires_left_right() {
        let plan = Plan::scan("t").hash_join(Plan::scan("d"), vec![0], vec![0]);
        let sp = build_stages(&plan, &catalog(), &PhysicalOpts::default());
        assert_eq!(sp.stages.len(), 3);
        match &sp.stages[2].kind {
            StageKind::Join { left, right } => {
                assert_eq!(left.len(), 1);
                assert_eq!(right.len(), 1);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn broadcast_join_fuses_into_probe_stage() {
        let plan = Plan::scan("t").broadcast_join(Plan::scan("d"), vec![0], vec![0]);
        let sp = build_stages(&plan, &catalog(), &PhysicalOpts::default());
        // Only two stages: the probe map (with MapJoin op) and the dim.
        assert_eq!(sp.stages.len(), 2);
        assert!(sp.stages[0]
            .ops
            .iter()
            .any(|op| matches!(op, RowOp::MapJoin { .. })));
        assert!(matches!(sp.stages[1].out, StageOut::Broadcast));
        assert!(matches!(sp.stages[0].out, StageOut::Sink));
    }

    #[test]
    fn broadcast_disabled_degrades_to_shuffle_join() {
        let plan = Plan::scan("t").broadcast_join(Plan::scan("d"), vec![0], vec![0]);
        let opts = PhysicalOpts {
            broadcast_joins: false,
            ..Default::default()
        };
        let sp = build_stages(&plan, &catalog(), &opts);
        assert_eq!(sp.stages.len(), 3);
        assert!(matches!(sp.stages[2].kind, StageKind::Join { .. }));
    }

    #[test]
    fn dpp_marks_clustered_fact_scan() {
        let mut c = catalog();
        c.add_table(
            "fact",
            Schema::new(vec![("date", ColType::I64), ("x", ColType::I64)]),
            (0..20)
                .map(|i| vec![Datum::I64(i / 5), Datum::I64(i)])
                .collect(),
            4,
            Some(0),
        );
        let plan = Plan::scan("fact").broadcast_join(Plan::scan("d"), vec![0], vec![0]);
        let sp = build_stages(&plan, &c, &PhysicalOpts::default());
        assert!(sp.stages[0].pruned_scan);
        assert_eq!(sp.stages[1].parallelism, Some(1));
        assert!(sp.stages[1]
            .ops
            .iter()
            .any(|op| matches!(op, RowOp::EmitPrune { .. })));
    }

    #[test]
    fn mr_rewrite_removes_broadcast() {
        let plan = Plan::scan("t")
            .broadcast_join(Plan::scan("d"), vec![0], vec![0])
            .aggregate(vec![0], vec![AggExpr::CountStar]);
        let rewritten = rewrite_for_mr(&plan);
        fn has_broadcast(p: &Plan) -> bool {
            match p {
                Plan::BroadcastJoin { .. } => true,
                Plan::HashJoin { left, right, .. } => has_broadcast(left) || has_broadcast(right),
                Plan::Aggregate { input, .. }
                | Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::OrderBy { input, .. } => has_broadcast(input),
                Plan::Union { inputs } => inputs.iter().any(|p| has_broadcast(p)),
                Plan::Scan { .. } => false,
            }
        }
        assert!(!has_broadcast(&rewritten));
    }

    #[test]
    fn union_under_aggregate_fans_in() {
        let plan = Plan::Union {
            inputs: vec![Arc::new(Plan::scan("t")), Arc::new(Plan::scan("t"))],
        }
        .aggregate(vec![0], vec![AggExpr::CountStar]);
        let sp = build_stages(&plan, &catalog(), &PhysicalOpts::default());
        assert_eq!(sp.stages.len(), 3);
        assert_eq!(sp.stages[2].links.len(), 2);
    }

    #[test]
    fn order_by_limit_is_topk() {
        let plan = Plan::scan("t").order_by(vec![(1, true)], Some(5));
        let sp = build_stages(&plan, &catalog(), &PhysicalOpts::default());
        assert!(matches!(
            sp.stages[0].out,
            StageOut::ShuffleForTopK { limit: 5, .. }
        ));
        assert_eq!(sp.stages[1].parallelism, Some(1));
    }
}
