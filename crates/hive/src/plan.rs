//! Logical query plans and the single-process reference executor.
//!
//! The reference executor defines the semantics both distributed backends
//! must reproduce; integration tests compare all three.

use crate::expr::Expr;
use crate::types::{Datum, Row};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregate functions.
#[derive(Clone, Debug)]
pub enum AggExpr {
    /// `COUNT(*)`
    CountStar,
    /// `SUM(e)`
    Sum(Expr),
    /// `MIN(e)`
    Min(Expr),
    /// `MAX(e)`
    Max(Expr),
    /// `AVG(e)`
    Avg(Expr),
}

/// A logical plan node.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Table scan with pushed-down filter and projection.
    Scan {
        /// Catalog table name.
        table: String,
        /// Pushed-down predicate.
        filter: Option<Expr>,
        /// Pushed-down projection (column indices), `None` = all.
        project: Option<Vec<usize>>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Arc<Plan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Projection (arbitrary expressions).
    Project {
        /// Input plan.
        input: Arc<Plan>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// Inner equi-join via shuffle on the keys.
    HashJoin {
        /// Left (probe) input.
        left: Arc<Plan>,
        /// Right (build) input.
        right: Arc<Plan>,
        /// Left key column indices.
        left_keys: Vec<usize>,
        /// Right key column indices.
        right_keys: Vec<usize>,
    },
    /// Inner equi-join broadcasting the (small) right side to every task of
    /// the left — Hive's map join, cached in the shared object registry.
    BroadcastJoin {
        /// Big (streamed) input.
        left: Arc<Plan>,
        /// Small (broadcast) input.
        right: Arc<Plan>,
        /// Left key column indices.
        left_keys: Vec<usize>,
        /// Right key column indices.
        right_keys: Vec<usize>,
    },
    /// Group-by aggregation. Output columns: group keys then aggregates.
    Aggregate {
        /// Input plan.
        input: Arc<Plan>,
        /// Grouping columns (may be empty: global aggregate).
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Sort with optional limit (top-k when limited).
    OrderBy {
        /// Input plan.
        input: Arc<Plan>,
        /// `(column, descending)` sort keys.
        keys: Vec<(usize, bool)>,
        /// Optional row limit.
        limit: Option<usize>,
    },
    /// Concatenation of same-schema inputs.
    Union {
        /// Inputs.
        inputs: Vec<Arc<Plan>>,
    },
}

impl Plan {
    /// Scan helper.
    pub fn scan(table: &str) -> Plan {
        Plan::Scan {
            table: table.to_string(),
            filter: None,
            project: None,
        }
    }

    /// Scan with filter.
    pub fn scan_where(table: &str, filter: Expr) -> Plan {
        Plan::Scan {
            table: table.to_string(),
            filter: Some(filter),
            project: None,
        }
    }

    /// Filter helper.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Arc::new(self),
            predicate,
        }
    }

    /// Project helper.
    pub fn project(self, exprs: Vec<Expr>) -> Plan {
        Plan::Project {
            input: Arc::new(self),
            exprs,
        }
    }

    /// Shuffle join helper.
    pub fn hash_join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        Plan::HashJoin {
            left: Arc::new(self),
            right: Arc::new(right),
            left_keys,
            right_keys,
        }
    }

    /// Broadcast join helper.
    pub fn broadcast_join(
        self,
        right: Plan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
    ) -> Plan {
        Plan::BroadcastJoin {
            left: Arc::new(self),
            right: Arc::new(right),
            left_keys,
            right_keys,
        }
    }

    /// Aggregate helper.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggregate {
            input: Arc::new(self),
            group_by,
            aggs,
        }
    }

    /// Order-by helper.
    pub fn order_by(self, keys: Vec<(usize, bool)>, limit: Option<usize>) -> Plan {
        Plan::OrderBy {
            input: Arc::new(self),
            keys,
            limit,
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation state (shared with the distributed backends)
// ---------------------------------------------------------------------------

/// Running state of one aggregate.
#[derive(Clone, Debug, PartialEq)]
pub enum AggState {
    /// COUNT accumulator.
    Count(i64),
    /// SUM accumulator (None until a non-null value arrives).
    Sum(Option<Datum>),
    /// MIN accumulator.
    Min(Option<Datum>),
    /// MAX accumulator.
    Max(Option<Datum>),
    /// AVG accumulator: (sum, count).
    Avg(f64, i64),
}

impl AggExpr {
    /// Fresh accumulator.
    pub fn init(&self) -> AggState {
        match self {
            AggExpr::CountStar => AggState::Count(0),
            AggExpr::Sum(_) => AggState::Sum(None),
            AggExpr::Min(_) => AggState::Min(None),
            AggExpr::Max(_) => AggState::Max(None),
            AggExpr::Avg(_) => AggState::Avg(0.0, 0),
        }
    }

    /// Fold one row in.
    pub fn update(&self, state: &mut AggState, row: &Row) {
        match (self, state) {
            (AggExpr::CountStar, AggState::Count(c)) => *c += 1,
            (AggExpr::Sum(e), AggState::Sum(acc)) => {
                let v = e.eval(row);
                if !v.is_null() {
                    *acc = Some(match acc.take() {
                        None => v,
                        Some(Datum::I64(a)) if matches!(v, Datum::I64(_)) => {
                            Datum::I64(a + v.as_i64())
                        }
                        Some(a) => Datum::F64(a.as_f64() + v.as_f64()),
                    });
                }
            }
            (AggExpr::Min(e), AggState::Min(acc)) => {
                let v = e.eval(row);
                if !v.is_null() && acc.as_ref().is_none_or(|a| v.cmp_sql(a) == Ordering::Less) {
                    *acc = Some(v);
                }
            }
            (AggExpr::Max(e), AggState::Max(acc)) => {
                let v = e.eval(row);
                if !v.is_null()
                    && acc
                        .as_ref()
                        .is_none_or(|a| v.cmp_sql(a) == Ordering::Greater)
                {
                    *acc = Some(v);
                }
            }
            (AggExpr::Avg(e), AggState::Avg(s, c)) => {
                let v = e.eval(row);
                if !v.is_null() {
                    *s += v.as_f64();
                    *c += 1;
                }
            }
            _ => panic!("aggregate/state mismatch"),
        }
    }

    /// Merge a partial state (map-side combine) into an accumulator.
    pub fn merge(&self, state: &mut AggState, other: &AggState) {
        match (state, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => {
                if let Some(bv) = b {
                    *a = Some(match a.take() {
                        None => bv.clone(),
                        Some(Datum::I64(x)) if matches!(bv, Datum::I64(_)) => {
                            Datum::I64(x + bv.as_i64())
                        }
                        Some(x) => Datum::F64(x.as_f64() + bv.as_f64()),
                    });
                }
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|x| bv.cmp_sql(x) == Ordering::Less) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref()
                        .is_none_or(|x| bv.cmp_sql(x) == Ordering::Greater)
                    {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg(s, c), AggState::Avg(s2, c2)) => {
                *s += s2;
                *c += c2;
            }
            _ => panic!("aggregate/state mismatch in merge"),
        }
    }

    /// Finish into an output datum.
    pub fn finish(&self, state: AggState) -> Datum {
        match state {
            AggState::Count(c) => Datum::I64(c),
            AggState::Sum(v) | AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Datum::Null),
            AggState::Avg(_, 0) => Datum::Null,
            AggState::Avg(s, c) => Datum::F64(s / c as f64),
        }
    }
}

/// Encode aggregate state as a row (for map-side partial shuffles).
pub fn state_to_row(states: &[AggState]) -> Row {
    states
        .iter()
        .flat_map(|s| match s {
            AggState::Count(c) => vec![Datum::I64(*c)],
            AggState::Sum(v) | AggState::Min(v) | AggState::Max(v) => {
                vec![v.clone().unwrap_or(Datum::Null)]
            }
            AggState::Avg(s, c) => vec![Datum::F64(*s), Datum::I64(*c)],
        })
        .collect()
}

/// Decode aggregate state from a row (inverse of [`state_to_row`]).
pub fn row_to_state(aggs: &[AggExpr], row: &Row) -> Vec<AggState> {
    let mut pos = 0;
    aggs.iter()
        .map(|a| {
            let s = match a {
                AggExpr::CountStar => AggState::Count(row[pos].as_i64()),
                AggExpr::Sum(_) => AggState::Sum(nullable(&row[pos])),
                AggExpr::Min(_) => AggState::Min(nullable(&row[pos])),
                AggExpr::Max(_) => AggState::Max(nullable(&row[pos])),
                AggExpr::Avg(_) => {
                    let s = AggState::Avg(row[pos].as_f64(), row[pos + 1].as_i64());
                    pos += 1;
                    s
                }
            };
            pos += 1;
            s
        })
        .collect()
}

fn nullable(d: &Datum) -> Option<Datum> {
    if d.is_null() {
        None
    } else {
        Some(d.clone())
    }
}

/// Number of row columns one aggregate's state occupies.
pub fn state_width(aggs: &[AggExpr]) -> usize {
    aggs.iter()
        .map(|a| if matches!(a, AggExpr::Avg(_)) { 2 } else { 1 })
        .sum()
}

// ---------------------------------------------------------------------------
// Reference executor
// ---------------------------------------------------------------------------

/// Execute a plan in memory over the given tables. Defines the semantics
/// the distributed backends are tested against.
pub fn execute_reference(plan: &Plan, tables: &HashMap<String, Vec<Row>>) -> Vec<Row> {
    match plan {
        Plan::Scan {
            table,
            filter,
            project,
        } => {
            let rows = tables
                .get(table)
                .unwrap_or_else(|| panic!("unknown table {table:?}"));
            rows.iter()
                .filter(|r| filter.as_ref().is_none_or(|f| f.matches(r)))
                .map(|r| match project {
                    Some(cols) => cols.iter().map(|&c| r[c].clone()).collect(),
                    None => r.clone(),
                })
                .collect()
        }
        Plan::Filter { input, predicate } => execute_reference(input, tables)
            .into_iter()
            .filter(|r| predicate.matches(r))
            .collect(),
        Plan::Project { input, exprs } => execute_reference(input, tables)
            .into_iter()
            .map(|r| exprs.iter().map(|e| e.eval(&r)).collect())
            .collect(),
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        }
        | Plan::BroadcastJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let lrows = execute_reference(left, tables);
            let rrows = execute_reference(right, tables);
            let mut build: HashMap<Vec<u8>, Vec<&Row>> = HashMap::new();
            for r in &rrows {
                if right_keys.iter().any(|&k| r[k].is_null()) {
                    continue;
                }
                build
                    .entry(crate::types::encode_key(r, right_keys, &[]))
                    .or_default()
                    .push(r);
            }
            let mut out = Vec::new();
            for l in &lrows {
                if left_keys.iter().any(|&k| l[k].is_null()) {
                    continue;
                }
                let key = crate::types::encode_key(l, left_keys, &[]);
                if let Some(matches) = build.get(&key) {
                    for r in matches {
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        out.push(row);
                    }
                }
            }
            out
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = execute_reference(input, tables);
            let mut groups: Vec<(Vec<u8>, Row, Vec<AggState>)> = Vec::new();
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for r in rows {
                let key = crate::types::encode_key(&r, group_by, &[]);
                let idx = *index.entry(key.clone()).or_insert_with(|| {
                    let keys: Row = group_by.iter().map(|&c| r[c].clone()).collect();
                    groups.push((key.clone(), keys, aggs.iter().map(AggExpr::init).collect()));
                    groups.len() - 1
                });
                for (a, s) in aggs.iter().zip(groups[idx].2.iter_mut()) {
                    a.update(s, &r);
                }
            }
            if group_by.is_empty() && groups.is_empty() {
                // Global aggregate over zero rows still yields one row.
                groups.push((
                    Vec::new(),
                    Vec::new(),
                    aggs.iter().map(AggExpr::init).collect(),
                ));
            }
            groups.sort_by(|a, b| a.0.cmp(&b.0));
            groups
                .into_iter()
                .map(|(_, mut keys, states)| {
                    keys.extend(aggs.iter().zip(states).map(|(a, s)| a.finish(s)));
                    keys
                })
                .collect()
        }
        Plan::OrderBy { input, keys, limit } => {
            let mut rows = execute_reference(input, tables);
            rows.sort_by(|a, b| compare_rows(a, b, keys));
            if let Some(n) = limit {
                rows.truncate(*n);
            }
            rows
        }
        Plan::Union { inputs } => inputs
            .iter()
            .flat_map(|p| execute_reference(p, tables))
            .collect(),
    }
}

/// Row comparison by `(column, descending)` keys.
pub fn compare_rows(a: &Row, b: &Row, keys: &[(usize, bool)]) -> Ordering {
    for &(c, desc) in keys {
        let ord = a[c].cmp_sql(&b[c]);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables() -> HashMap<String, Vec<Row>> {
        let mut t = HashMap::new();
        t.insert(
            "orders".to_string(),
            vec![
                vec![Datum::I64(1), Datum::I64(100), Datum::str("A")],
                vec![Datum::I64(2), Datum::I64(200), Datum::str("B")],
                vec![Datum::I64(3), Datum::I64(50), Datum::str("A")],
                vec![Datum::I64(4), Datum::Null, Datum::str("C")],
            ],
        );
        t.insert(
            "customers".to_string(),
            vec![
                vec![Datum::str("A"), Datum::str("alice")],
                vec![Datum::str("B"), Datum::str("bob")],
            ],
        );
        t
    }

    #[test]
    fn scan_filter_project() {
        let p = Plan::scan_where("orders", Expr::col(1).ge(Expr::lit_i64(100)))
            .project(vec![Expr::col(0)]);
        let rows = execute_reference(&p, &tables());
        assert_eq!(rows, vec![vec![Datum::I64(1)], vec![Datum::I64(2)]]);
    }

    #[test]
    fn join_drops_null_keys_and_unmatched() {
        let p = Plan::scan("orders").hash_join(Plan::scan("customers"), vec![2], vec![0]);
        let rows = execute_reference(&p, &tables());
        // Orders 1,2,3 match; order 4 ("C") has no customer.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].len(), 5);
    }

    #[test]
    fn broadcast_join_equals_hash_join() {
        let h = Plan::scan("orders").hash_join(Plan::scan("customers"), vec![2], vec![0]);
        let b = Plan::scan("orders").broadcast_join(Plan::scan("customers"), vec![2], vec![0]);
        let mut rh = execute_reference(&h, &tables());
        let mut rb = execute_reference(&b, &tables());
        rh.sort_by(|a, b| compare_rows(a, b, &[(0, false)]));
        rb.sort_by(|a, b| compare_rows(a, b, &[(0, false)]));
        assert_eq!(rh, rb);
    }

    #[test]
    fn aggregate_with_groups() {
        let p = Plan::scan("orders").aggregate(
            vec![2],
            vec![
                AggExpr::CountStar,
                AggExpr::Sum(Expr::col(1)),
                AggExpr::Avg(Expr::col(1)),
            ],
        );
        let rows = execute_reference(&p, &tables());
        assert_eq!(rows.len(), 3);
        // Group "A": 2 rows, sum 150, avg 75.
        let a = rows.iter().find(|r| r[0] == Datum::str("A")).unwrap();
        assert_eq!(a[1], Datum::I64(2));
        assert_eq!(a[2], Datum::I64(150));
        assert_eq!(a[3], Datum::F64(75.0));
        // Group "C": sum over only NULL is NULL, count is 1.
        let c = rows.iter().find(|r| r[0] == Datum::str("C")).unwrap();
        assert_eq!(c[1], Datum::I64(1));
        assert!(c[2].is_null());
        assert!(c[3].is_null());
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let p = Plan::scan_where("orders", Expr::lit_i64(0))
            .aggregate(vec![], vec![AggExpr::CountStar, AggExpr::Sum(Expr::col(1))]);
        let rows = execute_reference(&p, &tables());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Datum::I64(0));
        assert!(rows[0][1].is_null());
    }

    #[test]
    fn order_by_desc_with_limit() {
        let p = Plan::scan("orders").order_by(vec![(1, true)], Some(2));
        let rows = execute_reference(&p, &tables());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Datum::I64(200));
        assert_eq!(rows[1][1], Datum::I64(100));
    }

    #[test]
    fn union_concatenates() {
        let p = Plan::Union {
            inputs: vec![
                Arc::new(Plan::scan("customers")),
                Arc::new(Plan::scan("customers")),
            ],
        };
        assert_eq!(execute_reference(&p, &tables()).len(), 4);
    }

    #[test]
    fn agg_state_row_roundtrip() {
        let aggs = vec![
            AggExpr::CountStar,
            AggExpr::Sum(Expr::col(0)),
            AggExpr::Avg(Expr::col(0)),
            AggExpr::Min(Expr::col(0)),
        ];
        let mut states: Vec<AggState> = aggs.iter().map(AggExpr::init).collect();
        let row: Row = vec![Datum::I64(5)];
        for (a, s) in aggs.iter().zip(states.iter_mut()) {
            a.update(s, &row);
            a.update(s, &vec![Datum::I64(3)]);
        }
        let encoded = state_to_row(&states);
        assert_eq!(encoded.len(), state_width(&aggs));
        let decoded = row_to_state(&aggs, &encoded);
        assert_eq!(decoded, states);
    }

    #[test]
    fn agg_merge_equals_update_all() {
        let agg = AggExpr::Sum(Expr::col(0));
        let rows: Vec<Row> = (1..=10).map(|i| vec![Datum::I64(i)]).collect();
        let mut all = agg.init();
        for r in &rows {
            agg.update(&mut all, r);
        }
        let mut a = agg.init();
        let mut b = agg.init();
        for r in &rows[..5] {
            agg.update(&mut a, r);
        }
        for r in &rows[5..] {
            agg.update(&mut b, r);
        }
        agg.merge(&mut a, &b);
        assert_eq!(agg.finish(a), agg.finish(all));
    }
}
