//! TPC-DS-derived star schema, data generator, and query suite (paper
//! §6.1: the Hive 0.14 comparison of Figure 8 runs a TPC-DS derived
//! workload at 30 TB scale).
//!
//! The fact table is **clustered by sold-date**, so the dimension-first
//! broadcast joins enable Hive's dynamic partition pruning (§3.5) on the
//! Tez backend.

use crate::catalog::Catalog;
use crate::plan::AggExpr;
use crate::query::Q;
use crate::types::{ColType, Datum, Row, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CATEGORIES: &[&str] = &["Books", "Electronics", "Home", "Music", "Shoes", "Sports"];
const STATES: &[&str] = &["CA", "NY", "TX", "WA", "IL"];

/// Generate a TPC-DS-derived catalog. `fact_rows` sets the store_sales
/// size; `blocks` its HDFS block count (pruning granularity).
pub fn generate(fact_rows: usize, blocks: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd5);
    let mut cat = Catalog::new();

    // Three years of dates at 3 sample days per month: dimensions must
    // stay small relative to the fact table, since the declared byte
    // scale multiplies every table uniformly.
    let mut dates: Vec<Row> = Vec::new();
    let mut sk = 0i64;
    for year in 1999..=2001 {
        for moy in 1..=12 {
            for dom in 1..=3 {
                dates.push(vec![
                    Datum::I64(sk),
                    Datum::I64(year),
                    Datum::I64(moy),
                    Datum::I64(dom % 7),
                ]);
                sk += 1;
            }
        }
    }
    let num_dates = dates.len();
    cat.add_table(
        "date_dim",
        Schema::new(vec![
            ("d_date_sk", ColType::I64),
            ("d_year", ColType::I64),
            ("d_moy", ColType::I64),
            ("d_dow", ColType::I64),
        ]),
        dates,
        1,
        None,
    );

    let num_items = (fact_rows / 50).clamp(10, 2000);
    cat.add_table(
        "item",
        Schema::new(vec![
            ("i_item_sk", ColType::I64),
            ("i_brand_id", ColType::I64),
            ("i_category", ColType::Str),
            ("i_manager_id", ColType::I64),
            ("i_current_price", ColType::F64),
        ]),
        (0..num_items)
            .map(|i| {
                vec![
                    Datum::I64(i as i64),
                    Datum::I64(rng.random_range(1..=100)),
                    Datum::str(CATEGORIES[rng.random_range(0..CATEGORIES.len())]),
                    Datum::I64(rng.random_range(1..=40)),
                    Datum::F64(rng.random_range(0.5..300.0)),
                ]
            })
            .collect(),
        1,
        None,
    );

    let num_stores = 12;
    cat.add_table(
        "store",
        Schema::new(vec![
            ("s_store_sk", ColType::I64),
            ("s_store_name", ColType::Str),
            ("s_state", ColType::Str),
        ]),
        (0..num_stores)
            .map(|i| {
                vec![
                    Datum::I64(i as i64),
                    Datum::str(format!("store{i:02}")),
                    Datum::str(STATES[rng.random_range(0..STATES.len())]),
                ]
            })
            .collect(),
        1,
        None,
    );

    // Fact table clustered by sold-date (the DPP partition column).
    let sales: Vec<Row> = (0..fact_rows.max(100))
        .map(|_| {
            let qty = rng.random_range(1..=20) as i64;
            let price = rng.random_range(1.0..150.0);
            vec![
                Datum::I64(rng.random_range(0..num_dates) as i64),
                Datum::I64(rng.random_range(0..num_items) as i64),
                Datum::I64(rng.random_range(0..num_stores) as i64),
                Datum::I64(qty),
                Datum::F64(price),
                Datum::F64(price * qty as f64),
                Datum::F64(price * qty as f64 * rng.random_range(-0.2..0.4)),
            ]
        })
        .collect();
    cat.add_table(
        "store_sales",
        Schema::new(vec![
            ("ss_sold_date_sk", ColType::I64),
            ("ss_item_sk", ColType::I64),
            ("ss_store_sk", ColType::I64),
            ("ss_quantity", ColType::I64),
            ("ss_sales_price", ColType::F64),
            ("ss_ext_sales_price", ColType::F64),
            ("ss_net_profit", ColType::F64),
        ]),
        sales,
        blocks,
        Some(0),
    );
    // Dimensions are absolutely small regardless of warehouse scale.
    for dim in ["date_dim", "item", "store"] {
        cat.set_scale_override(dim, 1.0);
    }
    cat
}

/// Helper: fact scan ⋈ filtered date_dim (DPP-eligible broadcast join).
fn sales_in(cat: &Catalog, year: i64, moy: Option<i64>) -> Q {
    use crate::expr::Expr as E;
    let d = Q::scan(cat, "date_dim");
    let mut p = d.c("d_year").eq(E::lit_i64(year));
    if let Some(m) = moy {
        p = p.and(d.c("d_moy").eq(E::lit_i64(m)));
    }
    let d = d.filter(p);
    Q::scan(cat, "store_sales").broadcast_join(d, &[("ss_sold_date_sk", "d_date_sk")])
}

/// The derived query suite: `(name, builder)` pairs.
pub fn queries(cat: &Catalog) -> Vec<(&'static str, Q)> {
    vec![
        // Q3: brand revenue for one month.
        ("q3", {
            let s = sales_in(cat, 2000, Some(11));
            let i = Q::scan(cat, "item");
            let mg = i.c("i_manager_id");
            let i = i.filter(mg.between(Datum::I64(1), Datum::I64(10)));
            let j = s.broadcast_join(i, &[("ss_item_sk", "i_item_sk")]);
            let rev = j.c("ss_ext_sales_price");
            j.group(
                &["d_year", "i_brand_id"],
                vec![(AggExpr::Sum(rev), "sum_agg")],
            )
            .order(&[("sum_agg", true), ("i_brand_id", false)], Some(100))
        }),
        // Q19: brand revenue by manager for one month, ordered by profit.
        ("q19", {
            let s = sales_in(cat, 1999, Some(2));
            let i = Q::scan(cat, "item");
            let mg = i.c("i_manager_id");
            let i = i.filter(mg.between(Datum::I64(1), Datum::I64(20)));
            let j = s.broadcast_join(i, &[("ss_item_sk", "i_item_sk")]);
            let rev = j.c("ss_ext_sales_price");
            j.group(
                &["i_brand_id", "i_manager_id"],
                vec![(AggExpr::Sum(rev), "ext_price")],
            )
            .order(&[("ext_price", true)], Some(100))
        }),
        // Q27: state-level quantity/price averages for one year.
        ("q27", {
            let s = sales_in(cat, 2001, None);
            let st = Q::scan(cat, "store");
            let j = s.broadcast_join(st, &[("ss_store_sk", "s_store_sk")]);
            let q = j.c("ss_quantity");
            let p = j.c("ss_sales_price");
            j.group(
                &["s_state"],
                vec![
                    (AggExpr::Avg(q), "avg_qty"),
                    (AggExpr::Avg(p), "avg_price"),
                    (AggExpr::CountStar, "cnt"),
                ],
            )
            .order(&[("s_state", false)], Some(100))
        }),
        // Q42: category revenue for one month.
        ("q42", {
            let s = sales_in(cat, 2000, Some(12));
            let i = Q::scan(cat, "item");
            let j = s.broadcast_join(i, &[("ss_item_sk", "i_item_sk")]);
            let rev = j.c("ss_ext_sales_price");
            j.group(
                &["d_year", "i_category"],
                vec![(AggExpr::Sum(rev), "sum_sales")],
            )
            .order(&[("sum_sales", true)], Some(100))
        }),
        // Q52: brand revenue for one month (ordered by brand).
        ("q52", {
            let s = sales_in(cat, 2000, Some(11));
            let i = Q::scan(cat, "item");
            let j = s.broadcast_join(i, &[("ss_item_sk", "i_item_sk")]);
            let rev = j.c("ss_ext_sales_price");
            j.group(
                &["d_year", "i_brand_id"],
                vec![(AggExpr::Sum(rev), "ext_price")],
            )
            .order(&[("d_year", false), ("ext_price", true)], Some(100))
        }),
        // Q55: brand revenue for one manager cohort.
        ("q55", {
            let s = sales_in(cat, 1999, Some(11));
            let i = Q::scan(cat, "item");
            let mg = i.c("i_manager_id");
            let i = i.filter(mg.between(Datum::I64(20), Datum::I64(40)));
            let j = s.broadcast_join(i, &[("ss_item_sk", "i_item_sk")]);
            let rev = j.c("ss_ext_sales_price");
            j.group(&["i_brand_id"], vec![(AggExpr::Sum(rev), "ext_price")])
                .order(&[("ext_price", true), ("i_brand_id", false)], Some(100))
        }),
        // Q65-ish: store/item revenue via two joins and a shuffle join on
        // the (large) aggregate — exercises the multi-job MR path hard.
        ("q65", {
            let s = sales_in(cat, 2000, None);
            let agg = s.group(
                &["ss_store_sk", "ss_item_sk"],
                vec![(
                    AggExpr::Sum(Q::scan(cat, "store_sales").c("ss_sales_price")),
                    "revenue",
                )],
            );
            let st = Q::scan(cat, "store");
            let j = agg.broadcast_join(st, &[("ss_store_sk", "s_store_sk")]);
            j.order(&[("revenue", true)], Some(50))
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_table_is_date_clustered() {
        let cat = generate(500, 8, 3);
        assert_eq!(cat.cluster_column("store_sales"), Some(0));
        let ranges = cat.block_ranges("store_sales", 0);
        assert_eq!(ranges.len(), 8);
        // Clustered: ranges are non-overlapping and increasing.
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn all_queries_run_on_reference() {
        let cat = generate(600, 8, 3);
        let tables = cat.reference_tables();
        for (name, q) in queries(&cat) {
            let rows = crate::plan::execute_reference(&q.plan, &tables);
            assert!(!rows.is_empty(), "{name} returned no rows");
        }
    }
}
