//! # tez-hive — a mini SQL engine on rtez
//!
//! Stands in for Apache Hive in the paper's evaluation (§5.2, §6.1, §6.2):
//! a declarative query engine whose runtime was rewritten on Tez. The crate
//! provides:
//!
//! * A typed row model ([`types`]), expressions ([`expr`]) and logical
//!   plans ([`plan`]) with a single-process **reference executor** used by
//!   tests to validate both distributed backends.
//! * A **Tez backend** ([`compile_tez`]): one DAG per query, with
//!   broadcast (map) joins backed by the shared object registry,
//!   map-side partial aggregation, top-k order-by, automatic reducer
//!   parallelism, and **dynamic partition pruning** (§3.5).
//! * A **classic MapReduce backend** ([`compile_mr`]): the same operator
//!   code compiled into a chain of 2-vertex jobs that materialize
//!   intermediates to the replicated DFS — Hive-on-MR, the paper's
//!   baseline.
//! * TPC-H-derived ([`tpch`]) and TPC-DS-derived ([`tpcds`]) schemas, data
//!   generators and query suites driving Figures 8 and 9.

pub mod catalog;
pub mod compile_mr;
pub mod compile_tez;
pub mod engine;
pub mod expr;
pub mod physical;
pub mod plan;
pub mod query;
pub mod tpcds;
pub mod tpch;
pub mod types;

pub use catalog::Catalog;
pub use engine::{HiveEngine, HiveOpts, QueryResult};
pub use expr::Expr;
pub use plan::{AggExpr, Plan};
pub use query::Q;
pub use types::{Datum, Row, Schema};
