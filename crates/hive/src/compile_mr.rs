//! The classic-MapReduce backend: slice the stage graph into a chain of
//! jobs, one per shuffle, materializing every intermediate result to the
//! replicated DFS.
//!
//! This is Hive-on-MR, the baseline of paper §6.1–6.2: the same operator
//! code, but (a) one AM launch per job, (b) inter-job I/O through HDFS at
//! replication cost, (c) no broadcast edges or shared registry (map joins
//! degrade to shuffle joins), (d) fixed reducer counts, and (e) identity
//! re-read maps re-emitting the shuffle of the next stage.

use crate::catalog::Catalog;
use crate::physical::{
    resolve_out, ExecKind, ExecOut, HiveStageProcessor, StageExec, StageKind, StageLink, StageOut,
    StagePlan,
};
use tez_core::{hdfs_split_initializer, TezConfig};
use tez_dag::{Dag, DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_runtime::ComponentRegistry;
use tez_shuffle::io::{kinds, scatter_gather_edge};
use tez_shuffle::Combiner;

fn temp_path(query: &str, stage: usize) -> String {
    format!("/tmp/{query}/s{stage}")
}

/// Compile a stage graph into a chain of MapReduce jobs (one DAG each).
/// The stage graph must come from [`crate::physical::rewrite_for_mr`]'d
/// plans (no broadcast links).
pub fn build_mr_dags(
    query: &str,
    sp: &StagePlan,
    catalog: &Catalog,
    registry: &mut ComponentRegistry,
    result_path: &str,
    config: &TezConfig,
) -> Vec<Dag> {
    let mut dags = Vec::new();
    let mut job_idx = 0;

    for stage in &sp.stages {
        debug_assert!(
            !stage
                .links
                .iter()
                .any(|l| matches!(l, StageLink::Broadcast(_))),
            "MR stage graphs must be broadcast-free"
        );
        let is_reduce = !matches!(stage.kind, StageKind::Map);
        let is_map_sink =
            matches!(stage.kind, StageKind::Map) && matches!(stage.out, StageOut::Sink);
        if !is_reduce && !is_map_sink {
            continue; // map stages are folded into their consumer's job
        }

        let job_name = format!("{query}-job{job_idx}");
        let sink_path = match sp.consumer_of(stage.id) {
            Some(_) => temp_path(query, stage.id),
            None => result_path.to_string(),
        };
        let mut builder = DagBuilder::new(&job_name);

        if is_map_sink {
            // Single map-only job: scan → sink.
            let table = match &stage.links[0] {
                StageLink::Table(t) => t.clone(),
                other => panic!("map sink without table link: {other:?}"),
            };
            let exec = StageExec {
                kind: ExecKind::MapRows {
                    inputs: vec!["scan".into()],
                },
                ops: stage.ops.clone(),
                outs: vec![ExecOut::Rows { out: "out".into() }],
            };
            let kind_name = format!("hive.{job_name}.map");
            registry.register_processor(&kind_name, move |_p| {
                Box::new(HiveStageProcessor::new(exec.clone()))
            });
            builder = builder.add_vertex(
                Vertex::new("map", NamedDescriptor::new(&kind_name))
                    .with_data_source(
                        "scan",
                        NamedDescriptor::new(kinds::DFS_IN),
                        Some(hdfs_split_initializer(
                            &Catalog::table_path(&table),
                            config.min_split_bytes,
                            config.max_split_bytes,
                            false,
                        )),
                    )
                    .with_data_sink(
                        "out",
                        NamedDescriptor::with_payload(
                            kinds::DFS_OUT,
                            UserPayload::from_str(&sink_path),
                        ),
                        Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                    ),
            );
            dags.push(builder.build().expect("map-only job"));
            job_idx += 1;
            continue;
        }

        // Map vertices: one per shuffle link producer.
        let mut map_names = Vec::new();
        for link in &stage.links {
            let StageLink::Shuffle(p) = link else {
                continue;
            };
            let producer = &sp.stages[*p];
            let map_name = format!("m{p}");
            let (source_path, ops, pin) = match (&producer.kind, producer.links.first()) {
                (StageKind::Map, Some(StageLink::Table(t))) => {
                    let _ = catalog.table(t);
                    (
                        Catalog::table_path(t),
                        producer.ops.clone(),
                        catalog.scale_override(t),
                    )
                }
                // Producer was the reduce of an earlier job: identity
                // re-read of its materialized temp table (its ops already
                // ran there); only the shuffle emission happens here.
                _ => (temp_path(query, *p), Vec::new(), None),
            };
            let exec = StageExec {
                kind: ExecKind::MapRows {
                    inputs: vec!["scan".into()],
                },
                ops,
                outs: vec![resolve_out(&producer.out, "r")],
            };
            let kind_name = format!("hive.{job_name}.{map_name}");
            registry.register_processor(&kind_name, move |_p| {
                Box::new(HiveStageProcessor::new(exec.clone()))
            });
            let mut map_vertex = Vertex::new(&map_name, NamedDescriptor::new(&kind_name))
                .with_data_source(
                    "scan",
                    NamedDescriptor::new(kinds::DFS_IN),
                    Some(hdfs_split_initializer(
                        &source_path,
                        config.min_split_bytes,
                        config.max_split_bytes,
                        false,
                    )),
                );
            if let Some(pin) = pin {
                map_vertex = map_vertex.with_stats_scale(pin);
            }
            builder = builder.add_vertex(map_vertex);
            map_names.push((map_name, *p));
        }

        // Reduce vertex.
        let reduce_kind = match &stage.kind {
            StageKind::Join { left, right } => ExecKind::Join {
                left: left
                    .iter()
                    .map(|&i| match &stage.links[i] {
                        StageLink::Shuffle(p) => format!("m{p}"),
                        other => panic!("join link {other:?}"),
                    })
                    .collect(),
                right: right
                    .iter()
                    .map(|&i| match &stage.links[i] {
                        StageLink::Shuffle(p) => format!("m{p}"),
                        other => panic!("join link {other:?}"),
                    })
                    .collect(),
            },
            StageKind::FinalAgg { group_cols, aggs } => ExecKind::FinalAgg {
                inputs: map_names.iter().map(|(n, _)| n.clone()).collect(),
                group_cols: *group_cols,
                aggs: aggs.clone(),
            },
            StageKind::FinalOrdered { limit } => ExecKind::FinalOrdered {
                inputs: map_names.iter().map(|(n, _)| n.clone()).collect(),
                limit: *limit,
            },
            StageKind::Map => unreachable!("handled above"),
        };
        let exec = StageExec {
            kind: reduce_kind,
            ops: stage.ops.clone(),
            outs: vec![ExecOut::Rows { out: "out".into() }],
        };
        let kind_name = format!("hive.{job_name}.r");
        registry.register_processor(&kind_name, move |_p| {
            Box::new(HiveStageProcessor::new(exec.clone()))
        });
        builder = builder.add_vertex(
            Vertex::new("r", NamedDescriptor::new(&kind_name))
                .with_parallelism(stage.parallelism.unwrap_or(1))
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(
                        kinds::DFS_OUT,
                        UserPayload::from_str(&sink_path),
                    ),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        );
        for (m, _) in &map_names {
            builder = builder.add_edge(m.clone(), "r", scatter_gather_edge(Combiner::None));
        }
        dags.push(builder.build().expect("mr job compiles"));
        job_idx += 1;
    }
    dags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{build_stages, rewrite_for_mr, PhysicalOpts};
    use crate::plan::{AggExpr, Plan};
    use crate::types::{ColType, Datum, Schema};
    use tez_core::standard_registry;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for t in ["a", "b"] {
            c.add_table(
                t,
                Schema::new(vec![("k", ColType::I64), ("v", ColType::I64)]),
                (0..4)
                    .map(|i| vec![Datum::I64(i % 2), Datum::I64(i)])
                    .collect(),
                1,
                None,
            );
        }
        c
    }

    #[test]
    fn join_then_agg_becomes_two_jobs() {
        let cat = catalog();
        let plan = Plan::scan("a")
            .broadcast_join(Plan::scan("b"), vec![0], vec![0])
            .aggregate(vec![0], vec![AggExpr::CountStar]);
        let mr_plan = rewrite_for_mr(&plan);
        let opts = PhysicalOpts {
            broadcast_joins: false,
            dpp: false,
            ..Default::default()
        };
        let sp = build_stages(&mr_plan, &cat, &opts);
        let mut registry = standard_registry();
        let dags = build_mr_dags(
            "q",
            &sp,
            &cat,
            &mut registry,
            "/results/q",
            &TezConfig::default(),
        );
        assert_eq!(dags.len(), 2, "join job + aggregate job");
        // Job 1: two maps + reduce.
        assert_eq!(dags[0].num_vertices(), 3);
        // Job 2: identity map over the join temp + final agg reduce.
        assert_eq!(dags[1].num_vertices(), 2);
    }
}
