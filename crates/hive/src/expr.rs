//! Scalar expressions over rows.

use crate::types::{Datum, Row};
use std::cmp::Ordering;
use std::sync::Arc;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A scalar expression tree.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Column reference by index.
    Col(usize),
    /// Literal.
    Lit(Datum),
    /// Binary operation.
    Bin(BinOp, Arc<Expr>, Arc<Expr>),
    /// `NOT e`.
    Not(Arc<Expr>),
    /// `e IN (lits…)`.
    InList(Arc<Expr>, Vec<Datum>),
    /// `e BETWEEN lo AND hi` (inclusive).
    Between(Arc<Expr>, Datum, Datum),
    /// `e LIKE '%substr%'` (contains-substring semantics).
    Contains(Arc<Expr>, String),
    /// `e IS NULL`.
    IsNull(Arc<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn lit_i64(v: i64) -> Expr {
        Expr::Lit(Datum::I64(v))
    }

    /// Float literal.
    pub fn lit_f64(v: f64) -> Expr {
        Expr::Lit(Datum::F64(v))
    }

    /// String literal.
    pub fn lit_str(s: &str) -> Expr {
        Expr::Lit(Datum::str(s))
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Arc::new(a), Arc::new(b))
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, other)
    }
    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, other)
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, other)
    }
    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, other)
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, other)
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, other)
    }
    /// `self IN (values…)`
    pub fn in_list(self, values: Vec<Datum>) -> Expr {
        Expr::InList(Arc::new(self), values)
    }
    /// `self BETWEEN lo AND hi`
    pub fn between(self, lo: Datum, hi: Datum) -> Expr {
        Expr::Between(Arc::new(self), lo, hi)
    }
    /// `self LIKE '%s%'`
    pub fn contains(self, s: &str) -> Expr {
        Expr::Contains(Arc::new(self), s.to_string())
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Datum {
        match self {
            Expr::Col(i) => row[*i].clone(),
            Expr::Lit(d) => d.clone(),
            Expr::Not(e) => match e.eval(row) {
                Datum::Null => Datum::Null,
                d => Datum::I64(i64::from(!truthy(&d))),
            },
            Expr::IsNull(e) => Datum::I64(i64::from(e.eval(row).is_null())),
            Expr::InList(e, list) => {
                let v = e.eval(row);
                if v.is_null() {
                    return Datum::Null;
                }
                Datum::I64(i64::from(list.iter().any(|l| l == &v)))
            }
            Expr::Between(e, lo, hi) => {
                let v = e.eval(row);
                if v.is_null() {
                    return Datum::Null;
                }
                Datum::I64(i64::from(
                    v.cmp_sql(lo) != Ordering::Less && v.cmp_sql(hi) != Ordering::Greater,
                ))
            }
            Expr::Contains(e, s) => {
                let v = e.eval(row);
                if v.is_null() {
                    return Datum::Null;
                }
                Datum::I64(i64::from(v.as_str().contains(s.as_str())))
            }
            Expr::Bin(op, a, b) => {
                let (va, vb) = (a.eval(row), b.eval(row));
                if va.is_null() || vb.is_null() {
                    return Datum::Null;
                }
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &va, &vb),
                    BinOp::Eq => Datum::I64(i64::from(va.cmp_sql(&vb) == Ordering::Equal)),
                    BinOp::Ne => Datum::I64(i64::from(va.cmp_sql(&vb) != Ordering::Equal)),
                    BinOp::Lt => Datum::I64(i64::from(va.cmp_sql(&vb) == Ordering::Less)),
                    BinOp::Le => Datum::I64(i64::from(va.cmp_sql(&vb) != Ordering::Greater)),
                    BinOp::Gt => Datum::I64(i64::from(va.cmp_sql(&vb) == Ordering::Greater)),
                    BinOp::Ge => Datum::I64(i64::from(va.cmp_sql(&vb) != Ordering::Less)),
                    BinOp::And => Datum::I64(i64::from(truthy(&va) && truthy(&vb))),
                    BinOp::Or => Datum::I64(i64::from(truthy(&va) || truthy(&vb))),
                }
            }
        }
    }

    /// Evaluate as a filter predicate (NULL → false).
    pub fn matches(&self, row: &Row) -> bool {
        truthy(&self.eval(row))
    }
}

fn truthy(d: &Datum) -> bool {
    match d {
        Datum::Null => false,
        Datum::I64(v) => *v != 0,
        Datum::F64(v) => *v != 0.0,
        Datum::Str(s) => !s.is_empty(),
    }
}

fn arith(op: BinOp, a: &Datum, b: &Datum) -> Datum {
    if let (Datum::I64(x), Datum::I64(y)) = (a, b) {
        return match op {
            BinOp::Add => Datum::I64(x + y),
            BinOp::Sub => Datum::I64(x - y),
            BinOp::Mul => Datum::I64(x * y),
            BinOp::Div => {
                if *y == 0 {
                    Datum::Null
                } else {
                    Datum::I64(x / y)
                }
            }
            _ => unreachable!(),
        };
    }
    let (x, y) = (a.as_f64(), b.as_f64());
    match op {
        BinOp::Add => Datum::F64(x + y),
        BinOp::Sub => Datum::F64(x - y),
        BinOp::Mul => Datum::F64(x * y),
        BinOp::Div => {
            if y == 0.0 {
                Datum::Null
            } else {
                Datum::F64(x / y)
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Datum::I64(10),
            Datum::F64(2.5),
            Datum::str("widget"),
            Datum::Null,
        ]
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::col(0).add(Expr::lit_i64(5));
        assert_eq!(e.eval(&row()), Datum::I64(15));
        let e = Expr::col(0).mul(Expr::col(1));
        assert_eq!(e.eval(&row()), Datum::F64(25.0));
        assert!(Expr::col(0).ge(Expr::lit_i64(10)).matches(&row()));
        assert!(!Expr::col(0).lt(Expr::lit_i64(10)).matches(&row()));
    }

    #[test]
    fn null_propagation() {
        let e = Expr::col(3).add(Expr::lit_i64(1));
        assert!(e.eval(&row()).is_null());
        assert!(
            !Expr::col(3).eq(Expr::col(3)).matches(&row()),
            "NULL = NULL is not true"
        );
        assert!(Expr::IsNull(Arc::new(Expr::col(3))).matches(&row()));
    }

    #[test]
    fn in_between_contains() {
        assert!(Expr::col(0)
            .in_list(vec![Datum::I64(1), Datum::I64(10)])
            .matches(&row()));
        assert!(Expr::col(0)
            .between(Datum::I64(5), Datum::I64(10))
            .matches(&row()));
        assert!(!Expr::col(0)
            .between(Datum::I64(11), Datum::I64(20))
            .matches(&row()));
        assert!(Expr::col(2).contains("dge").matches(&row()));
        assert!(!Expr::col(2).contains("nope").matches(&row()));
    }

    #[test]
    fn boolean_composition() {
        let p = Expr::col(0)
            .gt(Expr::lit_i64(5))
            .and(Expr::col(2).eq(Expr::lit_str("widget")));
        assert!(p.matches(&row()));
        let q = Expr::col(0).lt(Expr::lit_i64(5)).or(p);
        assert!(q.matches(&row()));
        assert!(!Expr::Not(Arc::new(q)).matches(&row()));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::Bin(
            BinOp::Div,
            Arc::new(Expr::lit_i64(1)),
            Arc::new(Expr::lit_i64(0)),
        );
        assert!(e.eval(&row()).is_null());
    }
}
