//! The Tez backend: wire a stage graph into a single Tez DAG.
//!
//! Scans become root vertices with split initializers (pruning-gated for
//! DPP fact scans), shuffle links become scatter-gather edges, broadcast
//! links become broadcast edges, and sink stages write the query result
//! committed once at DAG success.

use crate::catalog::Catalog;
use crate::physical::{
    resolve_out, ExecKind, HiveStageProcessor, Stage, StageExec, StageKind, StageLink, StageOut,
    StagePlan,
};
use tez_core::{hdfs_split_initializer, TezConfig};
use tez_dag::{Dag, DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_runtime::ComponentRegistry;
use tez_shuffle::io::{broadcast_edge, kinds, scatter_gather_edge};
use tez_shuffle::Combiner;

fn link_stage(link: &StageLink) -> Option<usize> {
    match link {
        StageLink::Shuffle(p) | StageLink::Broadcast(p) => Some(*p),
        StageLink::Table(_) => None,
    }
}

fn shuffle_input_names(sp: &StagePlan, stage: &Stage) -> Vec<String> {
    stage
        .links
        .iter()
        .filter_map(|l| match l {
            StageLink::Shuffle(p) => Some(sp.stages[*p].vertex_name()),
            _ => None,
        })
        .collect()
}

/// Build the StageExec for one stage, its output aimed at `out_name`.
pub fn stage_exec(sp: &StagePlan, stage: &Stage, out_name: &str) -> StageExec {
    let kind = match &stage.kind {
        StageKind::Map => ExecKind::MapRows {
            inputs: vec!["scan".to_string()],
        },
        StageKind::Join { left, right } => ExecKind::Join {
            left: left
                .iter()
                .map(|&i| sp.stages[link_stage(&stage.links[i]).unwrap()].vertex_name())
                .collect(),
            right: right
                .iter()
                .map(|&i| sp.stages[link_stage(&stage.links[i]).unwrap()].vertex_name())
                .collect(),
        },
        StageKind::FinalAgg { group_cols, aggs } => ExecKind::FinalAgg {
            inputs: shuffle_input_names(sp, stage),
            group_cols: *group_cols,
            aggs: aggs.clone(),
        },
        StageKind::FinalOrdered { limit } => ExecKind::FinalOrdered {
            inputs: shuffle_input_names(sp, stage),
            limit: *limit,
        },
    };
    StageExec {
        kind,
        ops: stage.ops.clone(),
        outs: vec![resolve_out(&stage.out, out_name)],
    }
}

/// Compile a stage graph into one Tez DAG, registering the stage
/// processors under `hive.{query}.*` kinds.
pub fn build_tez_dag(
    query: &str,
    sp: &StagePlan,
    catalog: &Catalog,
    registry: &mut ComponentRegistry,
    result_path: &str,
    config: &TezConfig,
) -> Dag {
    let mut builder = DagBuilder::new(query);
    for stage in &sp.stages {
        let vname = stage.vertex_name();
        let out_name = match sp.consumer_of(stage.id) {
            Some(c) => sp.stages[c].vertex_name(),
            None => "out".to_string(),
        };
        let exec = stage_exec(sp, stage, &out_name);
        let kind_name = format!("hive.{query}.{vname}");
        registry.register_processor(&kind_name, move |_p| {
            Box::new(HiveStageProcessor::new(exec.clone()))
        });

        let mut vertex = Vertex::new(&vname, NamedDescriptor::new(&kind_name));
        if let Some(n) = stage.parallelism {
            vertex = vertex.with_parallelism(n);
        }
        // Root scan.
        if let Some(StageLink::Table(table)) = stage
            .links
            .iter()
            .find(|l| matches!(l, StageLink::Table(_)))
        {
            let path = Catalog::table_path(table);
            let _ = catalog.table(table); // validate existence at compile time
            if let Some(pin) = catalog.scale_override(table) {
                vertex = vertex.with_stats_scale(pin);
            }
            let (min_split, max_split) = if stage.parallelism == Some(1) {
                // Forced single task (DPP dimension side).
                (u64::MAX / 4, u64::MAX / 2)
            } else {
                (config.min_split_bytes, config.max_split_bytes)
            };
            vertex = vertex.with_data_source(
                "scan",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer(
                    &path,
                    min_split,
                    max_split,
                    stage.pruned_scan,
                )),
            );
        }
        // Sink.
        if matches!(stage.out, StageOut::Sink) {
            vertex = vertex.with_data_sink(
                "out",
                NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str(result_path)),
                Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
            );
        }
        builder = builder.add_vertex(vertex);
    }
    // Edges.
    for stage in &sp.stages {
        for link in &stage.links {
            match link {
                StageLink::Shuffle(p) => {
                    builder = builder.add_edge(
                        sp.stages[*p].vertex_name(),
                        stage.vertex_name(),
                        scatter_gather_edge(Combiner::None),
                    );
                }
                StageLink::Broadcast(p) => {
                    builder = builder.add_edge(
                        sp.stages[*p].vertex_name(),
                        stage.vertex_name(),
                        broadcast_edge(),
                    );
                }
                StageLink::Table(_) => {}
            }
        }
    }
    builder
        .build()
        .expect("stage graph compiles to a valid DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{build_stages, PhysicalOpts};
    use crate::plan::{AggExpr, Plan};
    use crate::types::{ColType, Datum, Schema};
    use tez_core::standard_registry;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            Schema::new(vec![("k", ColType::I64), ("v", ColType::I64)]),
            (0..6)
                .map(|i| vec![Datum::I64(i % 2), Datum::I64(i)])
                .collect(),
            2,
            None,
        );
        c
    }

    #[test]
    fn scan_agg_dag_shape() {
        let cat = catalog();
        let plan = Plan::scan("t").aggregate(vec![0], vec![AggExpr::CountStar]);
        let sp = build_stages(&plan, &cat, &PhysicalOpts::default());
        let mut registry = standard_registry();
        let dag = build_tez_dag(
            "q",
            &sp,
            &cat,
            &mut registry,
            "/results/q",
            &TezConfig::default(),
        );
        assert_eq!(dag.num_vertices(), 2);
        assert_eq!(dag.edges().len(), 1);
        assert!(registry.has_processor("hive.q.s0"));
        assert!(registry.has_processor("hive.q.s1"));
        // Scan vertex has the split initializer; agg vertex has the sink.
        let scan = dag.vertex_by_name("s0");
        assert_eq!(scan.data_sources.len(), 1);
        let agg = dag.vertex_by_name("s1");
        assert_eq!(agg.data_sinks.len(), 1);
    }
}
