//! The warehouse catalog: in-memory tables, their HDFS layout, and the
//! block statistics the planner uses (clustering ranges for dynamic
//! partition pruning).

use crate::types::{row_bytes, Datum, Row, Schema};
use bytes::Bytes;
use std::collections::HashMap;
use tez_shuffle::codec::encode_kv;
use tez_yarn::SimHdfs;

/// One table: schema, rows, and physical layout config.
pub struct TableData {
    /// Column schema.
    pub schema: Schema,
    /// Rows (clustered tables keep rows sorted by the cluster column).
    pub rows: Vec<Row>,
    /// Number of HDFS blocks the table is written as.
    pub blocks: usize,
    /// Column the physical layout is clustered by (enables DPP).
    pub cluster_by: Option<usize>,
    /// Declared-scale override: absolutely-small tables (dimensions) keep
    /// their true size instead of growing with the warehouse scale factor.
    pub scale_override: Option<f64>,
}

/// The warehouse.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, TableData>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table. Clustered tables are sorted by the cluster column so
    /// block ranges are tight.
    pub fn add_table(
        &mut self,
        name: &str,
        schema: Schema,
        mut rows: Vec<Row>,
        blocks: usize,
        cluster_by: Option<usize>,
    ) {
        if let Some(c) = cluster_by {
            rows.sort_by(|a, b| a[c].cmp_sql(&b[c]));
        }
        self.tables.insert(
            name.to_string(),
            TableData {
                schema,
                rows,
                blocks: blocks.max(1),
                cluster_by,
                scale_override: None,
            },
        );
    }

    /// Pin a table's declared scale (see [`TableData::scale_override`]).
    pub fn set_scale_override(&mut self, name: &str, scale: f64) {
        self.tables
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown table {name:?}"))
            .scale_override = Some(scale);
    }

    /// Declared-scale override of a table, if pinned.
    pub fn scale_override(&self, name: &str) -> Option<f64> {
        self.tables.get(name).and_then(|t| t.scale_override)
    }

    /// Table accessor.
    pub fn table(&self, name: &str) -> &TableData {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("unknown table {name:?}"))
    }

    /// Schema accessor.
    pub fn schema(&self, name: &str) -> &Schema {
        &self.table(name).schema
    }

    /// Cluster column of a table, if any.
    pub fn cluster_column(&self, name: &str) -> Option<usize> {
        self.tables.get(name).and_then(|t| t.cluster_by)
    }

    /// Warehouse path of a table.
    pub fn table_path(name: &str) -> String {
        format!("/warehouse/{name}")
    }

    /// Tables as reference-executor input.
    pub fn reference_tables(&self) -> HashMap<String, Vec<Row>> {
        self.tables
            .iter()
            .map(|(n, t)| (n.clone(), t.rows.clone()))
            .collect()
    }

    /// Row ranges per block (deterministic split of rows into blocks).
    fn block_row_ranges(rows: usize, blocks: usize) -> Vec<(usize, usize)> {
        let blocks = blocks.max(1);
        let base = rows / blocks;
        let extra = rows % blocks;
        let mut out = Vec::with_capacity(blocks);
        let mut start = 0;
        for b in 0..blocks {
            let n = base + usize::from(b < extra);
            out.push((start, start + n));
            start += n;
        }
        out
    }

    /// `(min, max)` of an `i64` column per block — the planner metadata
    /// behind dynamic partition pruning.
    pub fn block_ranges(&self, name: &str, col: usize) -> Vec<(i64, i64)> {
        let t = self.table(name);
        Self::block_row_ranges(t.rows.len(), t.blocks)
            .into_iter()
            .map(|(s, e)| {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for r in &t.rows[s..e] {
                    if let Datum::I64(v) = r[col] {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                (lo, hi)
            })
            .collect()
    }

    /// Write every table to HDFS as key-value framed row blocks. Declared
    /// block sizes are multiplied by `byte_scale`, so split calculation and
    /// the cost model see paper-scale volumes while real rows stay small.
    pub fn load_hdfs(&self, hdfs: &SimHdfs, byte_scale: f64) {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        for name in names {
            let t = &self.tables[name];
            let scale = t.scale_override.unwrap_or(byte_scale);
            let ranges = Self::block_row_ranges(t.rows.len(), t.blocks);
            let blocks: Vec<(Bytes, u64, u64)> = ranges
                .into_iter()
                .map(|(s, e)| {
                    let mut buf = Vec::new();
                    for r in &t.rows[s..e] {
                        encode_kv(&mut buf, b"", &row_bytes(r));
                    }
                    let real = buf.len() as u64;
                    let declared = ((real as f64) * scale).max(1.0) as u64;
                    let records = (((e - s) as f64) * scale).max(1.0) as u64;
                    (Bytes::from(buf), declared, records)
                })
                .collect();
            hdfs.put_file_scaled(&Catalog::table_path(name), blocks);
        }
    }

    /// Total rows across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ColType;
    use tez_runtime::Dfs;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "f",
            Schema::new(vec![("d", ColType::I64), ("v", ColType::I64)]),
            vec![
                vec![Datum::I64(3), Datum::I64(30)],
                vec![Datum::I64(1), Datum::I64(10)],
                vec![Datum::I64(2), Datum::I64(20)],
                vec![Datum::I64(1), Datum::I64(11)],
            ],
            2,
            Some(0),
        );
        c
    }

    #[test]
    fn clustered_table_sorts_rows() {
        let c = catalog();
        let rows = &c.table("f").rows;
        let ds: Vec<i64> = rows.iter().map(|r| r[0].as_i64()).collect();
        assert_eq!(ds, vec![1, 1, 2, 3]);
    }

    #[test]
    fn block_ranges_are_tight() {
        let c = catalog();
        let ranges = c.block_ranges("f", 0);
        assert_eq!(ranges, vec![(1, 1), (2, 3)]);
    }

    #[test]
    fn load_hdfs_declares_scaled_bytes() {
        let c = catalog();
        let hdfs = SimHdfs::new(4, 1);
        c.load_hdfs(&hdfs, 1000.0);
        let blocks = tez_runtime::Dfs::list_blocks(&hdfs, "/warehouse/f").unwrap();
        assert_eq!(blocks.len(), 2);
        let real = hdfs.read_block("/warehouse/f", 0).unwrap().len() as u64;
        assert_eq!(blocks[0].bytes, real * 1000);
    }

    #[test]
    fn reference_tables_expose_rows() {
        let c = catalog();
        assert_eq!(c.reference_tables()["f"].len(), 4);
        assert_eq!(c.total_rows(), 4);
    }
}
