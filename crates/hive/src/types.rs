//! Typed rows: datums, schemas, and the binary row/key codecs.
//!
//! Rows travel the data plane as the *value* of key-value frames; shuffle
//! *keys* use order-preserving encoding (`tez-shuffle::codec`) so byte
//! comparison equals typed comparison, letting the generic sorted shuffle
//! sort and group typed data without knowing the types.

use bytes::Bytes;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;
use tez_runtime::TaskError;
use tez_shuffle::codec::{KeyBuilder, KeyReader};

/// A single value.
#[derive(Clone, Debug, PartialEq)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// 64-bit integer (also used for dates as `yyyymmdd`).
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string (cheaply clonable).
    Str(Arc<str>),
}

impl Datum {
    /// String datum.
    pub fn str(s: impl AsRef<str>) -> Datum {
        Datum::Str(Arc::from(s.as_ref()))
    }

    /// Whether NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Integer value (panics on mismatch — engine-internal invariants).
    pub fn as_i64(&self) -> i64 {
        match self {
            Datum::I64(v) => *v,
            other => panic!("expected I64, found {other:?}"),
        }
    }

    /// Float value, coercing integers.
    pub fn as_f64(&self) -> f64 {
        match self {
            Datum::F64(v) => *v,
            Datum::I64(v) => *v as f64,
            other => panic!("expected numeric, found {other:?}"),
        }
    }

    /// String value.
    pub fn as_str(&self) -> &str {
        match self {
            Datum::Str(s) => s,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// SQL comparison: NULL sorts first; numeric types coerce.
    pub fn cmp_sql(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (I64(a), I64(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => a
                .as_f64()
                .partial_cmp(&b.as_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::I64(v) => write!(f, "{v}"),
            Datum::F64(v) => write!(f, "{v:.4}"),
            Datum::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A row of datums.
pub type Row = Vec<Datum>;

/// Column types (for schema documentation; execution is dynamically typed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    /// Integer / date.
    I64,
    /// Float.
    F64,
    /// String.
    Str,
}

/// A named, typed column list.
#[derive(Clone, Debug)]
pub struct Schema {
    /// `(name, type)` per column.
    pub columns: Vec<(String, ColType)>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new(columns: Vec<(&str, ColType)>) -> Self {
        Schema {
            columns: columns
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema"))
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Row codec (value side of kv frames)
// ---------------------------------------------------------------------------

/// Encode a row into `buf`.
pub fn encode_row(buf: &mut Vec<u8>, row: &Row) {
    buf.push(row.len() as u8);
    for d in row {
        match d {
            Datum::Null => buf.push(0),
            Datum::I64(v) => {
                buf.push(1);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Datum::F64(v) => {
                buf.push(2);
                buf.extend_from_slice(&v.to_le_bytes());
            }
            Datum::Str(s) => {
                buf.push(3);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// Encode a row into fresh bytes.
pub fn row_bytes(row: &Row) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 * row.len());
    encode_row(&mut buf, row);
    buf
}

fn corrupt(msg: impl Into<String>) -> TaskError {
    TaskError::Corrupt(msg.into())
}

fn take<'a>(data: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], TaskError> {
    let slice = data
        .get(*pos..*pos + len)
        .ok_or_else(|| corrupt(format!("row truncated at byte {}", *pos)))?;
    *pos += len;
    Ok(slice)
}

/// Decode a row. Corrupt data — unknown datum tags, truncated fields,
/// invalid UTF-8 — is a [`TaskError::Corrupt`] so the framework can retry
/// or re-execute the producer instead of crashing the container.
pub fn decode_row(data: &[u8]) -> Result<Row, TaskError> {
    let n = *data.first().ok_or_else(|| corrupt("empty row"))? as usize;
    let mut pos = 1;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = take(data, &mut pos, 1)?[0];
        row.push(match tag {
            0 => Datum::Null,
            1 => Datum::I64(i64::from_le_bytes(
                take(data, &mut pos, 8)?.try_into().expect("8 bytes"),
            )),
            2 => Datum::F64(f64::from_le_bytes(
                take(data, &mut pos, 8)?.try_into().expect("8 bytes"),
            )),
            3 => {
                let len = u32::from_le_bytes(take(data, &mut pos, 4)?.try_into().expect("4 bytes"))
                    as usize;
                let s = std::str::from_utf8(take(data, &mut pos, len)?)
                    .map_err(|_| corrupt("row string is not UTF-8"))?;
                Datum::str(s)
            }
            t => return Err(corrupt(format!("bad datum tag {t}"))),
        });
    }
    Ok(row)
}

/// Decode a row from shared bytes.
pub fn decode_row_bytes(data: &Bytes) -> Result<Row, TaskError> {
    decode_row(data)
}

// ---------------------------------------------------------------------------
// Key codec (order-preserving, for shuffle keys)
// ---------------------------------------------------------------------------

/// Encode selected columns of a row into an order-preserving key.
///
/// `desc[i]` inverts every byte of field `i`, reversing its order (and
/// placing NULLs last, matching descending SQL sorts). Descending fields
/// cannot be decoded back — they exist only for comparison; group-by keys
/// are always ascending.
pub fn encode_key(row: &Row, cols: &[usize], desc: &[bool]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cols.len() * 10);
    for (i, &c) in cols.iter().enumerate() {
        let mut kb = KeyBuilder::new();
        match &row[c] {
            Datum::Null => {
                kb.push_tag(0);
            }
            Datum::I64(v) => {
                kb.push_tag(1);
                kb.push_i64(*v);
            }
            Datum::F64(v) => {
                kb.push_tag(2);
                kb.push_f64(*v);
            }
            Datum::Str(s) => {
                kb.push_tag(3);
                kb.push_str(s);
            }
        }
        let field = kb.finish();
        if desc.get(i).copied().unwrap_or(false) {
            out.extend(field.iter().map(|b| !b));
        } else {
            out.extend_from_slice(&field);
        }
    }
    out
}

/// Decode the datum fields of a key produced by [`encode_key`] with no
/// descending fields. An unknown field tag is a [`TaskError::Corrupt`].
pub fn decode_key(key: &[u8], fields: usize) -> Result<Row, TaskError> {
    let mut r = KeyReader::new(key);
    let mut out = Vec::with_capacity(fields);
    for _ in 0..fields {
        match r.read_tag() {
            0 => out.push(Datum::Null),
            1 => out.push(Datum::I64(r.read_i64())),
            2 => out.push(Datum::F64(r.read_f64())),
            3 => out.push(Datum::str(r.read_str())),
            t => return Err(corrupt(format!("bad key tag {t}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datum_sql_ordering() {
        assert_eq!(Datum::Null.cmp_sql(&Datum::I64(0)), Ordering::Less);
        assert_eq!(Datum::I64(2).cmp_sql(&Datum::F64(2.5)), Ordering::Less);
        assert_eq!(Datum::str("a").cmp_sql(&Datum::str("b")), Ordering::Less);
        assert_eq!(Datum::Null.cmp_sql(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn row_codec_roundtrip() {
        let row: Row = vec![
            Datum::Null,
            Datum::I64(-42),
            Datum::F64(2.75),
            Datum::str("hello \u{1F980}"),
        ];
        assert_eq!(decode_row(&row_bytes(&row)).unwrap(), row);
    }

    #[test]
    fn empty_row_roundtrip() {
        let row: Row = vec![];
        assert_eq!(decode_row(&row_bytes(&row)).unwrap(), row);
    }

    #[test]
    fn key_encoding_orders_like_sql() {
        let rows: Vec<Row> = vec![
            vec![Datum::Null],
            vec![Datum::I64(-5)],
            vec![Datum::I64(3)],
            vec![Datum::I64(100)],
        ];
        let keys: Vec<Vec<u8>> = rows.iter().map(|r| encode_key(r, &[0], &[])).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn composite_key_roundtrip() {
        let row: Row = vec![Datum::I64(7), Datum::str("x"), Datum::Null, Datum::F64(1.5)];
        let key = encode_key(&row, &[0, 1, 2, 3], &[]);
        assert_eq!(decode_key(&key, 4).unwrap(), row);
    }

    #[test]
    fn descending_key_reverses_order() {
        let a = encode_key(&vec![Datum::I64(1)], &[0], &[true]);
        let b = encode_key(&vec![Datum::I64(2)], &[0], &[true]);
        assert!(b < a, "descending: larger value sorts first");
        let s1 = encode_key(&vec![Datum::str("ab")], &[0], &[true]);
        let s2 = encode_key(&vec![Datum::str("abc")], &[0], &[true]);
        assert!(s2 < s1, "descending strings: longer prefix first");
        // NULLs last under descending order.
        let n = encode_key(&vec![Datum::Null], &[0], &[true]);
        assert!(n > a);
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![("a", ColType::I64), ("b", ColType::Str)]);
        assert_eq!(s.col("b"), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn schema_missing_column_panics() {
        Schema::new(vec![("a", ColType::I64)]).col("z");
    }
}
