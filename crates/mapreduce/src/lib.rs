//! # tez-mapreduce — MapReduce on Tez, plus the classic baseline
//!
//! Paper §5.1: "MapReduce can be easily written as a Tez based application
//! and, in fact, the Tez project comes with a built-in implementation of
//! MapReduce. … At its core, it is a simple 2 vertex connected graph."
//!
//! This crate provides:
//!
//! * The [`Mapper`]/[`Reducer`] programming interface and the
//!   [`MapProcessor`]/[`ReduceProcessor`] adapters hosting user code inside
//!   Tez IPO tasks.
//! * [`MrJob`] — a job description, compiled by [`mr_dag`] into the
//!   canonical map→(scatter-gather)→reduce Tez DAG.
//! * [`run_job_chain`] — the **classic MapReduce baseline**: each job runs
//!   with [`TezConfig::mapreduce_baseline`] semantics (fresh AM per job, no
//!   container reuse, fixed reducer count, late reducer slow-start) and
//!   materializes its output to the replicated DFS, which the next job
//!   re-reads. Engines compare their Tez backend against chains built from
//!   these jobs, exactly as the paper compares Hive/Pig-on-Tez against
//!   Hive/Pig-on-MR.

use bytes::Bytes;
use std::sync::Arc;
use tez_core::{hdfs_split_initializer, DagReport, TezClient, TezConfig};
use tez_dag::{Dag, DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_runtime::{ComponentRegistry, Processor, ProcessorContext, TaskError};
use tez_shuffle::io::{kinds, scatter_gather_edge};
use tez_shuffle::Combiner;
use tez_yarn::SimHdfs;

/// Emits key-value pairs from user code.
pub trait MrEmitter {
    /// Emit one pair.
    fn emit(&mut self, key: &[u8], value: &[u8]);
}

/// The map side of a MapReduce job.
pub trait Mapper: Send {
    /// Called once per input record.
    fn map(&mut self, key: &[u8], value: &[u8], out: &mut dyn MrEmitter);
}

/// The reduce side of a MapReduce job.
pub trait Reducer: Send {
    /// Called once per key group, values in merge order.
    fn reduce(&mut self, key: &[u8], values: &[Bytes], out: &mut dyn MrEmitter);
}

/// Factory types for user code (registered once per kind, like class names).
pub type MapperFactory = Arc<dyn Fn(&UserPayload) -> Box<dyn Mapper> + Send + Sync>;
/// Factory for reducers.
pub type ReducerFactory = Arc<dyn Fn(&UserPayload) -> Box<dyn Reducer> + Send + Sync>;

struct VecEmitter(Vec<(Vec<u8>, Vec<u8>)>);
impl MrEmitter for VecEmitter {
    fn emit(&mut self, key: &[u8], value: &[u8]) {
        self.0.push((key.to_vec(), value.to_vec()));
    }
}

/// Hosts a [`Mapper`] in a Tez task: reads every input flat, writes every
/// emitted pair to the single output.
pub struct MapProcessor {
    mapper: Box<dyn Mapper>,
}

impl Processor for MapProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut emitter = VecEmitter(Vec::new());
        for name in ctx.input_names() {
            let mut reader = ctx.reader(&name)?.into_kv()?;
            while let Some((k, v)) = reader.next() {
                self.mapper.map(&k, &v, &mut emitter);
            }
        }
        let out = ctx
            .output_names()
            .first()
            .cloned()
            .ok_or_else(|| TaskError::fatal("map vertex has no output"))?;
        for (k, v) in emitter.0 {
            ctx.write(&out, &k, &v)?;
        }
        Ok(())
    }
}

/// Hosts a [`Reducer`] in a Tez task: reads the grouped shuffle input,
/// writes every emitted pair to the single output.
pub struct ReduceProcessor {
    reducer: Box<dyn Reducer>,
}

impl Processor for ReduceProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let input = ctx
            .input_names()
            .first()
            .cloned()
            .ok_or_else(|| TaskError::fatal("reduce vertex has no input"))?;
        let mut reader = ctx.reader(&input)?.into_grouped()?;
        let mut emitter = VecEmitter(Vec::new());
        while let Some(g) = reader.next_group() {
            self.reducer.reduce(&g.key, &g.values, &mut emitter);
        }
        let out = ctx
            .output_names()
            .first()
            .cloned()
            .ok_or_else(|| TaskError::fatal("reduce vertex has no output"))?;
        for (k, v) in emitter.0 {
            ctx.write(&out, &k, &v)?;
        }
        Ok(())
    }
}

/// Register a mapper kind; it becomes usable as a processor kind in DAGs.
pub fn register_mapper<F>(registry: &mut ComponentRegistry, kind: &str, factory: F)
where
    F: Fn(&UserPayload) -> Box<dyn Mapper> + Send + Sync + 'static,
{
    registry.register_processor(kind, move |p| Box::new(MapProcessor { mapper: factory(p) }));
}

/// Register a reducer kind; it becomes usable as a processor kind in DAGs.
pub fn register_reducer<F>(registry: &mut ComponentRegistry, kind: &str, factory: F)
where
    F: Fn(&UserPayload) -> Box<dyn Reducer> + Send + Sync + 'static,
{
    registry.register_processor(kind, move |p| {
        Box::new(ReduceProcessor {
            reducer: factory(p),
        })
    });
}

/// One MapReduce job.
#[derive(Clone, Debug)]
pub struct MrJob {
    /// Job (and DAG) name.
    pub name: String,
    /// Input DFS path.
    pub input: String,
    /// Output DFS path.
    pub output: String,
    /// Registered mapper processor kind + payload.
    pub mapper: NamedDescriptor,
    /// Registered reducer processor kind + payload (`None` = map-only job).
    pub reducer: Option<NamedDescriptor>,
    /// Reducer count (MapReduce's fixed, user-guessed number — the problem
    /// §3.4 solves).
    pub reducers: usize,
    /// Shuffle combiner.
    pub combiner: Combiner,
}

impl MrJob {
    /// A map+reduce job.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
        mapper: NamedDescriptor,
        reducer: NamedDescriptor,
        reducers: usize,
    ) -> Self {
        MrJob {
            name: name.into(),
            input: input.into(),
            output: output.into(),
            mapper,
            reducer: Some(reducer),
            reducers: reducers.max(1),
            combiner: Combiner::None,
        }
    }

    /// Set the combiner.
    pub fn with_combiner(mut self, combiner: Combiner) -> Self {
        self.combiner = combiner;
        self
    }
}

/// Compile a job into the canonical 2-vertex Tez DAG (paper §5.1).
pub fn mr_dag(job: &MrJob, min_split: u64, max_split: u64) -> Dag {
    let sink = |v: Vertex| {
        v.with_data_sink(
            "out",
            NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str(&job.output)),
            Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
        )
    };
    let map = Vertex::new("map", job.mapper.clone()).with_data_source(
        "in",
        NamedDescriptor::new(kinds::DFS_IN),
        Some(hdfs_split_initializer(
            &job.input, min_split, max_split, false,
        )),
    );
    let builder = DagBuilder::new(&job.name);
    match &job.reducer {
        Some(reducer) => builder
            .add_vertex(map)
            .add_vertex(sink(
                Vertex::new("reduce", reducer.clone()).with_parallelism(job.reducers),
            ))
            .add_edge("map", "reduce", scatter_gather_edge(job.combiner))
            .build()
            .expect("mr dag is structurally valid"),
        None => builder.add_vertex(sink(map)).build().expect("map-only dag"),
    }
}

/// Run a chain of jobs under **classic MapReduce semantics**: per-job AM
/// launch, no container reuse, fixed reducers, late slow-start, inter-job
/// materialization through the replicated DFS. This is the baseline every
/// engine compares its Tez backend against.
pub fn run_job_chain(
    client: &TezClient,
    jobs: &[MrJob],
    registry: ComponentRegistry,
    byte_scale: f64,
    setup: impl FnOnce(&SimHdfs),
) -> Vec<DagReport> {
    let config = TezConfig {
        byte_scale,
        ..TezConfig::mapreduce_baseline()
    };
    run_job_chain_with(client, jobs, registry, config, setup)
}

/// [`run_job_chain`] with a custom base config (tests/ablations).
pub fn run_job_chain_with(
    client: &TezClient,
    jobs: &[MrJob],
    registry: ComponentRegistry,
    config: TezConfig,
    setup: impl FnOnce(&SimHdfs),
) -> Vec<DagReport> {
    let dags = jobs
        .iter()
        .map(|j| mr_dag(j, config.min_split_bytes, config.max_split_bytes))
        .collect();
    let run = client.run_session(dags, registry, config, setup);
    run.reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use tez_core::standard_registry;
    use tez_runtime::Dfs;
    use tez_shuffle::codec::{encode_kv, KvCursor};
    use tez_yarn::{ClusterSpec, CostModel};

    struct WordSplit;
    impl Mapper for WordSplit {
        fn map(&mut self, _k: &[u8], v: &[u8], out: &mut dyn MrEmitter) {
            for w in String::from_utf8_lossy(v).split_whitespace() {
                out.emit(w.as_bytes(), &1u64.to_le_bytes());
            }
        }
    }

    struct Sum;
    impl Reducer for Sum {
        fn reduce(&mut self, key: &[u8], values: &[Bytes], out: &mut dyn MrEmitter) {
            let total: u64 = values
                .iter()
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .sum();
            out.emit(key, &total.to_le_bytes());
        }
    }

    /// Second job: keep only words with count >= 2.
    struct Threshold;
    impl Mapper for Threshold {
        fn map(&mut self, k: &[u8], v: &[u8], out: &mut dyn MrEmitter) {
            if u64::from_le_bytes(v[..8].try_into().unwrap()) >= 2 {
                out.emit(k, v);
            }
        }
    }

    struct Identity;
    impl Reducer for Identity {
        fn reduce(&mut self, key: &[u8], values: &[Bytes], out: &mut dyn MrEmitter) {
            for v in values {
                out.emit(key, v);
            }
        }
    }

    fn registry() -> ComponentRegistry {
        let mut r = standard_registry();
        register_mapper(&mut r, "WordSplit", |_| Box::new(WordSplit));
        register_reducer(&mut r, "Sum", |_| Box::new(Sum));
        register_mapper(&mut r, "Threshold", |_| Box::new(Threshold));
        register_reducer(&mut r, "Identity", |_| Box::new(Identity));
        r
    }

    fn corpus(hdfs: &SimHdfs) {
        let lines = ["a b a", "c a b", "d"];
        let blocks = lines
            .iter()
            .map(|l| {
                let mut buf = Vec::new();
                encode_kv(&mut buf, b"", l.as_bytes());
                (Bytes::from(buf), 1u64)
            })
            .collect();
        hdfs.put_file("/in", blocks);
    }

    fn client() -> TezClient {
        TezClient::new(ClusterSpec::homogeneous(2, 8192, 8)).with_cost(CostModel {
            straggler_prob: 0.0,
            ..CostModel::default()
        })
    }

    fn read_kv(hdfs: &SimHdfs, path: &str) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for b in hdfs.list_blocks(path).expect("output exists") {
            let mut c = KvCursor::new(hdfs.read_block(path, b.index).unwrap());
            while let Some((k, v)) = c.next() {
                out.push((
                    String::from_utf8(k.to_vec()).unwrap(),
                    u64::from_le_bytes(v[..8].try_into().unwrap()),
                ));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn two_job_chain_produces_correct_output() {
        let jobs = vec![
            MrJob::new(
                "wordcount",
                "/in",
                "/wc",
                NamedDescriptor::new("WordSplit"),
                NamedDescriptor::new("Sum"),
                2,
            )
            .with_combiner(Combiner::SumU64),
            MrJob::new(
                "threshold",
                "/wc",
                "/final",
                NamedDescriptor::new("Threshold"),
                NamedDescriptor::new("Identity"),
                1,
            ),
        ];
        let c = client();
        let reports = run_job_chain(&c, &jobs, registry(), 1.0, corpus);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.status.is_success()));

        // Re-run to inspect HDFS (run_job_chain consumes its run).
        let run = c.run_session(
            jobs.iter().map(|j| mr_dag(j, 1, 1 << 30)).collect(),
            registry(),
            TezConfig::mapreduce_baseline(),
            corpus,
        );
        assert_eq!(
            read_kv(run.hdfs(), "/final"),
            vec![("a".to_string(), 3), ("b".to_string(), 2)]
        );
        // Intermediate output materialized to the DFS, as MR must.
        assert!(run.hdfs().exists("/wc"));
    }

    #[test]
    fn map_only_job() {
        let job = MrJob {
            name: "ident".into(),
            input: "/in".into(),
            output: "/copy".into(),
            mapper: NamedDescriptor::new("WordSplit"),
            reducer: None,
            reducers: 1,
            combiner: Combiner::None,
        };
        let c = client();
        let run = c.run_dag(
            mr_dag(&job, 1, 1 << 30),
            registry(),
            TezConfig::mapreduce_baseline(),
            corpus,
        );
        assert!(run.report().status.is_success());
        let words = read_kv(run.hdfs(), "/copy");
        assert_eq!(words.len(), 7, "one record per word occurrence");
    }

    #[test]
    fn baseline_is_slower_than_tez_config_on_same_job() {
        let job = MrJob::new(
            "wc",
            "/in",
            "/out",
            NamedDescriptor::new("WordSplit"),
            NamedDescriptor::new("Sum"),
            2,
        );
        let c = client();
        let mr = c
            .run_dag(
                mr_dag(&job, 1, 1 << 30),
                registry(),
                TezConfig::mapreduce_baseline(),
                corpus,
            )
            .report()
            .clone();
        let tez = c
            .run_dag(
                mr_dag(&job, 1, 1 << 30),
                registry(),
                TezConfig::default(),
                corpus,
            )
            .report()
            .clone();
        assert!(mr.status.is_success() && tez.status.is_success());
        assert!(
            tez.runtime_ms() <= mr.runtime_ms(),
            "tez {} vs mr {}",
            tez.runtime_ms(),
            mr.runtime_ms()
        );
    }

    #[test]
    fn mr_dag_shape_matches_paper() {
        let job = MrJob::new(
            "wc",
            "/in",
            "/out",
            NamedDescriptor::new("WordSplit"),
            NamedDescriptor::new("Sum"),
            4,
        );
        let dag = mr_dag(&job, 1, 1 << 30);
        assert_eq!(dag.num_vertices(), 2);
        assert_eq!(dag.edges().len(), 1);
        assert_eq!(dag.edges()[0].property.movement.label(), "scatter-gather");
    }
}
