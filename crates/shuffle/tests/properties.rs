//! Property-based tests of the data-plane invariants: order-preserving
//! codecs, sorter/merge completeness, and range partitioning.

use bytes::Bytes;
use proptest::prelude::*;
use tez_runtime::KvGroupReader;
use tez_shuffle::codec::{
    dec_f64, dec_i64, dec_u64, enc_f64, enc_i64, enc_u64, encode_kv, KeyBuilder, KeyReader,
    KvCursor,
};
use tez_shuffle::{Combiner, ExternalSorter, GroupedRunReader, MergingCursor, Partitioner};

proptest! {
    /// Integer encodings preserve order and round-trip.
    #[test]
    fn u64_codec_order(a: u64, b: u64) {
        prop_assert_eq!(dec_u64(&enc_u64(a)), a);
        prop_assert_eq!(enc_u64(a) < enc_u64(b), a < b);
    }

    #[test]
    fn i64_codec_order(a: i64, b: i64) {
        prop_assert_eq!(dec_i64(&enc_i64(a)), a);
        prop_assert_eq!(enc_i64(a) < enc_i64(b), a < b);
    }

    /// Finite floats preserve order and round-trip.
    #[test]
    fn f64_codec_order(a in -1e300f64..1e300, b in -1e300f64..1e300) {
        prop_assert_eq!(dec_f64(&enc_f64(a)), a);
        prop_assert_eq!(enc_f64(a) < enc_f64(b), a < b);
    }

    /// Escaped byte strings round-trip through composite keys, and their
    /// encoded order matches lexicographic order.
    #[test]
    fn string_field_roundtrip_and_order(
        a in proptest::collection::vec(any::<u8>(), 0..40),
        b in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let enc = |v: &[u8]| {
            let mut kb = KeyBuilder::new();
            kb.push_bytes(v);
            kb.finish()
        };
        let (ea, eb) = (enc(&a), enc(&b));
        let mut r = KeyReader::new(&ea);
        prop_assert_eq!(r.read_bytes(), a.clone());
        prop_assert!(r.is_exhausted());
        prop_assert_eq!(ea.cmp(&eb), a.cmp(&b));
    }

    /// Composite keys compare field-by-field.
    #[test]
    fn composite_key_order(a1: i64, a2 in proptest::collection::vec(any::<u8>(), 0..16),
                           b1: i64, b2 in proptest::collection::vec(any::<u8>(), 0..16)) {
        let enc = |x: i64, s: &[u8]| {
            let mut kb = KeyBuilder::new();
            kb.push_i64(x).push_bytes(s);
            kb.finish()
        };
        let expected = (a1, a2.clone()).cmp(&(b1, b2.clone()));
        prop_assert_eq!(enc(a1, &a2).cmp(&enc(b1, &b2)), expected);
    }

    /// The kv frame codec round-trips arbitrary pair sequences.
    #[test]
    fn kv_frames_roundtrip(pairs in proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 0..20),
         proptest::collection::vec(any::<u8>(), 0..20)), 0..50)) {
        let mut buf = Vec::new();
        for (k, v) in &pairs {
            encode_kv(&mut buf, k, v);
        }
        let mut c = KvCursor::new(Bytes::from(buf));
        let mut out = Vec::new();
        while let Some((k, v)) = c.next() {
            out.push((k.to_vec(), v.to_vec()));
        }
        prop_assert_eq!(out, pairs);
    }

    /// The external sorter emits every record exactly once, sorted within
    /// each partition, regardless of spill boundaries.
    #[test]
    fn sorter_is_complete_and_sorted(
        keys in proptest::collection::vec(any::<u32>(), 1..300),
        mem_limit in 64usize..4096,
        partitions in 1usize..5,
    ) {
        let mut sorter = ExternalSorter::new(partitions, Partitioner::Hash, Combiner::None, mem_limit);
        for &k in &keys {
            sorter.insert(&k.to_be_bytes(), b"v");
        }
        let (parts, _) = sorter.finish();
        prop_assert_eq!(parts.len(), partitions);
        let mut recovered: Vec<u32> = Vec::new();
        for p in &parts {
            let mut c = KvCursor::new(p.data.clone());
            let mut prev: Option<Vec<u8>> = None;
            while let Some((k, _)) = c.next() {
                if let Some(prev) = &prev {
                    prop_assert!(prev.as_slice() <= k.as_ref(), "partition not sorted");
                }
                recovered.push(u32::from_be_bytes(k[..4].try_into().unwrap()));
                prev = Some(k.to_vec());
            }
        }
        let mut expected = keys.clone();
        expected.sort_unstable();
        recovered.sort_unstable();
        prop_assert_eq!(recovered, expected);
    }

    /// Merging sorted runs yields a globally sorted, complete stream, and
    /// grouping never splits a key across groups.
    #[test]
    fn merge_and_group_invariants(
        runs in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 0..60), 1..6)) {
        let encoded: Vec<Bytes> = runs.iter().map(|r| {
            let mut sorted = r.clone();
            sorted.sort_unstable();
            let mut buf = Vec::new();
            for k in sorted {
                encode_kv(&mut buf, &k.to_be_bytes(), b"v");
            }
            Bytes::from(buf)
        }).collect();
        let total: usize = runs.iter().map(Vec::len).sum();

        let mut m = MergingCursor::new(encoded.iter().map(|b| KvCursor::new(b.clone())).collect());
        let mut prev: Option<Bytes> = None;
        let mut n = 0;
        while let Some((k, _)) = m.next() {
            if let Some(p) = &prev {
                prop_assert!(p <= &k);
            }
            prev = Some(k);
            n += 1;
        }
        prop_assert_eq!(n, total);

        let mut g = GroupedRunReader::new(encoded.iter().map(|b| KvCursor::new(b.clone())).collect());
        let mut seen_keys = std::collections::HashSet::new();
        let mut grouped_total = 0;
        while let Some(group) = g.next_group() {
            prop_assert!(seen_keys.insert(group.key.to_vec()), "key repeated across groups");
            grouped_total += group.values.len();
        }
        prop_assert_eq!(grouped_total, total);
    }

    /// Range partitioning respects boundaries: concatenating partitions in
    /// order yields a globally sorted sequence.
    #[test]
    fn range_partitioner_total_order(
        keys in proptest::collection::vec(any::<u32>(), 1..200),
        bounds in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let mut bounds: Vec<Vec<u8>> = bounds.iter().map(|b| b.to_be_bytes().to_vec()).collect();
        bounds.sort();
        bounds.dedup();
        let n = bounds.len() + 1;
        let mut sorter = ExternalSorter::new(
            n, Partitioner::Range(bounds), Combiner::None, 1 << 20);
        for &k in &keys {
            sorter.insert(&k.to_be_bytes(), b"v");
        }
        let (parts, _) = sorter.finish();
        let mut all: Vec<Vec<u8>> = Vec::new();
        for p in &parts {
            let mut c = KvCursor::new(p.data.clone());
            while let Some((k, _)) = c.next() {
                all.push(k.to_vec());
            }
        }
        prop_assert_eq!(all.len(), keys.len());
        prop_assert!(all.windows(2).all(|w| w[0] <= w[1]), "global order broken");
    }

    /// SumU64 combining never changes the per-key totals.
    #[test]
    fn combiner_preserves_totals(
        pairs in proptest::collection::vec((any::<u8>(), 1u64..100), 1..200),
        mem_limit in 64usize..1024,
    ) {
        let mut sorter = ExternalSorter::new(1, Partitioner::Single, Combiner::SumU64, mem_limit);
        let mut expected: std::collections::BTreeMap<u8, u64> = Default::default();
        for &(k, v) in &pairs {
            sorter.insert(&[k], &v.to_le_bytes());
            *expected.entry(k).or_insert(0) += v;
        }
        let (parts, _) = sorter.finish();
        let mut got: std::collections::BTreeMap<u8, u64> = Default::default();
        let mut c = KvCursor::new(parts[0].data.clone());
        while let Some((k, v)) = c.next() {
            *got.entry(k[0]).or_insert(0) += u64::from_le_bytes(v[..8].try_into().unwrap());
        }
        prop_assert_eq!(got, expected);
    }
}
