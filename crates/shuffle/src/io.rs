//! Built-in input/output implementations (the "runtime library" of §4.1).
//!
//! Pairings (compatibility is format + transport, paper §3.1):
//!
//! | edge pattern    | producer output                  | consumer input            |
//! |-----------------|----------------------------------|---------------------------|
//! | scatter-gather  | [`OrderedPartitionedKvOutput`]   | [`ShuffledMergedKvInput`] |
//! | broadcast       | [`UnorderedKvOutput`]            | [`UnorderedKvInput`]      |
//! | one-to-one      | [`UnorderedKvOutput`]            | [`UnorderedKvInput`]      |
//! | root input      | —                                | [`DfsInput`]              |
//! | leaf output     | [`DfsOutput`] (+ `DfsCommitter`) | —                         |

use crate::codec::{encode_kv, KvCursor};
use crate::merge::GroupedRunReader;
use crate::sorter::{Combiner, ExternalSorter, Partitioner};
use bytes::Bytes;
use tez_dag::{
    DataMovement, EdgeProperty, NamedDescriptor, PayloadReader, PayloadWriter, UserPayload,
};
use tez_runtime::{
    CommitEnv, ComponentRegistry, InputReader, InputSource, InputSpec, LogicalInput, LogicalOutput,
    OutputCommit, OutputCommitter, OutputSpec, PartitionBuf, ShardLocator, SinkArtifact, TaskEnv,
    TaskError,
};

/// Registry kinds of the built-in components.
pub mod kinds {
    /// Sorted, partitioned edge output (scatter-gather producer side).
    pub const ORDERED_OUT: &str = "tez.OrderedPartitionedKvOutput";
    /// Merged, grouped edge input (scatter-gather consumer side).
    pub const SHUFFLED_IN: &str = "tez.ShuffledMergedKvInput";
    /// Unsorted partitioned edge output (broadcast / one-to-one producer).
    pub const UNORDERED_OUT: &str = "tez.UnorderedKvOutput";
    /// Flat edge input (broadcast / one-to-one consumer).
    pub const UNORDERED_IN: &str = "tez.UnorderedKvInput";
    /// Root input reading key-value framed DFS blocks.
    pub const DFS_IN: &str = "tez.DfsInput";
    /// Leaf output writing key-value framed part files to the DFS.
    pub const DFS_OUT: &str = "tez.DfsOutput";
    /// Committer concatenating part files into the target DFS path.
    pub const DFS_COMMITTER: &str = "tez.DfsCommitter";
}

// ---------------------------------------------------------------------------
// Output payload encoding
// ---------------------------------------------------------------------------

/// Encode the configuration of an ordered/unordered output.
pub fn output_payload(partitioner: &Partitioner, combiner: Combiner) -> UserPayload {
    let mut w = PayloadWriter::new();
    match partitioner {
        Partitioner::Hash => {
            w.put_u64(0);
        }
        Partitioner::Range(bounds) => {
            w.put_u64(1);
            w.put_u64(bounds.len() as u64);
            for b in bounds {
                w.put_bytes(b);
            }
        }
        Partitioner::Single => {
            w.put_u64(2);
        }
    }
    w.put_u64(match combiner {
        Combiner::None => 0,
        Combiner::SumU64 => 1,
    });
    w.finish()
}

/// Decode an output configuration payload; empty payload means hash
/// partitioning with no combiner. Unknown tags are a [`TaskError::Corrupt`]
/// (a version-skewed or garbled descriptor), surfaced through the task's
/// normal failure path instead of aborting the container.
pub fn parse_output_payload(payload: &[u8]) -> Result<(Partitioner, Combiner), TaskError> {
    if payload.is_empty() {
        return Ok((Partitioner::Hash, Combiner::None));
    }
    let mut r = PayloadReader::new(payload);
    let partitioner = match r.get_u64() {
        0 => Partitioner::Hash,
        1 => {
            let n = r.get_u64() as usize;
            let bounds = (0..n).map(|_| r.get_bytes().to_vec()).collect();
            Partitioner::Range(bounds)
        }
        2 => Partitioner::Single,
        t => return Err(TaskError::Corrupt(format!("unknown partitioner tag {t}"))),
    };
    let combiner = match r.get_u64() {
        0 => Combiner::None,
        1 => Combiner::SumU64,
        t => return Err(TaskError::Corrupt(format!("unknown combiner tag {t}"))),
    };
    Ok((partitioner, combiner))
}

// ---------------------------------------------------------------------------
// Edge outputs
// ---------------------------------------------------------------------------

/// Default sorter memory budget per task (bytes of buffered pairs).
pub const DEFAULT_SORT_MEM: usize = 8 << 20;

/// Sorted, partitioned output: the scatter-gather producer side.
pub struct OrderedPartitionedKvOutput {
    sorter: Option<ExternalSorter>,
    num_partitions: usize,
    started_writing: bool,
}

impl OrderedPartitionedKvOutput {
    /// Build from an output spec (payload via [`output_payload`]).
    pub fn from_spec(spec: &OutputSpec) -> Result<Self, TaskError> {
        let (partitioner, combiner) = parse_output_payload(spec.descriptor.payload.as_bytes())?;
        Ok(OrderedPartitionedKvOutput {
            sorter: Some(ExternalSorter::new(
                spec.num_partitions,
                partitioner,
                combiner,
                DEFAULT_SORT_MEM,
            )),
            num_partitions: spec.num_partitions,
            started_writing: false,
        })
    }
}

impl LogicalOutput for OrderedPartitionedKvOutput {
    fn write(&mut self, key: &[u8], value: &[u8]) -> Result<(), TaskError> {
        self.started_writing = true;
        self.sorter
            .as_mut()
            .expect("write after close")
            .insert(key, value);
        Ok(())
    }

    fn close(&mut self, _env: &mut TaskEnv<'_>) -> Result<OutputCommit, TaskError> {
        let (partitions, spilled_bytes) = self.sorter.take().expect("double close").finish();
        Ok(OutputCommit {
            partitions,
            sink: None,
            spilled_bytes,
        })
    }

    fn reconfigure(&mut self, payload: &[u8]) -> Result<(), TaskError> {
        if self.started_writing {
            return Err(TaskError::Fatal(
                "cannot reconfigure an output after writing to it".into(),
            ));
        }
        let (partitioner, combiner) = parse_output_payload(payload)?;
        self.sorter = Some(ExternalSorter::new(
            self.num_partitions,
            partitioner,
            combiner,
            DEFAULT_SORT_MEM,
        ));
        Ok(())
    }
}

/// Unsorted partitioned output: broadcast and one-to-one producer side.
pub struct UnorderedKvOutput {
    partitioner: Partitioner,
    buffers: Vec<Vec<u8>>,
    records: Vec<u64>,
}

impl UnorderedKvOutput {
    /// Build from an output spec.
    pub fn from_spec(spec: &OutputSpec) -> Result<Self, TaskError> {
        let (partitioner, _) = parse_output_payload(spec.descriptor.payload.as_bytes())?;
        let n = spec.num_partitions.max(1);
        Ok(UnorderedKvOutput {
            partitioner,
            buffers: vec![Vec::new(); n],
            records: vec![0; n],
        })
    }
}

impl LogicalOutput for UnorderedKvOutput {
    fn write(&mut self, key: &[u8], value: &[u8]) -> Result<(), TaskError> {
        let p = self.partitioner.partition(key, self.buffers.len()) as usize;
        encode_kv(&mut self.buffers[p], key, value);
        self.records[p] += 1;
        Ok(())
    }

    fn close(&mut self, _env: &mut TaskEnv<'_>) -> Result<OutputCommit, TaskError> {
        let partitions = self
            .buffers
            .drain(..)
            .zip(self.records.drain(..))
            .map(|(data, records)| PartitionBuf {
                data: Bytes::from(data),
                records,
                sorted: false,
            })
            .collect();
        Ok(OutputCommit {
            partitions,
            sink: None,
            spilled_bytes: 0,
        })
    }

    fn reconfigure(&mut self, payload: &[u8]) -> Result<(), TaskError> {
        if self.records.iter().any(|&r| r > 0) {
            return Err(TaskError::Fatal(
                "cannot reconfigure an output after writing to it".into(),
            ));
        }
        let (partitioner, _) = parse_output_payload(payload)?;
        self.partitioner = partitioner;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Edge inputs
// ---------------------------------------------------------------------------

fn shards_of(spec: &InputSpec) -> Result<Vec<ShardLocator>, TaskError> {
    match &spec.source {
        InputSource::Shards(s) => Ok(s.clone()),
        InputSource::Split(_) => Err(TaskError::Corrupt(format!(
            "edge input {} constructed with a root split",
            spec.descriptor.kind
        ))),
    }
}

fn fetch_all(
    locators: &[ShardLocator],
    env: &mut TaskEnv<'_>,
    vertex_hint: &str,
) -> Result<(Vec<Bytes>, u64, u64, u64), TaskError> {
    let mut shards = Vec::with_capacity(locators.len());
    let mut errors = Vec::new();
    let (mut bytes, mut remote, mut records) = (0u64, 0u64, 0u64);
    for locator in locators {
        match env.fetch(locator) {
            Ok(s) => {
                bytes += s.data.len() as u64;
                if s.remote {
                    remote += s.data.len() as u64;
                }
                records += s.records;
                shards.push(s.data);
            }
            Err(e) => errors.push(tez_runtime::InputReadError {
                locator: e.locator,
                consumer_vertex: vertex_hint.to_string(),
                consumer_task: 0,
            }),
        }
    }
    if !errors.is_empty() {
        return Err(TaskError::InputRead(errors));
    }
    Ok((shards, bytes, remote, records))
}

/// Merged, grouped input: the scatter-gather consumer side. Fetches every
/// physical input shard, then exposes a single sorted, key-grouped stream.
pub struct ShuffledMergedKvInput {
    locators: Vec<ShardLocator>,
    src_vertex: String,
    shards: Vec<Bytes>,
    fetched: u64,
    bytes: u64,
    remote: u64,
    records: u64,
}

impl ShuffledMergedKvInput {
    /// Build from an input spec.
    pub fn from_spec(spec: &InputSpec) -> Result<Self, TaskError> {
        Ok(ShuffledMergedKvInput {
            locators: shards_of(spec)?,
            src_vertex: spec.name.clone(),
            shards: Vec::new(),
            fetched: 0,
            bytes: 0,
            remote: 0,
            records: 0,
        })
    }
}

impl LogicalInput for ShuffledMergedKvInput {
    fn start(&mut self, env: &mut TaskEnv<'_>) -> Result<(), TaskError> {
        let (shards, bytes, remote, records) = fetch_all(&self.locators, env, &self.src_vertex)?;
        // Counted here: reader() drains `shards`, so the length is only
        // trustworthy at fetch time.
        self.fetched = shards.len() as u64;
        self.shards = shards;
        self.bytes = bytes;
        self.remote = remote;
        self.records = records;
        Ok(())
    }

    fn reader(&mut self) -> Result<InputReader, TaskError> {
        let runs = std::mem::take(&mut self.shards)
            .into_iter()
            .map(KvCursor::new)
            .collect();
        Ok(InputReader::Grouped(Box::new(GroupedRunReader::new(runs))))
    }

    fn bytes_read(&self) -> u64 {
        self.bytes
    }

    fn records_read(&self) -> u64 {
        self.records
    }

    fn remote_bytes(&self) -> u64 {
        self.remote
    }

    fn shards_fetched(&self) -> u64 {
        self.fetched
    }
}

/// Flat concatenated input: broadcast and one-to-one consumer side.
pub struct UnorderedKvInput {
    locators: Vec<ShardLocator>,
    src_vertex: String,
    shards: Vec<Bytes>,
    fetched: u64,
    bytes: u64,
    remote: u64,
    records: u64,
}

impl UnorderedKvInput {
    /// Build from an input spec.
    pub fn from_spec(spec: &InputSpec) -> Result<Self, TaskError> {
        Ok(UnorderedKvInput {
            locators: shards_of(spec)?,
            src_vertex: spec.name.clone(),
            shards: Vec::new(),
            fetched: 0,
            bytes: 0,
            remote: 0,
            records: 0,
        })
    }
}

/// Flat reader chaining multiple framed buffers.
struct ChainedCursor {
    cursors: Vec<KvCursor>,
    idx: usize,
}

impl tez_runtime::KvReader for ChainedCursor {
    fn next(&mut self) -> Option<(Bytes, Bytes)> {
        while self.idx < self.cursors.len() {
            if let Some(pair) = self.cursors[self.idx].next() {
                return Some(pair);
            }
            self.idx += 1;
        }
        None
    }
}

impl LogicalInput for UnorderedKvInput {
    fn start(&mut self, env: &mut TaskEnv<'_>) -> Result<(), TaskError> {
        let (shards, bytes, remote, records) = fetch_all(&self.locators, env, &self.src_vertex)?;
        // Counted here: reader() drains `shards`, so the length is only
        // trustworthy at fetch time.
        self.fetched = shards.len() as u64;
        self.shards = shards;
        self.bytes = bytes;
        self.remote = remote;
        self.records = records;
        Ok(())
    }

    fn reader(&mut self) -> Result<InputReader, TaskError> {
        let cursors = std::mem::take(&mut self.shards)
            .into_iter()
            .map(KvCursor::new)
            .collect();
        Ok(InputReader::KeyValue(Box::new(ChainedCursor {
            cursors,
            idx: 0,
        })))
    }

    fn bytes_read(&self) -> u64 {
        self.bytes
    }

    fn records_read(&self) -> u64 {
        self.records
    }

    fn remote_bytes(&self) -> u64 {
        self.remote
    }

    fn shards_fetched(&self) -> u64 {
        self.fetched
    }
}

// ---------------------------------------------------------------------------
// Root input / leaf output
// ---------------------------------------------------------------------------

/// Split payload of a [`DfsInput`]: a file path plus block indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitPayload {
    /// File path.
    pub path: String,
    /// Block indices covered by this split.
    pub blocks: Vec<usize>,
}

impl SplitPayload {
    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = PayloadWriter::new();
        w.put_str(&self.path);
        w.put_u64(self.blocks.len() as u64);
        for &b in &self.blocks {
            w.put_u64(b as u64);
        }
        w.finish_bytes()
    }

    /// Decode from bytes.
    pub fn decode(data: &[u8]) -> Self {
        let mut r = PayloadReader::new(data);
        let path = r.get_str().to_string();
        let n = r.get_u64() as usize;
        let blocks = (0..n).map(|_| r.get_u64() as usize).collect();
        SplitPayload { path, blocks }
    }
}

/// Root input reading key-value framed blocks from the DFS.
pub struct DfsInput {
    split: SplitPayload,
    shards: Vec<Bytes>,
    bytes: u64,
    records: u64,
}

impl DfsInput {
    /// Build from an input spec whose source must be a split.
    pub fn from_spec(spec: &InputSpec) -> Result<Self, TaskError> {
        let split = match &spec.source {
            InputSource::Split(p) => SplitPayload::decode(p),
            InputSource::Shards(_) => {
                return Err(TaskError::Corrupt(
                    "DfsInput constructed with edge shards".into(),
                ))
            }
        };
        Ok(DfsInput {
            split,
            shards: Vec::new(),
            bytes: 0,
            records: 0,
        })
    }
}

impl LogicalInput for DfsInput {
    fn start(&mut self, env: &mut TaskEnv<'_>) -> Result<(), TaskError> {
        if self.split.path.is_empty() && self.split.blocks.is_empty() {
            return Ok(()); // synthetic empty split
        }
        let meta = env.dfs.list_blocks(&self.split.path).ok_or_else(|| {
            TaskError::failed(format!("input file {:?} not found", self.split.path))
        })?;
        for &b in &self.split.blocks {
            let data = env.dfs.read_block(&self.split.path, b).ok_or_else(|| {
                TaskError::failed(format!(
                    "block {b} of {:?} unreadable (replicas lost)",
                    self.split.path
                ))
            })?;
            self.bytes += data.len() as u64;
            self.records += meta.get(b).map_or(0, |m| m.records);
            self.shards.push(data);
        }
        Ok(())
    }

    fn reader(&mut self) -> Result<InputReader, TaskError> {
        let cursors = std::mem::take(&mut self.shards)
            .into_iter()
            .map(KvCursor::new)
            .collect();
        Ok(InputReader::KeyValue(Box::new(ChainedCursor {
            cursors,
            idx: 0,
        })))
    }

    fn bytes_read(&self) -> u64 {
        self.bytes
    }

    fn records_read(&self) -> u64 {
        self.records
    }
}

/// Leaf output writing one part file of key-value frames, committed by
/// [`DfsCommitter`] when the DAG succeeds.
pub struct DfsOutput {
    path: String,
    part: String,
    buf: Vec<u8>,
    records: u64,
}

impl DfsOutput {
    /// Build from an output spec; the payload is the target path string.
    pub fn from_spec(spec: &OutputSpec) -> Result<Self, TaskError> {
        let path = String::from_utf8(spec.descriptor.payload.as_bytes().to_vec())
            .map_err(|_| TaskError::Corrupt("DfsOutput path payload is not UTF-8".into()))?;
        Ok(DfsOutput {
            path,
            part: format!("part-{}-{:05}", spec.vertex, spec.task_index),
            buf: Vec::new(),
            records: 0,
        })
    }
}

impl LogicalOutput for DfsOutput {
    fn write(&mut self, key: &[u8], value: &[u8]) -> Result<(), TaskError> {
        encode_kv(&mut self.buf, key, value);
        self.records += 1;
        Ok(())
    }

    fn close(&mut self, _env: &mut TaskEnv<'_>) -> Result<OutputCommit, TaskError> {
        Ok(OutputCommit {
            partitions: Vec::new(),
            sink: Some(SinkArtifact {
                path: self.path.clone(),
                part: self.part.clone(),
                blocks: vec![(Bytes::from(std::mem::take(&mut self.buf)), self.records)],
            }),
            spilled_bytes: 0,
        })
    }
}

/// Committer concatenating part files (in part order) into the target path.
#[derive(Default)]
pub struct DfsCommitter;

impl OutputCommitter for DfsCommitter {
    fn commit(
        &mut self,
        artifacts: &[SinkArtifact],
        env: &mut CommitEnv<'_>,
    ) -> Result<(), TaskError> {
        let mut by_path: std::collections::BTreeMap<&str, Vec<&SinkArtifact>> =
            std::collections::BTreeMap::new();
        for a in artifacts {
            by_path.entry(a.path.as_str()).or_default().push(a);
        }
        for (path, mut parts) in by_path {
            parts.sort_by(|a, b| a.part.cmp(&b.part));
            let blocks: Vec<(Bytes, u64)> = parts
                .iter()
                .flat_map(|a| a.blocks.iter().cloned())
                .filter(|(d, _)| !d.is_empty())
                .collect();
            env.dfs.write_file(path, blocks);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Edge property helpers + registration
// ---------------------------------------------------------------------------

/// Scatter-gather edge using the built-in sorted shuffle.
pub fn scatter_gather_edge(combiner: Combiner) -> EdgeProperty {
    EdgeProperty::new(
        DataMovement::ScatterGather,
        NamedDescriptor::with_payload(
            kinds::ORDERED_OUT,
            output_payload(&Partitioner::Hash, combiner),
        ),
        NamedDescriptor::new(kinds::SHUFFLED_IN),
    )
}

/// Broadcast edge using the built-in unordered IO.
pub fn broadcast_edge() -> EdgeProperty {
    EdgeProperty::new(
        DataMovement::Broadcast,
        NamedDescriptor::with_payload(
            kinds::UNORDERED_OUT,
            output_payload(&Partitioner::Single, Combiner::None),
        ),
        NamedDescriptor::new(kinds::UNORDERED_IN),
    )
}

/// One-to-one edge using the built-in unordered IO.
pub fn one_to_one_edge() -> EdgeProperty {
    EdgeProperty::new(
        DataMovement::OneToOne,
        NamedDescriptor::with_payload(
            kinds::UNORDERED_OUT,
            output_payload(&Partitioner::Single, Combiner::None),
        ),
        NamedDescriptor::new(kinds::UNORDERED_IN),
    )
}

/// Register every built-in IO kind with a registry.
pub fn register_builtins(registry: &mut ComponentRegistry) {
    registry
        .register_output(kinds::ORDERED_OUT, |spec| {
            Ok(Box::new(OrderedPartitionedKvOutput::from_spec(spec)?) as _)
        })
        .register_output(kinds::UNORDERED_OUT, |spec| {
            Ok(Box::new(UnorderedKvOutput::from_spec(spec)?) as _)
        })
        .register_output(kinds::DFS_OUT, |spec| {
            Ok(Box::new(DfsOutput::from_spec(spec)?) as _)
        })
        .register_input(kinds::SHUFFLED_IN, |spec| {
            Ok(Box::new(ShuffledMergedKvInput::from_spec(spec)?) as _)
        })
        .register_input(kinds::UNORDERED_IN, |spec| {
            Ok(Box::new(UnorderedKvInput::from_spec(spec)?) as _)
        })
        .register_input(kinds::DFS_IN, |spec| {
            Ok(Box::new(DfsInput::from_spec(spec)?) as _)
        })
        .register_committer(kinds::DFS_COMMITTER, |_p| Box::<DfsCommitter>::default());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DataService;
    use tez_runtime::{Dfs, MemDfs, NullObjectRegistry, SecurityToken};

    const TOKEN: SecurityToken = SecurityToken(7);

    struct Fetcher {
        svc: crate::service::SharedDataService,
        node: u32,
    }
    impl tez_runtime::DataFetcher for Fetcher {
        fn fetch(
            &self,
            locator: &ShardLocator,
            token: SecurityToken,
        ) -> Result<tez_runtime::FetchedShard, tez_runtime::FetchError> {
            self.svc.fetch_from(self.node, locator, token)
        }
    }

    fn env_parts() -> (crate::service::SharedDataService, MemDfs) {
        let svc = DataService::new();
        svc.register_token(TOKEN);
        (svc, MemDfs::new())
    }

    fn out_spec(kind: &str, payload: UserPayload, partitions: usize) -> OutputSpec {
        OutputSpec {
            name: "next".into(),
            descriptor: NamedDescriptor::with_payload(kind, payload),
            num_partitions: partitions,
            is_sink: kind == kinds::DFS_OUT,
            task_index: 0,
            vertex: "v".into(),
        }
    }

    fn run_env<'a>(
        fetcher: &'a Fetcher,
        dfs: &'a MemDfs,
        registry: &'a NullObjectRegistry,
    ) -> TaskEnv<'a> {
        TaskEnv {
            fetcher,
            dfs,
            registry,
            token: TOKEN,
        }
    }

    #[test]
    fn ordered_output_to_shuffled_input_roundtrip() {
        let (svc, dfs) = env_parts();
        let fetcher = Fetcher {
            svc: svc.clone(),
            node: 1,
        };
        let reg = NullObjectRegistry;

        // Two producers write overlapping keys across 2 partitions.
        let mut locs_per_partition: Vec<Vec<ShardLocator>> = vec![vec![], vec![]];
        for producer in 0..2u64 {
            let mut out = OrderedPartitionedKvOutput::from_spec(&out_spec(
                kinds::ORDERED_OUT,
                output_payload(&Partitioner::Hash, Combiner::None),
                2,
            ))
            .unwrap();
            for i in 0..10u64 {
                out.write(format!("k{:02}", i).as_bytes(), &producer.to_le_bytes())
                    .unwrap();
            }
            let mut env = run_env(&fetcher, &dfs, &reg);
            let commit = out.close(&mut env).unwrap();
            assert_eq!(commit.partitions.len(), 2);
            let oid = svc.new_output_id();
            let locs = svc.publish(0, oid, commit.partitions);
            for (p, l) in locs.into_iter().enumerate() {
                locs_per_partition[p].push(l);
            }
        }

        // Consumer for partition 0 merges both producers' shards.
        let spec = InputSpec {
            name: "prev".into(),
            descriptor: NamedDescriptor::new(kinds::SHUFFLED_IN),
            source: InputSource::Shards(locs_per_partition[0].clone()),
        };
        let mut input = ShuffledMergedKvInput::from_spec(&spec).unwrap();
        let mut env = run_env(&fetcher, &dfs, &reg);
        input.start(&mut env).unwrap();
        assert!(
            input.remote_bytes() > 0,
            "producer on node 0, consumer on 1"
        );
        let mut grouped = input.reader().unwrap().into_grouped().unwrap();
        let mut groups = 0;
        let mut last_key: Option<Bytes> = None;
        while let Some(g) = grouped.next_group() {
            assert_eq!(g.values.len(), 2, "one value from each producer");
            if let Some(prev) = &last_key {
                assert!(prev < &g.key);
            }
            last_key = Some(g.key);
            groups += 1;
        }
        assert!(groups > 0);
    }

    #[test]
    fn combiner_in_output_payload_sums() {
        let (svc, dfs) = env_parts();
        let fetcher = Fetcher { svc, node: 0 };
        let reg = NullObjectRegistry;
        let mut out = OrderedPartitionedKvOutput::from_spec(&out_spec(
            kinds::ORDERED_OUT,
            output_payload(&Partitioner::Single, Combiner::SumU64),
            1,
        ))
        .unwrap();
        for _ in 0..5 {
            out.write(b"w", &1u64.to_le_bytes()).unwrap();
        }
        let mut env = run_env(&fetcher, &dfs, &reg);
        let commit = out.close(&mut env).unwrap();
        assert_eq!(commit.partitions[0].records, 1);
        let mut c = KvCursor::new(commit.partitions[0].data.clone());
        let (_, v) = c.next().unwrap();
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 5);
    }

    #[test]
    fn reconfigure_installs_range_partitioner() {
        let (svc, dfs) = env_parts();
        let fetcher = Fetcher { svc, node: 0 };
        let reg = NullObjectRegistry;
        let mut out = OrderedPartitionedKvOutput::from_spec(&out_spec(
            kinds::ORDERED_OUT,
            output_payload(&Partitioner::Hash, Combiner::None),
            2,
        ))
        .unwrap();
        let bounds = Partitioner::Range(vec![b"m".to_vec()]);
        out.reconfigure(output_payload(&bounds, Combiner::None).as_bytes())
            .unwrap();
        out.write(b"a", b"").unwrap();
        out.write(b"z", b"").unwrap();
        // Reconfiguration after writing is rejected.
        assert!(out
            .reconfigure(output_payload(&bounds, Combiner::None).as_bytes())
            .is_err());
        let mut env = run_env(&fetcher, &dfs, &reg);
        let commit = out.close(&mut env).unwrap();
        assert_eq!(commit.partitions[0].records, 1);
        assert_eq!(commit.partitions[1].records, 1);
    }

    #[test]
    fn unordered_roundtrip_and_fetch_error() {
        let (svc, dfs) = env_parts();
        let fetcher = Fetcher {
            svc: svc.clone(),
            node: 2,
        };
        let reg = NullObjectRegistry;
        let mut out = UnorderedKvOutput::from_spec(&out_spec(
            kinds::UNORDERED_OUT,
            output_payload(&Partitioner::Single, Combiner::None),
            1,
        ))
        .unwrap();
        out.write(b"x", b"1").unwrap();
        let mut env = run_env(&fetcher, &dfs, &reg);
        let commit = out.close(&mut env).unwrap();
        let oid = svc.new_output_id();
        let mut locs = svc.publish(2, oid, commit.partitions);

        // Happy path.
        let spec = InputSpec {
            name: "src".into(),
            descriptor: NamedDescriptor::new(kinds::UNORDERED_IN),
            source: InputSource::Shards(locs.clone()),
        };
        let mut input = UnorderedKvInput::from_spec(&spec).unwrap();
        let mut env = run_env(&fetcher, &dfs, &reg);
        input.start(&mut env).unwrap();
        assert_eq!(input.remote_bytes(), 0, "same node fetch is local");
        let pairs = input.reader().unwrap().collect_pairs();
        assert_eq!(pairs.len(), 1);

        // Losing the node turns the fetch into an InputRead error.
        svc.drop_node(2);
        locs[0].partition = 0;
        let spec = InputSpec {
            name: "src".into(),
            descriptor: NamedDescriptor::new(kinds::UNORDERED_IN),
            source: InputSource::Shards(locs),
        };
        let mut input = UnorderedKvInput::from_spec(&spec).unwrap();
        let mut env = run_env(&fetcher, &dfs, &reg);
        match input.start(&mut env) {
            Err(TaskError::InputRead(errs)) => assert_eq!(errs.len(), 1),
            other => panic!("expected InputRead, got {other:?}"),
        }
    }

    #[test]
    fn dfs_input_reads_split_blocks() {
        let (svc, dfs) = env_parts();
        let fetcher = Fetcher { svc, node: 0 };
        let reg = NullObjectRegistry;
        let mut b0 = Vec::new();
        encode_kv(&mut b0, b"a", b"1");
        let mut b1 = Vec::new();
        encode_kv(&mut b1, b"b", b"2");
        encode_kv(&mut b1, b"c", b"3");
        dfs.write_file("/t", vec![(Bytes::from(b0), 1), (Bytes::from(b1), 2)]);

        let split = SplitPayload {
            path: "/t".into(),
            blocks: vec![1],
        };
        let spec = InputSpec {
            name: "t".into(),
            descriptor: NamedDescriptor::new(kinds::DFS_IN),
            source: InputSource::Split(split.encode()),
        };
        let mut input = DfsInput::from_spec(&spec).unwrap();
        let mut env = run_env(&fetcher, &dfs, &reg);
        input.start(&mut env).unwrap();
        assert_eq!(input.records_read(), 2);
        let pairs = input.reader().unwrap().collect_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0.as_ref(), b"b");
    }

    #[test]
    fn split_payload_roundtrip() {
        let s = SplitPayload {
            path: "/warehouse/lineitem".into(),
            blocks: vec![0, 5, 9],
        };
        assert_eq!(SplitPayload::decode(&s.encode()), s);
    }

    #[test]
    fn dfs_output_commit_via_committer() {
        let (svc, dfs) = env_parts();
        let fetcher = Fetcher { svc, node: 0 };
        let reg = NullObjectRegistry;
        let mut artifacts = Vec::new();
        for task in [1usize, 0] {
            let spec = OutputSpec {
                name: "out".into(),
                descriptor: NamedDescriptor::with_payload(
                    kinds::DFS_OUT,
                    UserPayload::from_str("/result"),
                ),
                num_partitions: 1,
                is_sink: true,
                task_index: task,
                vertex: "v".into(),
            };
            let mut out = DfsOutput::from_spec(&spec).unwrap();
            out.write(format!("t{task}").as_bytes(), b"v").unwrap();
            let mut env = run_env(&fetcher, &dfs, &reg);
            artifacts.push(out.close(&mut env).unwrap().sink.unwrap());
        }
        let mut committer = DfsCommitter;
        let mut env = CommitEnv { dfs: &dfs };
        committer.commit(&artifacts, &mut env).unwrap();
        let blocks = dfs.list_blocks("/result").unwrap();
        assert_eq!(blocks.len(), 2);
        // Part ordering: task 0's block first despite commit order.
        let first = dfs.read_block("/result", 0).unwrap();
        let mut c = KvCursor::new(first);
        assert_eq!(c.next().unwrap().0.as_ref(), b"t0");
    }

    #[test]
    fn unknown_payload_tags_are_corrupt_errors() {
        let mut w = PayloadWriter::new();
        w.put_u64(9); // no such partitioner
        let bad = w.finish();
        assert!(matches!(
            parse_output_payload(bad.as_bytes()),
            Err(TaskError::Corrupt(_))
        ));
        let mut w = PayloadWriter::new();
        w.put_u64(0); // hash partitioner
        w.put_u64(7); // no such combiner
        let bad = w.finish();
        assert!(matches!(
            parse_output_payload(bad.as_bytes()),
            Err(TaskError::Corrupt(_))
        ));
        // The registry surfaces the same error from the factory.
        let mut r = ComponentRegistry::new();
        register_builtins(&mut r);
        let mut w = PayloadWriter::new();
        w.put_u64(9);
        let spec = out_spec(kinds::ORDERED_OUT, w.finish(), 2);
        assert!(matches!(r.create_output(&spec), Err(TaskError::Corrupt(_))));
    }

    #[test]
    fn registry_registration_resolves_all_kinds() {
        let mut r = ComponentRegistry::new();
        register_builtins(&mut r);
        let spec = out_spec(
            kinds::ORDERED_OUT,
            output_payload(&Partitioner::Hash, Combiner::None),
            3,
        );
        assert!(r.create_output(&spec).is_ok());
        assert!(r
            .create_committer(kinds::DFS_COMMITTER, &UserPayload::empty())
            .is_ok());
    }
}
