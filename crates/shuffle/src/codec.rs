//! Order-preserving byte encodings and the key-value frame format.
//!
//! Byte-wise (`memcmp`) comparison of encoded keys must equal the natural
//! ordering of the typed values, so the external sorter and merger never
//! need type information — the property every built-in IO relies on.
//!
//! Encodings:
//! * `u64` — big-endian.
//! * `i64` — sign bit flipped, then big-endian.
//! * `f64` — IEEE total order trick: positive floats get the sign bit set,
//!   negative floats are bitwise inverted.
//! * strings — raw bytes with `0x00 → 0x00 0x01` escaping, terminated by
//!   `0x00 0x00`, so shorter prefixes sort first and composite keys remain
//!   order-preserving.

use bytes::Bytes;

/// Encode a `u64`.
pub fn enc_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decode a `u64`.
pub fn dec_u64(b: &[u8]) -> u64 {
    u64::from_be_bytes(b[..8].try_into().expect("u64 needs 8 bytes"))
}

/// Encode an `i64` order-preservingly.
pub fn enc_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Decode an `i64`.
pub fn dec_i64(b: &[u8]) -> i64 {
    (u64::from_be_bytes(b[..8].try_into().expect("i64 needs 8 bytes")) ^ (1 << 63)) as i64
}

/// Encode an `f64` order-preservingly (NaN sorts above everything).
pub fn enc_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let flipped = if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    };
    flipped.to_be_bytes()
}

/// Decode an `f64`.
pub fn dec_f64(b: &[u8]) -> f64 {
    let flipped = u64::from_be_bytes(b[..8].try_into().expect("f64 needs 8 bytes"));
    let bits = if flipped & (1 << 63) != 0 {
        flipped & !(1 << 63)
    } else {
        !flipped
    };
    f64::from_bits(bits)
}

/// Builds composite order-preserving keys.
#[derive(Default)]
pub struct KeyBuilder {
    buf: Vec<u8>,
}

impl KeyBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u64` field.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&enc_u64(v));
        self
    }

    /// Append an `i64` field.
    pub fn push_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&enc_i64(v));
        self
    }

    /// Append an `f64` field.
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&enc_f64(v));
        self
    }

    /// Append an escaped, terminated string field.
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_bytes(s.as_bytes())
    }

    /// Append escaped, terminated raw bytes.
    pub fn push_bytes(&mut self, b: &[u8]) -> &mut Self {
        for &byte in b {
            if byte == 0 {
                self.buf.push(0);
                self.buf.push(1);
            } else {
                self.buf.push(byte);
            }
        }
        self.buf.push(0);
        self.buf.push(0);
        self
    }

    /// Append a raw tag byte (not escaped; callers must keep ordering
    /// semantics in mind — used for null-ordering tags).
    pub fn push_tag(&mut self, tag: u8) -> &mut Self {
        self.buf.push(tag);
        self
    }

    /// Finish into an owned key.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decodes composite keys written by [`KeyBuilder`].
pub struct KeyReader<'a> {
    buf: &'a [u8],
}

impl<'a> KeyReader<'a> {
    /// Reader over an encoded key.
    pub fn new(buf: &'a [u8]) -> Self {
        KeyReader { buf }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (h, t) = self.buf.split_at(n);
        self.buf = t;
        h
    }

    /// Read a `u64` field.
    pub fn read_u64(&mut self) -> u64 {
        dec_u64(self.take(8))
    }

    /// Read an `i64` field.
    pub fn read_i64(&mut self) -> i64 {
        dec_i64(self.take(8))
    }

    /// Read an `f64` field.
    pub fn read_f64(&mut self) -> f64 {
        dec_f64(self.take(8))
    }

    /// Read an escaped string field.
    pub fn read_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut i = 0;
        loop {
            let b = self.buf[i];
            if b == 0 {
                let next = self.buf[i + 1];
                i += 2;
                if next == 0 {
                    break;
                }
                out.push(0);
            } else {
                out.push(b);
                i += 1;
            }
        }
        self.buf = &self.buf[i..];
        out
    }

    /// Read a string field.
    pub fn read_str(&mut self) -> String {
        String::from_utf8(self.read_bytes()).expect("key string is not UTF-8")
    }

    /// Read a tag byte.
    pub fn read_tag(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Whether all bytes are consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Append one key-value frame: `[u32 klen][u32 vlen][key][value]`.
pub fn encode_kv(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
}

/// Streaming cursor over a key-value framed buffer. `Bytes` slices share
/// the underlying allocation — iteration is allocation-free.
#[derive(Clone)]
pub struct KvCursor {
    data: Bytes,
    pos: usize,
}

impl KvCursor {
    /// Cursor over an encoded buffer.
    pub fn new(data: Bytes) -> Self {
        KvCursor { data, pos: 0 }
    }

    /// Next pair.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Bytes, Bytes)> {
        if self.pos >= self.data.len() {
            return None;
        }
        let klen =
            u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let vlen =
            u32::from_le_bytes(self.data[self.pos + 4..self.pos + 8].try_into().unwrap()) as usize;
        let kstart = self.pos + 8;
        let vstart = kstart + klen;
        let end = vstart + vlen;
        assert!(end <= self.data.len(), "truncated kv frame");
        let k = self.data.slice(kstart..vstart);
        let v = self.data.slice(vstart..end);
        self.pos = end;
        Some((k, v))
    }

    /// Peek the next key without consuming.
    pub fn peek_key(&self) -> Option<Bytes> {
        if self.pos >= self.data.len() {
            return None;
        }
        let klen =
            u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        Some(self.data.slice(self.pos + 8..self.pos + 8 + klen))
    }

    /// Whether the cursor is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_order_preserved() {
        let vals = [0u64, 1, 7, 255, 256, u64::MAX / 2, u64::MAX];
        for w in vals.windows(2) {
            assert!(enc_u64(w[0]) < enc_u64(w[1]));
        }
        for v in vals {
            assert_eq!(dec_u64(&enc_u64(v)), v);
        }
    }

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(enc_i64(w[0]) < enc_i64(w[1]));
        }
        for v in vals {
            assert_eq!(dec_i64(&enc_i64(v)), v);
        }
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(enc_f64(w[0]) <= enc_f64(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(dec_f64(&enc_f64(v)), v);
        }
    }

    #[test]
    fn string_escaping_roundtrip() {
        let mut kb = KeyBuilder::new();
        kb.push_bytes(b"a\x00b").push_str("tail");
        let key = kb.finish();
        let mut r = KeyReader::new(&key);
        assert_eq!(r.read_bytes(), b"a\x00b");
        assert_eq!(r.read_str(), "tail");
        assert!(r.is_exhausted());
    }

    #[test]
    fn string_prefix_sorts_first() {
        let enc = |s: &str| {
            let mut kb = KeyBuilder::new();
            kb.push_str(s);
            kb.finish()
        };
        assert!(enc("abc") < enc("abcd"));
        assert!(enc("ab") < enc("b"));
        assert!(enc("") < enc("a"));
    }

    #[test]
    fn composite_key_orders_by_fields() {
        let enc = |a: i64, b: &str| {
            let mut kb = KeyBuilder::new();
            kb.push_i64(a).push_str(b);
            kb.finish()
        };
        assert!(enc(-5, "zzz") < enc(3, "aaa"));
        assert!(enc(3, "aaa") < enc(3, "aab"));
    }

    #[test]
    fn kv_frame_roundtrip() {
        let mut buf = Vec::new();
        encode_kv(&mut buf, b"k1", b"v1");
        encode_kv(&mut buf, b"", b"only-value");
        encode_kv(&mut buf, b"k3", b"");
        let mut c = KvCursor::new(Bytes::from(buf));
        assert_eq!(c.peek_key().as_deref(), Some(&b"k1"[..]));
        assert_eq!(
            c.next().map(|(k, v)| (k.to_vec(), v.to_vec())),
            Some((b"k1".to_vec(), b"v1".to_vec()))
        );
        assert_eq!(c.next().unwrap().1.as_ref(), b"only-value");
        assert_eq!(c.next().unwrap().0.as_ref(), b"k3");
        assert!(c.next().is_none());
        assert!(c.is_empty());
    }
}
