//! # tez-shuffle — the built-in data plane
//!
//! Tez itself is *not* on the data plane: "the actual data transfer is
//! performed by the inputs and outputs with Tez only routing connection
//! information between producers and consumers" (paper §3.2). This crate is
//! the **runtime library** part of the project (paper §4.1): the built-in
//! input/output implementations that applications get out of the box, plus
//! the simulated shuffle service they talk to.
//!
//! * [`codec`] — order-preserving byte encodings for integers, floats and
//!   strings (so byte-wise key comparison equals typed comparison), and the
//!   flat key-value frame format used by every built-in IO.
//! * [`sorter`] — an external sorter with memory-bounded spills, per-spill
//!   combining and k-way merge: the producer half of the shuffle.
//! * [`merge`] — streaming k-way merge and key-grouping over sorted runs:
//!   the consumer half.
//! * [`service`] — the [`DataService`]: per-node shard storage standing in
//!   for the YARN Shuffle Service, with token-based access control and
//!   node-loss semantics (lost shards produce fetch failures that drive the
//!   re-execution fault-tolerance path).
//! * [`io`] — the built-in [`LogicalInput`](tez_runtime::LogicalInput) /
//!   [`LogicalOutput`](tez_runtime::LogicalOutput) implementations:
//!   ordered-partitioned and unordered outputs, shuffled-merged and
//!   unordered inputs, and DFS root inputs / sink outputs.
//!
//! Call [`register_builtins`] to add all built-in kinds to a
//! [`ComponentRegistry`](tez_runtime::ComponentRegistry).

pub mod codec;
pub mod io;
pub mod merge;
pub mod service;
pub mod sorter;

pub use codec::{KeyBuilder, KeyReader, KvCursor};
pub use io::{
    kinds, register_builtins, DfsInput, DfsOutput, OrderedPartitionedKvOutput,
    ShuffledMergedKvInput, SplitPayload, UnorderedKvInput, UnorderedKvOutput,
};
pub use merge::{GroupedRunReader, MergingCursor};
pub use service::{
    DataService, FetchRetry, FetchRetryPolicy, FetchSample, RetryingFetcher, SharedDataService,
};
pub use sorter::{Combiner, ExternalSorter, Partitioner};
