//! The consumer half of the shuffle: streaming k-way merge over sorted
//! runs and key-grouping on top of it.

use crate::codec::KvCursor;
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tez_runtime::{KvGroup, KvGroupReader, KvReader};

/// Heap entry: the head key of run `idx`. Ordering by (key, idx) makes the
/// merge stable across runs.
struct Head {
    key: Bytes,
    idx: usize,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.idx == other.idx
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.idx.cmp(&other.idx))
    }
}

/// Streaming k-way merge over sorted [`KvCursor`]s.
pub struct MergingCursor {
    runs: Vec<KvCursor>,
    heap: BinaryHeap<Reverse<Head>>,
}

impl MergingCursor {
    /// Merge the given sorted runs.
    pub fn new(runs: Vec<KvCursor>) -> Self {
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (idx, run) in runs.iter().enumerate() {
            if let Some(key) = run.peek_key() {
                heap.push(Reverse(Head { key, idx }));
            }
        }
        MergingCursor { runs, heap }
    }

    /// Next pair in global key order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Bytes, Bytes)> {
        let Reverse(head) = self.heap.pop()?;
        let run = &mut self.runs[head.idx];
        let (k, v) = run.next().expect("peeked key must exist");
        if let Some(next_key) = run.peek_key() {
            self.heap.push(Reverse(Head {
                key: next_key,
                idx: head.idx,
            }));
        }
        Some((k, v))
    }
}

impl KvReader for MergingCursor {
    fn next(&mut self) -> Option<(Bytes, Bytes)> {
        MergingCursor::next(self)
    }
}

/// Groups a [`MergingCursor`]'s output by key — the reader behind
/// scatter-gather inputs (MapReduce's `reduce(key, values)` view).
pub struct GroupedRunReader {
    merge: MergingCursor,
    pending: Option<(Bytes, Bytes)>,
}

impl GroupedRunReader {
    /// Group the merge of the given sorted runs.
    pub fn new(runs: Vec<KvCursor>) -> Self {
        let mut merge = MergingCursor::new(runs);
        let pending = merge.next();
        GroupedRunReader { merge, pending }
    }
}

impl KvGroupReader for GroupedRunReader {
    fn next_group(&mut self) -> Option<KvGroup> {
        let (key, first) = self.pending.take()?;
        let mut values = vec![first];
        loop {
            match self.merge.next() {
                Some((k, v)) if k == key => values.push(v),
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        Some(KvGroup { key, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_kv;

    fn run(pairs: &[(&[u8], &[u8])]) -> KvCursor {
        let mut buf = Vec::new();
        for (k, v) in pairs {
            encode_kv(&mut buf, k, v);
        }
        KvCursor::new(Bytes::from(buf))
    }

    #[test]
    fn merges_in_key_order() {
        let m = MergingCursor::new(vec![
            run(&[(b"a", b"1"), (b"c", b"3")]),
            run(&[(b"b", b"2"), (b"d", b"4")]),
        ]);
        let got: Vec<Vec<u8>> = drain_keys(m);
        assert_eq!(
            got,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    fn drain_keys(mut m: MergingCursor) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some((k, _)) = m.next() {
            out.push(k.to_vec());
        }
        out
    }

    #[test]
    fn merge_is_stable_by_run_index() {
        let mut m = MergingCursor::new(vec![run(&[(b"k", b"first")]), run(&[(b"k", b"second")])]);
        assert_eq!(m.next().unwrap().1.as_ref(), b"first");
        assert_eq!(m.next().unwrap().1.as_ref(), b"second");
    }

    #[test]
    fn empty_runs_are_fine() {
        let mut m = MergingCursor::new(vec![run(&[]), run(&[(b"x", b"1")]), run(&[])]);
        assert_eq!(m.next().unwrap().0.as_ref(), b"x");
        assert!(m.next().is_none());
    }

    #[test]
    fn grouping_collects_values_across_runs() {
        let mut g = GroupedRunReader::new(vec![
            run(&[(b"a", b"1"), (b"b", b"x")]),
            run(&[(b"a", b"2")]),
            run(&[(b"a", b"3"), (b"c", b"y")]),
        ]);
        let ga = g.next_group().unwrap();
        assert_eq!(ga.key.as_ref(), b"a");
        assert_eq!(ga.values.len(), 3);
        let gb = g.next_group().unwrap();
        assert_eq!(gb.key.as_ref(), b"b");
        let gc = g.next_group().unwrap();
        assert_eq!(gc.key.as_ref(), b"c");
        assert!(g.next_group().is_none());
    }

    #[test]
    fn grouping_empty_input() {
        let mut g = GroupedRunReader::new(vec![]);
        assert!(g.next_group().is_none());
    }
}
