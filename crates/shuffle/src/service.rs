//! The simulated shuffle service: per-node shard storage with token-based
//! access control.
//!
//! Stands in for the YARN Shuffle Service (paper §4.1): producer outputs
//! are published here keyed by `(node, output id, partition)`; consumers
//! fetch them by [`ShardLocator`]. Losing a node drops its shards, so later
//! fetches fail and drive the re-execution fault-tolerance path (§4.3).
//! Fetches are authenticated with the app's [`SecurityToken`], modelling
//! the secure-shuffle channel of §4.3.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tez_runtime::{FetchError, FetchedShard, PartitionBuf, SecurityToken, ShardLocator};

#[derive(Default)]
struct Inner {
    shards: HashMap<(u32, u64, u32), PartitionBuf>,
    tokens: HashSet<u64>,
    next_output: u64,
}

/// The shuffle service. Cheap to clone via [`SharedDataService`].
#[derive(Default)]
pub struct DataService {
    inner: Mutex<Inner>,
}

/// Shared handle to a [`DataService`].
pub type SharedDataService = Arc<DataService>;

impl DataService {
    /// New empty service.
    pub fn new() -> SharedDataService {
        Arc::new(DataService::default())
    }

    /// Register a valid token (the AM does this per application).
    pub fn register_token(&self, token: SecurityToken) {
        self.inner.lock().tokens.insert(token.0);
    }

    /// Revoke a token (on app completion).
    pub fn revoke_token(&self, token: SecurityToken) {
        self.inner.lock().tokens.remove(&token.0);
    }

    /// Allocate a fresh output id (unique per attempt x edge).
    pub fn new_output_id(&self) -> u64 {
        let mut g = self.inner.lock();
        g.next_output += 1;
        g.next_output
    }

    /// Publish the partitions of one output on a node; returns locators in
    /// partition order.
    pub fn publish(&self, node: u32, output_id: u64, partitions: Vec<PartitionBuf>) -> Vec<ShardLocator> {
        let mut g = self.inner.lock();
        partitions
            .into_iter()
            .enumerate()
            .map(|(p, buf)| {
                let locator = ShardLocator {
                    node,
                    output_id,
                    partition: p as u32,
                    bytes: buf.data.len() as u64,
                    records: buf.records,
                    sorted: buf.sorted,
                };
                g.shards.insert((node, output_id, p as u32), buf);
                locator
            })
            .collect()
    }

    /// Fetch a shard on behalf of a task running on `from_node`.
    pub fn fetch_from(
        &self,
        from_node: u32,
        locator: &ShardLocator,
        token: SecurityToken,
    ) -> Result<FetchedShard, FetchError> {
        let g = self.inner.lock();
        if !g.tokens.contains(&token.0) {
            return Err(FetchError {
                locator: *locator,
                reason: "invalid security token".into(),
            });
        }
        match g.shards.get(&(locator.node, locator.output_id, locator.partition)) {
            Some(buf) => Ok(FetchedShard {
                data: buf.data.clone(),
                records: buf.records,
                sorted: buf.sorted,
                remote: from_node != locator.node,
            }),
            None => Err(FetchError {
                locator: *locator,
                reason: "shard not found (node lost or output retired)".into(),
            }),
        }
    }

    /// Drop every shard a failed node held.
    pub fn drop_node(&self, node: u32) -> usize {
        let mut g = self.inner.lock();
        let before = g.shards.len();
        g.shards.retain(|&(n, _, _), _| n != node);
        before - g.shards.len()
    }

    /// Drop one output (all partitions), e.g. when its producing attempt
    /// is superseded.
    pub fn drop_output(&self, node: u32, output_id: u64) {
        let mut g = self.inner.lock();
        g.shards.retain(|&(n, o, _), _| !(n == node && o == output_id));
    }

    /// Number of stored shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.inner.lock().shards.len()
    }

    /// Total stored bytes (diagnostics).
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .lock()
            .shards
            .values()
            .map(|b| b.data.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const TOKEN: SecurityToken = SecurityToken(99);

    fn part(data: &[u8], records: u64) -> PartitionBuf {
        PartitionBuf {
            data: Bytes::copy_from_slice(data),
            records,
            sorted: true,
        }
    }

    fn service() -> SharedDataService {
        let s = DataService::new();
        s.register_token(TOKEN);
        s
    }

    #[test]
    fn publish_and_fetch() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(3, oid, vec![part(b"p0", 1), part(b"p1", 2)]);
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[1].partition, 1);
        assert_eq!(locs[1].records, 2);
        let local = s.fetch_from(3, &locs[0], TOKEN).unwrap();
        assert!(!local.remote);
        assert_eq!(&local.data[..], b"p0");
        let remote = s.fetch_from(5, &locs[1], TOKEN).unwrap();
        assert!(remote.remote);
    }

    #[test]
    fn invalid_token_is_rejected() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(0, oid, vec![part(b"x", 1)]);
        let err = s.fetch_from(0, &locs[0], SecurityToken::INVALID).unwrap_err();
        assert!(err.reason.contains("token"));
        s.revoke_token(TOKEN);
        assert!(s.fetch_from(0, &locs[0], TOKEN).is_err());
    }

    #[test]
    fn node_loss_drops_shards() {
        let s = service();
        let a = s.new_output_id();
        let b = s.new_output_id();
        let la = s.publish(1, a, vec![part(b"a", 1)]);
        let lb = s.publish(2, b, vec![part(b"b", 1)]);
        assert_eq!(s.drop_node(1), 1);
        assert!(s.fetch_from(9, &la[0], TOKEN).is_err());
        assert!(s.fetch_from(9, &lb[0], TOKEN).is_ok());
    }

    #[test]
    fn drop_output_is_targeted() {
        let s = service();
        let a = s.new_output_id();
        let b = s.new_output_id();
        let la = s.publish(1, a, vec![part(b"a", 1)]);
        let lb = s.publish(1, b, vec![part(b"b", 1)]);
        s.drop_output(1, a);
        assert!(s.fetch_from(1, &la[0], TOKEN).is_err());
        assert!(s.fetch_from(1, &lb[0], TOKEN).is_ok());
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.stored_bytes(), 1);
    }

    #[test]
    fn output_ids_are_unique() {
        let s = service();
        let ids: Vec<u64> = (0..100).map(|_| s.new_output_id()).collect();
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len());
    }
}
