//! The simulated shuffle service: per-node shard storage with token-based
//! access control.
//!
//! Stands in for the YARN Shuffle Service (paper §4.1): producer outputs
//! are published here keyed by `(node, output id, partition)`; consumers
//! fetch them by [`ShardLocator`]. Losing a node drops its shards, so later
//! fetches fail and drive the re-execution fault-tolerance path (§4.3).
//! Fetches are authenticated with the app's [`SecurityToken`], modelling
//! the secure-shuffle channel of §4.3.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tez_runtime::{
    DataFetcher, FetchError, FetchedShard, PartitionBuf, SecurityToken, ShardLocator,
};

#[derive(Default)]
struct Inner {
    shards: HashMap<(u32, u64, u32), PartitionBuf>,
    tokens: HashSet<u64>,
    next_output: u64,
    /// Remaining injected transient failures (test/fault-plan hook): while
    /// positive, fetches fail with a retriable error before touching shards.
    transient_failures: u32,
}

/// Bounded-retry policy for shuffle fetches (DESIGN.md §2: "fetchers with
/// retry/backoff"). Backoff is exponential and purely deterministic — the
/// waits are *charged to the simulated clock* by the orchestrator (added to
/// the attempt's work cost) rather than slept, so same-seed runs stay
/// byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchRetryPolicy {
    /// Total attempts per shard, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff multiplier per subsequent retry.
    pub multiplier: u64,
}

impl Default for FetchRetryPolicy {
    fn default() -> Self {
        FetchRetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 100,
            multiplier: 2,
        }
    }
}

impl FetchRetryPolicy {
    /// Backoff charged before retry number `retry` (1-based): `base *
    /// multiplier^(retry-1)`. Retry 0 is the initial attempt — no backoff.
    pub fn backoff_before_retry(&self, retry: u32) -> u64 {
        if retry == 0 {
            return 0;
        }
        self.base_backoff_ms
            .saturating_mul(self.multiplier.saturating_pow(retry - 1))
    }
}

/// The shuffle service. Cheap to clone via [`SharedDataService`].
#[derive(Default)]
pub struct DataService {
    inner: Mutex<Inner>,
}

/// Shared handle to a [`DataService`].
pub type SharedDataService = Arc<DataService>;

impl DataService {
    /// New empty service.
    pub fn new() -> SharedDataService {
        Arc::new(DataService::default())
    }

    /// Register a valid token (the AM does this per application).
    pub fn register_token(&self, token: SecurityToken) {
        self.inner.lock().tokens.insert(token.0);
    }

    /// Revoke a token (on app completion).
    pub fn revoke_token(&self, token: SecurityToken) {
        self.inner.lock().tokens.remove(&token.0);
    }

    /// Allocate a fresh output id (unique per attempt x edge).
    pub fn new_output_id(&self) -> u64 {
        let mut g = self.inner.lock();
        g.next_output += 1;
        g.next_output
    }

    /// Publish the partitions of one output on a node; returns locators in
    /// partition order.
    pub fn publish(
        &self,
        node: u32,
        output_id: u64,
        partitions: Vec<PartitionBuf>,
    ) -> Vec<ShardLocator> {
        let mut g = self.inner.lock();
        partitions
            .into_iter()
            .enumerate()
            .map(|(p, buf)| {
                let locator = ShardLocator {
                    node,
                    output_id,
                    partition: p as u32,
                    bytes: buf.data.len() as u64,
                    records: buf.records,
                    sorted: buf.sorted,
                };
                g.shards.insert((node, output_id, p as u32), buf);
                locator
            })
            .collect()
    }

    /// Inject `n` transient fetch failures: the next `n` fetches fail with
    /// a retriable error regardless of shard availability. Used by fault
    /// plans and tests to exercise the retry path deterministically.
    pub fn inject_transient_failures(&self, n: u32) {
        self.inner.lock().transient_failures += n;
    }

    /// Injected transient failures not yet consumed by fetches. The
    /// orchestrator degrades to inline (control-thread) execution while
    /// this is non-zero, because the failures are consumed in fetch order
    /// and concurrent payloads would consume them nondeterministically.
    pub fn pending_transient_failures(&self) -> u32 {
        self.inner.lock().transient_failures
    }

    /// Fetch a shard on behalf of a task running on `from_node`.
    pub fn fetch_from(
        &self,
        from_node: u32,
        locator: &ShardLocator,
        token: SecurityToken,
    ) -> Result<FetchedShard, FetchError> {
        let mut g = self.inner.lock();
        if g.transient_failures > 0 {
            g.transient_failures -= 1;
            return Err(FetchError {
                locator: *locator,
                reason: "transient fetch failure (injected)".into(),
            });
        }
        if !g.tokens.contains(&token.0) {
            return Err(FetchError {
                locator: *locator,
                reason: "invalid security token".into(),
            });
        }
        match g
            .shards
            .get(&(locator.node, locator.output_id, locator.partition))
        {
            Some(buf) => Ok(FetchedShard {
                data: buf.data.clone(),
                records: buf.records,
                sorted: buf.sorted,
                remote: from_node != locator.node,
            }),
            None => Err(FetchError {
                locator: *locator,
                reason: "shard not found (node lost or output retired)".into(),
            }),
        }
    }

    /// Drop every shard a failed node held.
    pub fn drop_node(&self, node: u32) -> usize {
        let mut g = self.inner.lock();
        let before = g.shards.len();
        g.shards.retain(|&(n, _, _), _| n != node);
        before - g.shards.len()
    }

    /// Drop one output (all partitions), e.g. when its producing attempt
    /// is superseded.
    pub fn drop_output(&self, node: u32, output_id: u64) {
        let mut g = self.inner.lock();
        g.shards
            .retain(|&(n, o, _), _| !(n == node && o == output_id));
    }

    /// Number of stored shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.inner.lock().shards.len()
    }

    /// Total stored bytes (diagnostics).
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .lock()
            .shards
            .values()
            .map(|b| b.data.len() as u64)
            .sum()
    }
}

/// A [`DataFetcher`] that retries failed shuffle fetches against a
/// [`DataService`] with bounded, deterministic exponential backoff.
///
/// The fetcher never sleeps: each retry's backoff is *accumulated* in
/// `backoff_ms` and the orchestrator charges it to the attempt's simulated
/// work cost, so backoff advances the sim clock deterministically. When all
/// attempts are exhausted the last [`FetchError`] is returned, which the
/// input layer converts to an `InputReadError` — triggering producer
/// re-execution (paper §4.3) rather than a panic.
pub struct RetryingFetcher {
    service: SharedDataService,
    node: u32,
    policy: FetchRetryPolicy,
    retries: AtomicU64,
    backoff_ms: AtomicU64,
    log: Mutex<Vec<FetchRetry>>,
    samples: Mutex<Vec<FetchSample>>,
}

/// One successful shard fetch, as seen by a [`RetryingFetcher`]. The
/// orchestrator converts these into shuffle-fetch-latency histogram
/// samples (backoff plus the cost model's simulated remote-read time), so
/// everything here is deterministic: no wall-clock timing is recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchSample {
    /// Output id of the fetched shard.
    pub output_id: u64,
    /// Partition index within that output.
    pub partition: u32,
    /// Shard payload size, bytes.
    pub bytes: u64,
    /// Retries this fetch needed (excludes the first attempt).
    pub retries: u64,
    /// Backoff accumulated before success, in simulated ms.
    pub backoff_ms: u64,
    /// Whether the shard came from another node.
    pub remote: bool,
}

/// One logical fetch that needed retries, as seen by a [`RetryingFetcher`].
/// The orchestrator turns these into timeline events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchRetry {
    /// Output id of the shard that needed retries.
    pub output_id: u64,
    /// Partition index within that output.
    pub partition: u32,
    /// Retries performed for this shard (excludes the first attempt).
    pub retries: u64,
    /// Backoff accumulated across those retries, in simulated ms.
    pub backoff_ms: u64,
    /// Whether the fetch ultimately succeeded.
    pub succeeded: bool,
}

impl RetryingFetcher {
    /// Fetcher for a task running on `node`.
    pub fn new(service: SharedDataService, node: u32, policy: FetchRetryPolicy) -> Self {
        RetryingFetcher {
            service,
            node,
            policy,
            retries: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Retries performed so far (excludes first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total backoff accumulated, in simulated milliseconds. The caller
    /// charges this into the attempt's work cost.
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms.load(Ordering::Relaxed)
    }

    /// Per-shard retry records, in fetch order. Only fetches that actually
    /// retried appear.
    pub fn retry_log(&self) -> Vec<FetchRetry> {
        self.log.lock().clone()
    }

    /// One record per *successful* shard fetch, in fetch order — the raw
    /// feed for the shuffle-fetch-latency histogram.
    pub fn fetch_samples(&self) -> Vec<FetchSample> {
        self.samples.lock().clone()
    }
}

impl DataFetcher for RetryingFetcher {
    fn fetch(
        &self,
        locator: &ShardLocator,
        token: SecurityToken,
    ) -> Result<FetchedShard, FetchError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        let (mut retries, mut backoff) = (0u64, 0u64);
        let record = |retries: u64, backoff: u64, succeeded: bool| {
            if retries > 0 {
                self.log.lock().push(FetchRetry {
                    output_id: locator.output_id,
                    partition: locator.partition,
                    retries,
                    backoff_ms: backoff,
                    succeeded,
                });
            }
        };
        for attempt in 0..attempts {
            if attempt > 0 {
                retries += 1;
                backoff += self.policy.backoff_before_retry(attempt);
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.backoff_ms
                    .fetch_add(self.policy.backoff_before_retry(attempt), Ordering::Relaxed);
            }
            match self.service.fetch_from(self.node, locator, token) {
                Ok(shard) => {
                    record(retries, backoff, true);
                    self.samples.lock().push(FetchSample {
                        output_id: locator.output_id,
                        partition: locator.partition,
                        bytes: shard.data.len() as u64,
                        retries,
                        backoff_ms: backoff,
                        remote: shard.remote,
                    });
                    return Ok(shard);
                }
                Err(e) => last_err = Some(e),
            }
        }
        record(retries, backoff, false);
        Err(last_err.expect("at least one attempt"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const TOKEN: SecurityToken = SecurityToken(99);

    fn part(data: &[u8], records: u64) -> PartitionBuf {
        PartitionBuf {
            data: Bytes::copy_from_slice(data),
            records,
            sorted: true,
        }
    }

    fn service() -> SharedDataService {
        let s = DataService::new();
        s.register_token(TOKEN);
        s
    }

    #[test]
    fn publish_and_fetch() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(3, oid, vec![part(b"p0", 1), part(b"p1", 2)]);
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[1].partition, 1);
        assert_eq!(locs[1].records, 2);
        let local = s.fetch_from(3, &locs[0], TOKEN).unwrap();
        assert!(!local.remote);
        assert_eq!(&local.data[..], b"p0");
        let remote = s.fetch_from(5, &locs[1], TOKEN).unwrap();
        assert!(remote.remote);
    }

    #[test]
    fn invalid_token_is_rejected() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(0, oid, vec![part(b"x", 1)]);
        let err = s
            .fetch_from(0, &locs[0], SecurityToken::INVALID)
            .unwrap_err();
        assert!(err.reason.contains("token"));
        s.revoke_token(TOKEN);
        assert!(s.fetch_from(0, &locs[0], TOKEN).is_err());
    }

    #[test]
    fn node_loss_drops_shards() {
        let s = service();
        let a = s.new_output_id();
        let b = s.new_output_id();
        let la = s.publish(1, a, vec![part(b"a", 1)]);
        let lb = s.publish(2, b, vec![part(b"b", 1)]);
        assert_eq!(s.drop_node(1), 1);
        assert!(s.fetch_from(9, &la[0], TOKEN).is_err());
        assert!(s.fetch_from(9, &lb[0], TOKEN).is_ok());
    }

    #[test]
    fn drop_output_is_targeted() {
        let s = service();
        let a = s.new_output_id();
        let b = s.new_output_id();
        let la = s.publish(1, a, vec![part(b"a", 1)]);
        let lb = s.publish(1, b, vec![part(b"b", 1)]);
        s.drop_output(1, a);
        assert!(s.fetch_from(1, &la[0], TOKEN).is_err());
        assert!(s.fetch_from(1, &lb[0], TOKEN).is_ok());
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.stored_bytes(), 1);
    }

    #[test]
    fn backoff_sequence_is_deterministic_exponential() {
        let p = FetchRetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            multiplier: 2,
        };
        assert_eq!(p.backoff_before_retry(0), 0);
        assert_eq!(p.backoff_before_retry(1), 100);
        assert_eq!(p.backoff_before_retry(2), 200);
        assert_eq!(p.backoff_before_retry(3), 400);
    }

    #[test]
    fn transient_failure_then_success_within_retry_budget() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(1, oid, vec![part(b"data", 3)]);
        s.inject_transient_failures(2);
        let f = RetryingFetcher::new(s.clone(), 7, FetchRetryPolicy::default());
        let shard = f.fetch(&locs[0], TOKEN).expect("retries absorb failures");
        assert_eq!(&shard.data[..], b"data");
        assert!(shard.remote);
        assert_eq!(f.retries(), 2);
        // Backoff before retry 1 (100ms) + retry 2 (200ms).
        assert_eq!(f.backoff_ms(), 300);
        // The per-shard log records the whole episode.
        assert_eq!(
            f.retry_log(),
            vec![FetchRetry {
                output_id: oid,
                partition: 0,
                retries: 2,
                backoff_ms: 300,
                succeeded: true,
            }]
        );
    }

    #[test]
    fn exhausted_retries_surface_the_last_error() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(1, oid, vec![part(b"data", 3)]);
        // More injected failures than the retry budget: fetch must fail.
        s.inject_transient_failures(5);
        let f = RetryingFetcher::new(s.clone(), 7, FetchRetryPolicy::default());
        let err = f.fetch(&locs[0], TOKEN).unwrap_err();
        assert!(err.reason.contains("transient"));
        assert_eq!(f.retries(), 2, "max_attempts=3 means two retries");
        assert_eq!(f.backoff_ms(), 300);
        assert!(f.retry_log().iter().all(|r| !r.succeeded));
        // Two injected failures remain; one more fetch consumes them and
        // then succeeds on its final attempt.
        let f2 = RetryingFetcher::new(s.clone(), 1, FetchRetryPolicy::default());
        assert!(f2.fetch(&locs[0], TOKEN).is_ok());
        assert!(!f2.fetch(&locs[0], TOKEN).unwrap().remote);
    }

    #[test]
    fn missing_shard_fails_after_retries_not_panics() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(1, oid, vec![part(b"x", 1)]);
        s.drop_node(1);
        let f = RetryingFetcher::new(s.clone(), 2, FetchRetryPolicy::default());
        let err = f.fetch(&locs[0], TOKEN).unwrap_err();
        assert!(err.reason.contains("not found"));
        assert_eq!(f.retries(), 2);
    }

    #[test]
    fn fetch_samples_record_every_success_with_retry_context() {
        let s = service();
        let oid = s.new_output_id();
        let locs = s.publish(1, oid, vec![part(b"abcd", 2), part(b"xy", 1)]);
        s.inject_transient_failures(1);
        let f = RetryingFetcher::new(s.clone(), 1, FetchRetryPolicy::default());
        f.fetch(&locs[0], TOKEN).unwrap();
        f.fetch(&locs[1], TOKEN).unwrap();
        let samples = f.fetch_samples();
        assert_eq!(
            samples,
            vec![
                FetchSample {
                    output_id: oid,
                    partition: 0,
                    bytes: 4,
                    retries: 1,
                    backoff_ms: 100,
                    remote: false,
                },
                FetchSample {
                    output_id: oid,
                    partition: 1,
                    bytes: 2,
                    retries: 0,
                    backoff_ms: 0,
                    remote: false,
                },
            ]
        );
        // Failed fetches leave no sample.
        s.drop_node(1);
        assert!(f.fetch(&locs[0], TOKEN).is_err());
        assert_eq!(f.fetch_samples().len(), 2);
    }

    #[test]
    fn shuffle_types_are_send_sync() {
        // Fetchers and the service cross the worker-pool boundary; a
        // regression to `Cell`/`RefCell` state must fail to compile.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataService>();
        assert_send_sync::<SharedDataService>();
        assert_send_sync::<RetryingFetcher>();
    }

    #[test]
    fn output_ids_are_unique() {
        let s = service();
        let ids: Vec<u64> = (0..100).map(|_| s.new_output_id()).collect();
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len());
    }
}
