//! The producer half of the shuffle: partitioning, memory-bounded sorting
//! with spills, and per-spill combining — the machinery behind
//! [`crate::OrderedPartitionedKvOutput`], inheriting MapReduce's sort-spill-
//! merge design as the paper describes for the built-in IO library (§4.1).

use crate::codec::{encode_kv, KvCursor};
use bytes::Bytes;
use tez_runtime::PartitionBuf;

/// How keys map to partitions.
#[derive(Clone, Debug)]
pub enum Partitioner {
    /// FNV-1a hash of the key, modulo partition count.
    Hash,
    /// Range partitioning by sorted upper-bound keys: partition `i` takes
    /// keys `<= bounds[i]`, the last partition takes the rest. Used by
    /// total-order sorts and skew joins after sampling.
    Range(Vec<Vec<u8>>),
    /// Everything to partition 0 (broadcast/single-reducer).
    Single,
}

impl Partitioner {
    /// Partition of `key` among `n` partitions.
    pub fn partition(&self, key: &[u8], n: usize) -> u32 {
        match self {
            Partitioner::Hash => {
                if n <= 1 {
                    0
                } else {
                    (fnv1a(key) % n as u64) as u32
                }
            }
            Partitioner::Range(bounds) => {
                let idx = bounds.partition_point(|b| b.as_slice() < key);
                (idx.min(n.saturating_sub(1))) as u32
            }
            Partitioner::Single => 0,
        }
    }
}

/// FNV-1a, the classic fast byte-string hash.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Built-in value combiners applied at spill and merge time (applications
/// with richer combining pre-aggregate inside their processors, as Hive
/// does with map-side aggregation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combiner {
    /// No combining.
    None,
    /// Values are little-endian `u64`s; equal keys sum.
    SumU64,
}

impl Combiner {
    fn combine(&self, acc: &mut Vec<u8>, next: &[u8]) {
        match self {
            Combiner::None => unreachable!("combine called with Combiner::None"),
            Combiner::SumU64 => {
                let a = u64::from_le_bytes(acc[..8].try_into().expect("u64 value"));
                let b = u64::from_le_bytes(next[..8].try_into().expect("u64 value"));
                acc.clear();
                acc.extend_from_slice(&(a + b).to_le_bytes());
            }
        }
    }
}

/// One sorted, encoded run for one partition.
#[derive(Clone)]
struct Run {
    data: Bytes,
}

/// External sorter: buffers writes, spills sorted runs when the memory
/// budget is hit, and merges runs per partition at close.
pub struct ExternalSorter {
    num_partitions: usize,
    partitioner: Partitioner,
    combiner: Combiner,
    mem_limit: usize,
    buffer: Vec<(Vec<u8>, Vec<u8>, u32)>,
    buffered_bytes: usize,
    runs: Vec<Vec<Run>>,
    spilled_bytes: u64,
    records: u64,
}

impl ExternalSorter {
    /// New sorter. `mem_limit` bounds the in-memory buffer in bytes.
    pub fn new(
        num_partitions: usize,
        partitioner: Partitioner,
        combiner: Combiner,
        mem_limit: usize,
    ) -> Self {
        ExternalSorter {
            num_partitions: num_partitions.max(1),
            partitioner,
            combiner,
            mem_limit: mem_limit.max(1024),
            buffer: Vec::new(),
            buffered_bytes: 0,
            runs: vec![Vec::new(); num_partitions.max(1)],
            spilled_bytes: 0,
            records: 0,
        }
    }

    /// Insert one pair.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) {
        let p = self.partitioner.partition(key, self.num_partitions);
        self.buffered_bytes += key.len() + value.len() + 16;
        self.records += 1;
        self.buffer.push((key.to_vec(), value.to_vec(), p));
        if self.buffered_bytes >= self.mem_limit {
            self.spill();
        }
    }

    fn spill(&mut self) {
        self.spill_inner(true);
    }

    fn spill_inner(&mut self, count_spill: bool) {
        if self.buffer.is_empty() {
            return;
        }
        let mut buffer = std::mem::take(&mut self.buffer);
        self.buffered_bytes = 0;
        // Stable sort by (partition, key) keeps insertion order for equal
        // keys, preserving deterministic merge output.
        buffer.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        let mut i = 0;
        while i < buffer.len() {
            let p = buffer[i].2;
            let mut encoded = Vec::new();
            while i < buffer.len() && buffer[i].2 == p {
                if self.combiner != Combiner::None {
                    // Fold equal keys within the spill.
                    let key = std::mem::take(&mut buffer[i].0);
                    let mut acc = std::mem::take(&mut buffer[i].1);
                    i += 1;
                    while i < buffer.len() && buffer[i].2 == p && buffer[i].0 == key {
                        self.combiner.combine(&mut acc, &buffer[i].1);
                        i += 1;
                    }
                    encode_kv(&mut encoded, &key, &acc);
                } else {
                    encode_kv(&mut encoded, &buffer[i].0, &buffer[i].1);
                    i += 1;
                }
            }
            if count_spill {
                self.spilled_bytes += encoded.len() as u64;
            }
            self.runs[p as usize].push(Run {
                data: Bytes::from(encoded),
            });
        }
    }

    /// Finish: merge runs per partition into one sorted buffer each. The
    /// final in-memory flush does not count as a disk spill unless earlier
    /// spills already happened.
    pub fn finish(mut self) -> (Vec<PartitionBuf>, u64) {
        let spilled_before = self.runs.iter().any(|r| !r.is_empty());
        self.spill_inner(spilled_before);
        let combiner = self.combiner;
        let mut out = Vec::with_capacity(self.num_partitions);
        for runs in self.runs {
            let mut encoded = Vec::new();
            let mut records = 0u64;
            let cursors: Vec<KvCursor> =
                runs.iter().map(|r| KvCursor::new(r.data.clone())).collect();
            let mut merge = crate::merge::MergingCursor::new(cursors);
            let mut pending: Option<(Bytes, Vec<u8>)> = None;
            while let Some((k, v)) = merge.next() {
                match (&mut pending, combiner) {
                    (Some((pk, pv)), Combiner::SumU64) if *pk == k => {
                        combiner.combine(pv, &v);
                    }
                    _ => {
                        if let Some((pk, pv)) = pending.take() {
                            encode_kv(&mut encoded, &pk, &pv);
                            records += 1;
                        }
                        pending = Some((k, v.to_vec()));
                    }
                }
            }
            if let Some((pk, pv)) = pending {
                encode_kv(&mut encoded, &pk, &pv);
                records += 1;
            }
            out.push(PartitionBuf {
                data: Bytes::from(encoded),
                records,
                sorted: true,
            });
        }
        (out, self.spilled_bytes)
    }

    /// Records inserted so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Helper: encode a `u64` value for [`Combiner::SumU64`] outputs.
pub fn sum_value(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Helper: decode a [`Combiner::SumU64`] value.
pub fn read_sum_value(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().expect("u64 value"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{dec_u64, enc_u64};

    fn drain(buf: &PartitionBuf) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut c = KvCursor::new(buf.data.clone());
        let mut out = Vec::new();
        while let Some((k, v)) = c.next() {
            out.push((k.to_vec(), v.to_vec()));
        }
        out
    }

    #[test]
    fn partitioner_hash_is_stable_and_in_range() {
        let p = Partitioner::Hash;
        for key in [b"a".as_ref(), b"hello", b"", b"\x00\x01"] {
            let x = p.partition(key, 7);
            assert_eq!(x, p.partition(key, 7));
            assert!(x < 7);
        }
        assert_eq!(p.partition(b"anything", 1), 0);
    }

    #[test]
    fn partitioner_range_boundaries() {
        let p = Partitioner::Range(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.partition(b"a", 3), 0);
        assert_eq!(p.partition(b"g", 3), 0); // <= bound g
        assert_eq!(p.partition(b"h", 3), 1);
        assert_eq!(p.partition(b"p", 3), 1);
        assert_eq!(p.partition(b"z", 3), 2);
    }

    #[test]
    fn sorts_within_partition() {
        let mut s = ExternalSorter::new(2, Partitioner::Hash, Combiner::None, 1 << 20);
        for k in ["delta", "alpha", "echo", "bravo", "charlie"] {
            s.insert(k.as_bytes(), b"v");
        }
        let (parts, spilled) = s.finish();
        assert_eq!(spilled, 0, "fits in memory, no spill");
        let mut all = Vec::new();
        for p in &parts {
            let keys: Vec<Vec<u8>> = drain(p).into_iter().map(|(k, _)| k).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted, "each partition is sorted");
            all.extend(keys);
        }
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn spills_and_merges_preserve_order_and_content() {
        // 64-byte limit forces many spills.
        let mut s = ExternalSorter::new(1, Partitioner::Single, Combiner::None, 64);
        let n = 100;
        for i in (0..n).rev() {
            s.insert(&enc_u64(i), &sum_value(i));
        }
        let (parts, spilled) = s.finish();
        assert!(spilled > 0, "must have spilled");
        let rows = drain(&parts[0]);
        assert_eq!(rows.len(), n as usize);
        for (i, (k, v)) in rows.iter().enumerate() {
            assert_eq!(dec_u64(k), i as u64);
            assert_eq!(read_sum_value(v), i as u64);
        }
    }

    #[test]
    fn combiner_sums_across_spills() {
        let mut s = ExternalSorter::new(1, Partitioner::Single, Combiner::SumU64, 64);
        for _ in 0..50 {
            s.insert(b"word", &sum_value(1));
            s.insert(b"other", &sum_value(2));
        }
        let (parts, _) = s.finish();
        let rows = drain(&parts[0]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, b"other");
        assert_eq!(read_sum_value(&rows[0].1), 100);
        assert_eq!(rows[1].0, b"word");
        assert_eq!(read_sum_value(&rows[1].1), 50);
    }

    #[test]
    fn records_counts_inserts() {
        let mut s = ExternalSorter::new(1, Partitioner::Single, Combiner::None, 1 << 20);
        s.insert(b"a", b"1");
        s.insert(b"a", b"2");
        assert_eq!(s.records(), 2);
    }

    #[test]
    fn range_partitioned_sort_gives_total_order() {
        let bounds = vec![enc_u64(33).to_vec(), enc_u64(66).to_vec()];
        let mut s = ExternalSorter::new(3, Partitioner::Range(bounds), Combiner::None, 1 << 20);
        for i in (0..100u64).rev() {
            s.insert(&enc_u64(i), b"");
        }
        let (parts, _) = s.finish();
        let mut all: Vec<u64> = Vec::new();
        for p in &parts {
            all.extend(drain(p).iter().map(|(k, _)| dec_u64(k)));
        }
        // Concatenating partitions in order yields a globally sorted list.
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert_eq!(drain(&parts[0]).len(), 34); // 0..=33
    }
}
