//! # tez-spark — a mini RDD engine on rtez
//!
//! Stands in for the paper's experimental Spark-on-Tez prototype (§5.4,
//! §6.5): "we were able to encode the post-compilation Spark DAG into a Tez
//! DAG and run it successfully in a YARN cluster that was not running the
//! Spark engine service."
//!
//! * [`rdd`] — a closure-based, lazily-evaluated RDD with narrow
//!   (map/filter) and wide (partition-by, reduce-by-key) dependencies, cut
//!   into stages at wide dependencies exactly like Spark's DAG scheduler.
//! * [`compile`] — stages become a Tez DAG; user closures are injected into
//!   a generic Spark processor (the paper's "user defined Spark code is
//!   serialized into a Tez processor payload and injected into a generic
//!   Spark processor").
//! * [`tenancy`] — the Figure 12/13 harness: N concurrent Spark apps on one
//!   cluster, executed either with the **service-executor model**
//!   (a fixed executor fleet held for the app's lifetime:
//!   `max_containers = Some(E)`, `reuse_idle_ms = ∞`) or the **Tez model**
//!   (ephemeral per-task containers released when idle).

pub mod compile;
pub mod rdd;
pub mod tenancy;

pub use rdd::Rdd;
pub use tenancy::{run_tenancy, ExecutionModel, TenancyResult};
