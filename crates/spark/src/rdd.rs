//! The RDD model: closure-based lineage, cut into stages at wide
//! dependencies.

use std::sync::Arc;
use tez_hive::types::Row;

/// A row → row transformation.
pub type MapFn = Arc<dyn Fn(Row) -> Row + Send + Sync>;
/// A row predicate.
pub type FilterFn = Arc<dyn Fn(&Row) -> bool + Send + Sync>;
/// A row → shuffle-key function.
pub type KeyFn = Arc<dyn Fn(&Row) -> Vec<u8> + Send + Sync>;
/// A value combiner for `reduce_by_key`.
pub type ReduceFn = Arc<dyn Fn(Row, Row) -> Row + Send + Sync>;

/// Narrow (pipelined) operators.
#[derive(Clone)]
pub enum Narrow {
    /// `map`.
    Map(MapFn),
    /// `filter`.
    Filter(FilterFn),
}

/// Wide (shuffle) dependencies.
#[derive(Clone)]
pub enum Wide {
    /// `partitionBy`: hash the key function into `partitions` partitions.
    PartitionBy {
        /// Key extractor.
        key: KeyFn,
        /// Partition count.
        partitions: usize,
    },
    /// `reduceByKey`: co-locate by key, then fold values.
    ReduceByKey {
        /// Key extractor.
        key: KeyFn,
        /// Fold function.
        reduce: ReduceFn,
        /// Partition count.
        partitions: usize,
    },
}

/// One pipeline stage: a source, narrow ops, and an optional terminal wide
/// dependency feeding the next stage.
#[derive(Clone)]
pub struct SparkStage {
    /// Where rows come from.
    pub source: StageSource,
    /// Pipelined narrow operators.
    pub narrow: Vec<Narrow>,
    /// Wide dependency into the next stage (None = final stage).
    pub wide: Option<Wide>,
}

/// Stage input.
#[derive(Clone)]
pub enum StageSource {
    /// Scan a catalog table.
    Table(String),
    /// Read the previous stage's shuffle.
    Shuffle,
}

/// A lazily-built RDD: the stage chain so far.
#[derive(Clone)]
pub struct Rdd {
    pub(crate) stages: Vec<SparkStage>,
}

impl Rdd {
    /// RDD over a warehouse table.
    pub fn from_table(table: &str) -> Rdd {
        Rdd {
            stages: vec![SparkStage {
                source: StageSource::Table(table.to_string()),
                narrow: Vec::new(),
                wide: None,
            }],
        }
    }

    fn last_mut(&mut self) -> &mut SparkStage {
        self.stages.last_mut().expect("at least one stage")
    }

    /// `map` (narrow).
    pub fn map(mut self, f: impl Fn(Row) -> Row + Send + Sync + 'static) -> Rdd {
        self.last_mut().narrow.push(Narrow::Map(Arc::new(f)));
        self
    }

    /// `filter` (narrow).
    pub fn filter(mut self, f: impl Fn(&Row) -> bool + Send + Sync + 'static) -> Rdd {
        self.last_mut().narrow.push(Narrow::Filter(Arc::new(f)));
        self
    }

    /// `partitionBy` (wide): starts a new stage.
    pub fn partition_by(
        mut self,
        partitions: usize,
        key: impl Fn(&Row) -> Vec<u8> + Send + Sync + 'static,
    ) -> Rdd {
        self.last_mut().wide = Some(Wide::PartitionBy {
            key: Arc::new(key),
            partitions,
        });
        self.stages.push(SparkStage {
            source: StageSource::Shuffle,
            narrow: Vec::new(),
            wide: None,
        });
        self
    }

    /// `reduceByKey` (wide): starts a new stage whose rows are the reduced
    /// values.
    pub fn reduce_by_key(
        mut self,
        partitions: usize,
        key: impl Fn(&Row) -> Vec<u8> + Send + Sync + 'static,
        reduce: impl Fn(Row, Row) -> Row + Send + Sync + 'static,
    ) -> Rdd {
        self.last_mut().wide = Some(Wide::ReduceByKey {
            key: Arc::new(key),
            reduce: Arc::new(reduce),
            partitions,
        });
        self.stages.push(SparkStage {
            source: StageSource::Shuffle,
            narrow: Vec::new(),
            wide: None,
        });
        self
    }

    /// Stage count (Spark's DAG scheduler view).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Reference execution over in-memory tables.
    pub fn execute_reference(
        &self,
        tables: &std::collections::HashMap<String, Vec<Row>>,
    ) -> Vec<Row> {
        let mut rows: Vec<Row> = Vec::new();
        for stage in &self.stages {
            if let StageSource::Table(t) = &stage.source {
                rows = tables[t].clone();
            }
            for op in &stage.narrow {
                rows = match op {
                    Narrow::Map(f) => rows.into_iter().map(|r| f(r)).collect(),
                    Narrow::Filter(f) => rows.into_iter().filter(|r| f(r)).collect(),
                };
            }
            if let Some(Wide::ReduceByKey { key, reduce, .. }) = &stage.wide {
                let mut groups: std::collections::BTreeMap<Vec<u8>, Row> = Default::default();
                for r in rows.drain(..) {
                    let k = key(&r);
                    match groups.remove(&k) {
                        Some(acc) => {
                            groups.insert(k, reduce(acc, r));
                        }
                        None => {
                            groups.insert(k, r);
                        }
                    }
                }
                rows = groups.into_values().collect();
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tez_hive::types::Datum;

    fn tables() -> std::collections::HashMap<String, Vec<Row>> {
        let mut t = std::collections::HashMap::new();
        t.insert(
            "nums".to_string(),
            (0..10i64).map(|i| vec![Datum::I64(i)]).collect(),
        );
        t
    }

    #[test]
    fn stages_cut_at_wide_deps() {
        let rdd = Rdd::from_table("nums")
            .map(|r| r)
            .partition_by(4, |r| vec![(r[0].as_i64() % 4) as u8])
            .filter(|_| true)
            .reduce_by_key(2, |_| vec![0], |a, _| a);
        assert_eq!(rdd.num_stages(), 3);
    }

    #[test]
    fn reference_word_sum() {
        let rdd = Rdd::from_table("nums")
            .filter(|r| r[0].as_i64() % 2 == 0)
            .map(|mut r| {
                r.push(Datum::I64(1));
                r
            })
            .reduce_by_key(
                2,
                |_r| vec![0], // single group
                |mut a, b| {
                    a[1] = Datum::I64(a[1].as_i64() + b[1].as_i64());
                    a
                },
            );
        let rows = rdd.execute_reference(&tables());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Datum::I64(5), "five even numbers");
    }
}
