//! The multi-tenancy harness behind Figures 12 and 13 (§6.5).
//!
//! "For the experiment, we have a 5-user concurrency test of partitioning a
//! TPC-H lineitem data-set along the L_SHIPDATE column." Each user runs the
//! same partitioning job; the cluster executes them either with the
//! **service-executor model** (each app pre-allocates a fixed executor
//! fleet and holds it for its whole lifetime) or the **Tez model**
//! (ephemeral per-task containers, released when idle, re-acquired on
//! demand) — "the Tez based implementation releases idle resources that
//! get assigned to other jobs that need them."

use crate::compile::build_spark_dag;
use crate::rdd::Rdd;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tez_core::{
    standard_registry, DagAppMaster, DagReport, DagSubmission, SessionOutput, TezConfig,
};
use tez_hive::types::{encode_key, row_bytes, Datum, Row};
use tez_runtime::SecurityToken;
use tez_shuffle::codec::encode_kv;
use tez_shuffle::DataService;
use tez_yarn::{
    AppId, ClusterSpec, CostModel, FaultPlan, QueueSpec, RmConfig, SimTime, Simulation, Trace,
};

/// How each tenant executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionModel {
    /// Spark's standalone executor service: `executors` containers
    /// acquired up front and held until the app finishes.
    ServiceBased {
        /// Fleet size per app.
        executors: usize,
    },
    /// Spark-on-Tez: ephemeral tasks, idle containers released after
    /// `reuse_idle_ms`.
    TezBased,
}

/// Result of a tenancy run.
#[derive(Clone, Debug)]
pub struct TenancyResult {
    /// Per-app `(app, submit_ms, finish_ms)` in submission order.
    pub apps: Vec<(AppId, u64, u64)>,
    /// The execution trace (allocation series per app drive Figure 12).
    pub trace: Trace,
}

impl TenancyResult {
    /// Latency of one app (submission to finish).
    pub fn latencies_ms(&self) -> Vec<u64> {
        self.apps.iter().map(|(_, s, f)| f - s).collect()
    }

    /// Mean latency across apps.
    pub fn mean_latency_ms(&self) -> f64 {
        let l = self.latencies_ms();
        l.iter().sum::<u64>() as f64 / l.len().max(1) as f64
    }

    /// Completion time of the last app.
    pub fn makespan_ms(&self) -> u64 {
        self.apps.iter().map(|&(_, _, f)| f).max().unwrap_or(0)
    }
}

/// Parameters of a tenancy experiment.
#[derive(Clone, Debug)]
pub struct TenancySpec {
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// Cost model.
    pub cost: CostModel,
    /// Concurrent users.
    pub users: usize,
    /// Real rows in the shared lineitem table.
    pub rows: usize,
    /// HDFS blocks of the table.
    pub blocks: usize,
    /// Partitions of the partition-by job.
    pub partitions: usize,
    /// Declared-scale multiplier (the 100 GB…1 TB axis of Figure 13).
    pub byte_scale: f64,
    /// Submission stagger between users.
    pub stagger_ms: u64,
    /// Seed.
    pub seed: u64,
}

/// Generate the shared lineitem-like table: `(shipdate, qty, price)`.
fn lineitem_blocks(rows: usize, blocks: usize, seed: u64) -> Vec<(Bytes, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let per = rows.div_ceil(blocks.max(1)).max(1);
    (0..blocks)
        .map(|_| {
            let mut buf = Vec::new();
            for _ in 0..per {
                let row: Row = vec![
                    Datum::I64(19_920_101 + rng.random_range(0..70_000)),
                    Datum::I64(rng.random_range(1..50)),
                    Datum::F64(rng.random_range(900.0..105_000.0)),
                ];
                encode_kv(&mut buf, b"", &row_bytes(&row));
            }
            (Bytes::from(buf), per as u64)
        })
        .collect()
}

/// The per-user job: partition lineitem by shipdate.
fn partition_job(partitions: usize) -> Rdd {
    Rdd::from_table("lineitem").partition_by(partitions, |r| encode_key(r, &[0], &[]))
}

/// Run the tenancy experiment under one execution model.
pub fn run_tenancy(spec: &TenancySpec, model: ExecutionModel) -> TenancyResult {
    let mut sim = Simulation::new(
        spec.cluster.clone(),
        spec.cost.clone(),
        vec![QueueSpec::new("default", 1.0)],
        RmConfig::default(),
        FaultPlan::none(),
        spec.seed,
    );
    sim.hdfs().set_stat_scale(spec.byte_scale);
    let blocks = lineitem_blocks(spec.rows, spec.blocks, spec.seed);
    let scaled: Vec<(Bytes, u64, u64)> = blocks
        .into_iter()
        .map(|(d, r)| {
            let declared = ((d.len() as f64) * spec.byte_scale).max(1.0) as u64;
            let records = ((r as f64) * spec.byte_scale).max(1.0) as u64;
            (d, declared, records)
        })
        .collect();
    sim.hdfs().put_file_scaled("/warehouse/lineitem", scaled);

    let config = match model {
        ExecutionModel::ServiceBased { executors } => TezConfig {
            container_reuse: true,
            reuse_idle_ms: u64::MAX,
            prewarm_containers: executors,
            session: true, // the fleet belongs to the app, not a DAG
            max_containers: Some(executors),
            speculation: false,
            ..TezConfig::default()
        },
        ExecutionModel::TezBased => TezConfig {
            speculation: false,
            ..TezConfig::default()
        },
    };

    let mut outputs = Vec::new();
    let mut ids = Vec::new();
    for user in 0..spec.users {
        let mut registry = standard_registry();
        let app_name = format!("spark-u{user}");
        let mut cfg = config.clone();
        cfg.byte_scale = spec.byte_scale;
        let dag = build_spark_dag(
            &app_name,
            &partition_job(spec.partitions),
            &format!("/out/{app_name}"),
            &mut registry,
            &cfg,
        );
        let service = DataService::new();
        let output: Arc<Mutex<SessionOutput>> = Arc::new(Mutex::new(SessionOutput::default()));
        let am = DagAppMaster::new(
            cfg,
            registry,
            service,
            SecurityToken(1000 + user as u64),
            vec![DagSubmission { dag }],
            Arc::clone(&output),
        );
        let submit = SimTime(spec.stagger_ms * user as u64);
        let id = sim.add_app(Box::new(am), "default", submit);
        outputs.push((id, submit, output));
        ids.push(id);
    }
    sim.run();

    let apps = outputs
        .into_iter()
        .map(|(id, submit, output)| {
            let reports: Vec<DagReport> = std::mem::take(&mut output.lock().reports);
            let report = reports.into_iter().next().expect("one dag per app");
            assert!(
                report.status.is_success(),
                "tenant {id:?} failed: {:?}",
                report.status
            );
            (id, submit.millis(), report.finished.millis())
        })
        .collect();
    TenancyResult {
        apps,
        trace: sim.trace().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TenancySpec {
        TenancySpec {
            cluster: ClusterSpec::homogeneous(2, 8192, 8),
            cost: CostModel {
                straggler_prob: 0.0,
                ..CostModel::default()
            },
            users: 3,
            rows: 600,
            blocks: 8,
            // A 2-task reduce tail: the service fleet idles 6 of its 8
            // executors during it, while the Tez model releases them.
            partitions: 2,
            byte_scale: 50_000.0,
            stagger_ms: 2_000,
            seed: 9,
        }
    }

    #[test]
    fn tez_model_shares_better_than_service_model() {
        let spec = spec();
        // Service fleets sized to hog the cluster: 2 apps fill all 16
        // slots; the third waits for a whole fleet.
        let service = run_tenancy(&spec, ExecutionModel::ServiceBased { executors: 8 });
        let tez = run_tenancy(&spec, ExecutionModel::TezBased);
        let (ms, mt) = (service.mean_latency_ms(), tez.mean_latency_ms());
        assert!(
            mt < ms,
            "tez mean latency {mt:.0}ms must beat service model {ms:.0}ms"
        );
        // Fig. 12's qualitative claim: with the service model the LAST
        // tenant suffers most (it waits for a fleet).
        let sl = service.latencies_ms();
        let tl = tez.latencies_ms();
        assert!(sl.last().unwrap() > tl.last().unwrap());
    }

    #[test]
    fn allocation_trace_shows_release_vs_hold() {
        let spec = spec();
        let service = run_tenancy(&spec, ExecutionModel::ServiceBased { executors: 8 });
        // First app's allocation stays flat at the fleet size until finish.
        let first = service.apps[0].0;
        let series = service.trace.allocation_series(first);
        let peak = series.iter().map(|&(_, v)| v).max().unwrap_or(0);
        assert_eq!(peak, 8, "service fleet is exactly the executor count");
        let _ = spec;
    }
}
