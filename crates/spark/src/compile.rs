//! Compile an RDD's stage chain into a Tez DAG.
//!
//! Each Spark stage becomes one vertex; wide dependencies become
//! scatter-gather edges. User closures ride inside a generic Spark
//! processor, mirroring the paper's §5.4 prototype ("injected into a
//! generic Spark processor that deserializes and executes the user code …
//! allows unmodified Spark programs to run on YARN using Spark's own
//! runtime operators").

use crate::rdd::{Narrow, Rdd, SparkStage, StageSource, Wide};
use std::collections::HashMap;
use tez_core::{hdfs_split_initializer, TezConfig};
use tez_dag::{Dag, DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_hive::types::{decode_row, row_bytes, Row};
use tez_runtime::{ComponentRegistry, Processor, ProcessorContext, TaskError};
use tez_shuffle::io::{kinds, scatter_gather_edge};
use tez_shuffle::Combiner;

/// The generic Spark stage processor hosting user closures.
struct SparkProcessor {
    stage: SparkStage,
    input: String,
    output: Option<String>,
    partitions: usize,
}

impl Processor for SparkProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        // Gather rows: table scans and shuffle reads are both flat row
        // streams (reduce-by-key sources use SparkReduceReader instead).
        let mut rows: Vec<Row> = Vec::new();
        let reader = ctx.reader(&self.input)?;
        for (_, v) in reader.collect_pairs() {
            rows.push(decode_row(&v)?);
        }
        for op in &self.stage.narrow {
            rows = match op {
                Narrow::Map(f) => rows.into_iter().map(|r| f(r)).collect(),
                Narrow::Filter(f) => rows.into_iter().filter(|r| f(r)).collect(),
            };
        }
        match (&self.stage.wide, &self.output) {
            (Some(Wide::PartitionBy { key, .. }), Some(out)) => {
                for r in rows {
                    ctx.write(out, &key(&r), &row_bytes(&r))?;
                }
            }
            (Some(Wide::ReduceByKey { key, reduce, .. }), Some(out)) => {
                // Map-side combine, then shuffle the partials.
                let mut groups: std::collections::BTreeMap<Vec<u8>, Row> = Default::default();
                for r in rows {
                    let k = key(&r);
                    match groups.remove(&k) {
                        Some(acc) => {
                            groups.insert(k, reduce(acc, r));
                        }
                        None => {
                            groups.insert(k, r);
                        }
                    }
                }
                for (k, r) in groups {
                    ctx.write(out, &k, &row_bytes(&r))?;
                }
            }
            (None, Some(out)) => {
                for r in rows {
                    ctx.write(out, b"", &row_bytes(&r))?;
                }
            }
            (_, None) => {}
        }
        Ok(())
    }
}

/// A stage whose source is the shuffle of a `reduce_by_key` must merge the
/// partial values per key before its narrow ops.
struct SparkReduceReader {
    reduce: crate::rdd::ReduceFn,
    inner: SparkProcessor,
}

impl Processor for SparkReduceReader {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader(&self.inner.input)?.into_grouped()?;
        let mut rows: Vec<Row> = Vec::new();
        while let Some(g) = reader.next_group() {
            let mut acc: Option<Row> = None;
            for v in g.values {
                let r = decode_row(&v)?;
                acc = Some(match acc {
                    Some(a) => (self.reduce)(a, r),
                    None => r,
                });
            }
            rows.push(acc.expect("non-empty group"));
        }
        for op in &self.inner.stage.narrow {
            rows = match op {
                Narrow::Map(f) => rows.into_iter().map(|r| f(r)).collect(),
                Narrow::Filter(f) => rows.into_iter().filter(|r| f(r)).collect(),
            };
        }
        match (&self.inner.stage.wide, &self.inner.output) {
            (Some(Wide::PartitionBy { key, .. }), Some(out)) => {
                for r in rows {
                    ctx.write(out, &key(&r), &row_bytes(&r))?;
                }
            }
            (Some(Wide::ReduceByKey { key, reduce, .. }), Some(out)) => {
                let mut groups: std::collections::BTreeMap<Vec<u8>, Row> = Default::default();
                for r in rows {
                    let k = key(&r);
                    match groups.remove(&k) {
                        Some(acc) => {
                            groups.insert(k, reduce(acc, r));
                        }
                        None => {
                            groups.insert(k, r);
                        }
                    }
                }
                for (k, r) in groups {
                    ctx.write(out, &k, &row_bytes(&r))?;
                }
            }
            (None, Some(out)) => {
                for r in rows {
                    ctx.write(out, b"", &row_bytes(&r))?;
                }
            }
            (_, None) => {}
        }
        let _ = self.inner.partitions;
        Ok(())
    }
}

/// Compile an RDD + save path into a Tez DAG, registering its processors
/// under `spark.{app}.*` kinds.
pub fn build_spark_dag(
    app: &str,
    rdd: &Rdd,
    save_path: &str,
    registry: &mut ComponentRegistry,
    config: &TezConfig,
) -> Dag {
    let mut builder = DagBuilder::new(app);
    let n = rdd.stages.len();
    for (i, stage) in rdd.stages.iter().enumerate() {
        let vname = format!("stage{i}");
        let next = format!("stage{}", i + 1);
        let (input, is_table) = match &stage.source {
            StageSource::Table(_) => ("scan".to_string(), true),
            StageSource::Shuffle => (format!("stage{}", i - 1), false),
        };
        let output = if i + 1 < n {
            Some(next)
        } else {
            Some("out".to_string())
        };
        let partitions = match &stage.wide {
            Some(Wide::PartitionBy { partitions, .. })
            | Some(Wide::ReduceByKey { partitions, .. }) => *partitions,
            None => 1,
        };
        // A stage fed by a reduce_by_key shuffle folds groups first.
        let prev_reduce = (i > 0)
            .then(|| match &rdd.stages[i - 1].wide {
                Some(Wide::ReduceByKey { reduce, .. }) => Some(reduce.clone()),
                _ => None,
            })
            .flatten();
        let stage_clone = stage.clone();
        let input_clone = input.clone();
        let output_clone = output.clone();
        let kind_name = format!("spark.{app}.{vname}");
        match prev_reduce {
            Some(reduce) => {
                registry.register_processor(&kind_name, move |_p| {
                    Box::new(SparkReduceReader {
                        reduce: reduce.clone(),
                        inner: SparkProcessor {
                            stage: stage_clone.clone(),
                            input: input_clone.clone(),
                            output: output_clone.clone(),
                            partitions,
                        },
                    })
                });
            }
            None => {
                registry.register_processor(&kind_name, move |_p| {
                    Box::new(SparkProcessor {
                        stage: stage_clone.clone(),
                        input: input_clone.clone(),
                        output: output_clone.clone(),
                        partitions,
                    })
                });
            }
        }

        let mut vertex = Vertex::new(&vname, NamedDescriptor::new(&kind_name));
        if let StageSource::Table(t) = &stage.source {
            let _ = is_table;
            vertex = vertex.with_data_source(
                "scan",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer(
                    &tez_hive::Catalog::table_path(t),
                    config.min_split_bytes,
                    config.max_split_bytes,
                    false,
                )),
            );
        } else {
            // Shuffle consumers: parallelism from the producing wide dep.
            let prev_parts = match &rdd.stages[i - 1].wide {
                Some(Wide::PartitionBy { partitions, .. })
                | Some(Wide::ReduceByKey { partitions, .. }) => *partitions,
                None => 1,
            };
            vertex = vertex.with_parallelism(prev_parts);
        }
        if i + 1 == n {
            vertex = vertex.with_data_sink(
                "out",
                NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str(save_path)),
                Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
            );
        }
        builder = builder.add_vertex(vertex);
        if i > 0 {
            builder = builder.add_edge(
                format!("stage{}", i - 1),
                vname,
                scatter_gather_edge(Combiner::None),
            );
        }
    }
    builder.build().expect("spark stage chain is a valid DAG")
}

/// Reference helper: run the RDD in memory and return the rows.
pub fn reference(rdd: &Rdd, tables: &HashMap<String, Vec<Row>>) -> Vec<Row> {
    rdd.execute_reference(tables)
}
