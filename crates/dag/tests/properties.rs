//! Property-based tests of DAG invariants: random layered DAGs always
//! validate, topological order respects every edge, and physical expansion
//! routing is consistent with the edge managers' declared input counts.

use proptest::prelude::*;
use std::collections::HashMap;
use tez_dag::{expand, DagBuilder, DataMovement, EdgeProperty, NamedDescriptor, Vertex};

/// Strategy: a random layered DAG description — per-layer vertex counts
/// plus an edge-density seed. Layered construction guarantees acyclicity,
/// which the builder must then confirm.
fn layered_dag() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (proptest::collection::vec(1usize..4, 2..5), any::<u64>())
}

fn build(layers: &[usize], seed: u64) -> Option<tez_dag::Dag> {
    let mut builder = DagBuilder::new("prop");
    let mut names: Vec<Vec<String>> = Vec::new();
    for (li, &width) in layers.iter().enumerate() {
        let mut layer = Vec::new();
        for v in 0..width {
            let name = format!("l{li}v{v}");
            builder = builder.add_vertex(
                Vertex::new(&name, NamedDescriptor::new("P"))
                    .with_parallelism(1 + (seed as usize + li + v) % 4),
            );
            layer.push(name);
        }
        names.push(layer);
    }
    // Edges between consecutive layers, choice driven by the seed. Ensure
    // every non-root vertex has at least one incoming edge.
    let mut rng = seed;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        rng >> 33
    };
    for li in 1..names.len() {
        for dst in 0..names[li].len() {
            let mut any_edge = false;
            for src in 0..names[li - 1].len() {
                if next() % 2 == 0 || (!any_edge && src + 1 == names[li - 1].len()) {
                    let movement = match next() % 3 {
                        0 => DataMovement::Broadcast,
                        _ => DataMovement::ScatterGather,
                    };
                    builder = builder.add_edge(
                        names[li - 1][src].clone(),
                        names[li][dst].clone(),
                        EdgeProperty::new(
                            movement,
                            NamedDescriptor::new("O"),
                            NamedDescriptor::new("I"),
                        ),
                    );
                    any_edge = true;
                }
            }
        }
    }
    builder.build().ok()
}

proptest! {
    /// Layered construction always yields a valid DAG whose topological
    /// order respects every edge, and whose depths are consistent.
    #[test]
    fn layered_dags_validate((layers, seed) in layered_dag()) {
        let Some(dag) = build(&layers, seed) else {
            // Only duplicate-edge collisions can fail; that's fine.
            return Ok(());
        };
        let order = dag.topological_order();
        let mut pos = vec![0usize; dag.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for e in dag.edges() {
            let s = dag.vertex_index(&e.src).unwrap();
            let d = dag.vertex_index(&e.dst).unwrap();
            prop_assert!(pos[s] < pos[d]);
            prop_assert!(dag.depth(s) < dag.depth(d));
        }
        // Ancestors/descendants are consistent inverses.
        for v in 0..dag.num_vertices() {
            for &a in &dag.ancestors(v) {
                prop_assert!(dag.descendants(a).contains(&v));
            }
        }
    }

    /// Physical expansion: every consumer task receives exactly the number
    /// of physical inputs its edge managers declare, with no duplicate
    /// (task, input-index) deliveries.
    #[test]
    fn expansion_covers_declared_inputs((layers, seed) in layered_dag()) {
        let Some(dag) = build(&layers, seed) else { return Ok(()); };
        let parallelism: Vec<usize> = dag
            .vertices()
            .iter()
            .map(|v| v.parallelism.fixed().unwrap())
            .collect();
        let phys = expand(&dag, &parallelism, &HashMap::new()).unwrap();
        // Count inputs per (vertex, task, edge).
        let mut seen: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
        for t in &phys.transfers {
            let entry = seen.entry((t.dst.vertex, t.dst.task, t.edge)).or_default();
            prop_assert!(!entry.contains(&t.dst_input_index), "duplicate delivery");
            entry.push(t.dst_input_index);
        }
        for (ei, e) in dag.edges().iter().enumerate() {
            let d = dag.vertex_index(&e.dst).unwrap();
            let s = dag.vertex_index(&e.src).unwrap();
            let ctx = tez_dag::EdgeRoutingContext {
                num_src_tasks: parallelism[s],
                num_dst_tasks: parallelism[d],
            };
            let mgr = tez_dag::edge::builtin_edge_manager(&e.property.movement).unwrap();
            for task in 0..parallelism[d] {
                let declared = mgr.num_physical_inputs(&ctx, task);
                let got = seen.get(&(d, task, ei)).map_or(0, Vec::len);
                prop_assert_eq!(got, declared, "vertex {} task {} edge {}", e.dst.clone(), task, ei);
            }
        }
    }
}
