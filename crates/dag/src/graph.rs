//! The validated [`Dag`] structure and graph utilities: adjacency,
//! topological order, depth (used as scheduling priority), and DOT output.

use crate::edge::Edge;
use crate::error::DagError;
use crate::vertex::Vertex;
use std::collections::HashMap;

/// A validated directed acyclic graph of vertices and edges.
///
/// Construct through [`crate::DagBuilder`], which enforces the invariants
/// every consumer of this type relies on: unique vertex names, edges that
/// reference existing vertices, no self loops or duplicate edges, and
/// acyclicity.
#[derive(Clone, Debug)]
pub struct Dag {
    pub(crate) name: String,
    pub(crate) vertices: Vec<Vertex>,
    pub(crate) edges: Vec<Edge>,
    /// vertex name -> index in `vertices`
    pub(crate) index: HashMap<String, usize>,
    /// incoming edge indices per vertex
    pub(crate) in_edges: Vec<Vec<usize>>,
    /// outgoing edge indices per vertex
    pub(crate) out_edges: Vec<Vec<usize>>,
    /// vertex indices in a topological order
    pub(crate) topo: Vec<usize>,
    /// longest-path distance from any root (0 for roots)
    pub(crate) depth: Vec<usize>,
}

impl Dag {
    /// DAG name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All vertices, in insertion order.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Look up a vertex index by name.
    pub fn vertex_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Vertex by index.
    pub fn vertex(&self, idx: usize) -> &Vertex {
        &self.vertices[idx]
    }

    /// Vertex by name; panics if absent (builder guarantees edges resolve).
    pub fn vertex_by_name(&self, name: &str) -> &Vertex {
        &self.vertices[self.index[name]]
    }

    /// Indices of edges entering `vertex_idx`.
    pub fn in_edge_indices(&self, vertex_idx: usize) -> &[usize] {
        &self.in_edges[vertex_idx]
    }

    /// Indices of edges leaving `vertex_idx`.
    pub fn out_edge_indices(&self, vertex_idx: usize) -> &[usize] {
        &self.out_edges[vertex_idx]
    }

    /// Edge by index.
    pub fn edge(&self, idx: usize) -> &Edge {
        &self.edges[idx]
    }

    /// Vertex indices in a deterministic topological order.
    pub fn topological_order(&self) -> &[usize] {
        &self.topo
    }

    /// Longest-path distance of a vertex from the roots. Used by the
    /// orchestrator as scheduling priority (rootward vertices first), like
    /// Tez's `distanceFromRoot`.
    pub fn depth(&self, vertex_idx: usize) -> usize {
        self.depth[vertex_idx]
    }

    /// Maximum depth over all vertices.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Vertices with no incoming edges.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.vertices.len())
            .filter(|&v| self.in_edges[v].is_empty())
            .collect()
    }

    /// Vertices with no outgoing edges.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.vertices.len())
            .filter(|&v| self.out_edges[v].is_empty())
            .collect()
    }

    /// Direct upstream (producer) vertex indices of `vertex_idx`.
    pub fn producers(&self, vertex_idx: usize) -> Vec<usize> {
        self.in_edges[vertex_idx]
            .iter()
            .map(|&e| self.index[&self.edges[e].src])
            .collect()
    }

    /// Direct downstream (consumer) vertex indices of `vertex_idx`.
    pub fn consumers(&self, vertex_idx: usize) -> Vec<usize> {
        self.out_edges[vertex_idx]
            .iter()
            .map(|&e| self.index[&self.edges[e].dst])
            .collect()
    }

    /// All transitive ancestors of `vertex_idx` (excluding itself).
    pub fn ancestors(&self, vertex_idx: usize) -> Vec<usize> {
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = self.producers(vertex_idx);
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            if !seen[v] {
                seen[v] = true;
                out.push(v);
                stack.extend(self.producers(v));
            }
        }
        out.sort_unstable();
        out
    }

    /// All transitive descendants of `vertex_idx` (excluding itself).
    pub fn descendants(&self, vertex_idx: usize) -> Vec<usize> {
        let mut seen = vec![false; self.vertices.len()];
        let mut stack = self.consumers(vertex_idx);
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            if !seen[v] {
                seen[v] = true;
                out.push(v);
                stack.extend(self.consumers(v));
            }
        }
        out.sort_unstable();
        out
    }

    /// Render the logical DAG in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph {:?} {{", self.name);
        let _ = writeln!(s, "  rankdir=TB;");
        for v in &self.vertices {
            let par = match v.parallelism {
                crate::Parallelism::Fixed(n) => n.to_string(),
                crate::Parallelism::Auto => "auto".to_string(),
            };
            let _ = writeln!(
                s,
                "  {:?} [shape=box,label=\"{}\\n{} x{}\"];",
                v.name, v.name, v.processor.kind, par
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                s,
                "  {:?} -> {:?} [label=\"{}\"];",
                e.src,
                e.dst,
                e.property.movement.label()
            );
        }
        s.push_str("}\n");
        s
    }
}

/// Kahn's algorithm; returns topo order + longest-path depths, or the name
/// of a vertex on a cycle.
pub(crate) fn topo_sort(
    num_vertices: usize,
    in_edges: &[Vec<usize>],
    out_edges: &[Vec<usize>],
    edges: &[Edge],
    index: &HashMap<String, usize>,
    names: &[String],
) -> Result<(Vec<usize>, Vec<usize>), DagError> {
    let mut indeg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
    let mut depth = vec![0usize; num_vertices];
    // Deterministic: process ready vertices in index order using a sorted
    // worklist (small graphs; O(V^2) worst case is fine here).
    let mut ready: Vec<usize> = (0..num_vertices).filter(|&v| indeg[v] == 0).collect();
    ready.reverse();
    let mut topo = Vec::with_capacity(num_vertices);
    while let Some(v) = ready.pop() {
        topo.push(v);
        for &e in &out_edges[v] {
            let w = index[&edges[e].dst];
            depth[w] = depth[w].max(depth[v] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                // Insert keeping `ready` sorted descending for determinism.
                let pos = ready.partition_point(|&x| x > w);
                ready.insert(pos, w);
            }
        }
    }
    if topo.len() != num_vertices {
        let on_cycle = (0..num_vertices)
            .find(|&v| indeg[v] > 0)
            .expect("cycle implies positive in-degree remains");
        return Err(DagError::Cycle(names[on_cycle].clone()));
    }
    Ok((topo, depth))
}

#[cfg(test)]
mod tests {
    use crate::builder::DagBuilder;
    use crate::edge::{DataMovement, EdgeProperty};
    use crate::payload::NamedDescriptor;
    use crate::vertex::Vertex;

    fn proc() -> NamedDescriptor {
        NamedDescriptor::new("P")
    }

    fn sg() -> EdgeProperty {
        EdgeProperty::new(
            DataMovement::ScatterGather,
            NamedDescriptor::new("O"),
            NamedDescriptor::new("I"),
        )
    }

    /// Diamond: a -> {b, c} -> d
    fn diamond() -> crate::Dag {
        DagBuilder::new("diamond")
            .add_vertex(Vertex::new("a", proc()).with_parallelism(2))
            .add_vertex(Vertex::new("b", proc()).with_parallelism(2))
            .add_vertex(Vertex::new("c", proc()).with_parallelism(2))
            .add_vertex(Vertex::new("d", proc()).with_parallelism(1))
            .add_edge("a", "b", sg())
            .add_edge("a", "c", sg())
            .add_edge("b", "d", sg())
            .add_edge("c", "d", sg())
            .build()
            .unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let order = d.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for e in d.edges() {
            let s = d.vertex_index(&e.src).unwrap();
            let t = d.vertex_index(&e.dst).unwrap();
            assert!(pos[s] < pos[t], "{} before {}", e.src, e.dst);
        }
    }

    #[test]
    fn depths_are_longest_paths() {
        let d = diamond();
        assert_eq!(d.depth(d.vertex_index("a").unwrap()), 0);
        assert_eq!(d.depth(d.vertex_index("b").unwrap()), 1);
        assert_eq!(d.depth(d.vertex_index("c").unwrap()), 1);
        assert_eq!(d.depth(d.vertex_index("d").unwrap()), 2);
        assert_eq!(d.max_depth(), 2);
    }

    #[test]
    fn roots_and_leaves() {
        let d = diamond();
        assert_eq!(d.roots(), vec![d.vertex_index("a").unwrap()]);
        assert_eq!(d.leaves(), vec![d.vertex_index("d").unwrap()]);
    }

    #[test]
    fn ancestors_descendants() {
        let d = diamond();
        let a = d.vertex_index("a").unwrap();
        let dd = d.vertex_index("d").unwrap();
        assert_eq!(d.ancestors(dd).len(), 3);
        assert_eq!(d.descendants(a).len(), 3);
        assert!(d.ancestors(a).is_empty());
        assert!(d.descendants(dd).is_empty());
    }

    #[test]
    fn producers_consumers() {
        let d = diamond();
        let b = d.vertex_index("b").unwrap();
        assert_eq!(d.producers(b), vec![d.vertex_index("a").unwrap()]);
        assert_eq!(d.consumers(b), vec![d.vertex_index("d").unwrap()]);
    }

    #[test]
    fn dot_render_contains_vertices_and_edges() {
        let d = diamond();
        let dot = d.to_dot();
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("scatter-gather"));
        assert!(dot.starts_with("digraph"));
    }
}
