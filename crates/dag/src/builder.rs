//! [`DagBuilder`]: assembles vertices and edges into a validated [`Dag`].
//!
//! "Using well-known concepts of vertices and edges the DAG API enables a
//! clear and concise description of the structure of the computation"
//! (paper §3.1). Validation catches structural mistakes at build time
//! rather than at execution time.

use crate::edge::{DataMovement, Edge, EdgeProperty};
use crate::error::DagError;
use crate::graph::{topo_sort, Dag};
use crate::vertex::{Parallelism, Vertex};
use std::collections::{HashMap, HashSet};

/// Builder for [`Dag`]. See crate docs for an end-to-end example.
#[derive(Debug, Default)]
pub struct DagBuilder {
    name: String,
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl DagBuilder {
    /// Start a DAG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DagBuilder {
            name: name.into(),
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a vertex.
    pub fn add_vertex(mut self, vertex: Vertex) -> Self {
        self.vertices.push(vertex);
        self
    }

    /// Add an edge from `src` to `dst`.
    pub fn add_edge(
        mut self,
        src: impl Into<String>,
        dst: impl Into<String>,
        property: EdgeProperty,
    ) -> Self {
        self.edges.push(Edge::new(src, dst, property));
        self
    }

    /// Validate and build the DAG.
    pub fn build(self) -> Result<Dag, DagError> {
        if self.vertices.is_empty() {
            return Err(DagError::EmptyDag);
        }

        // Unique vertex names.
        let mut index = HashMap::with_capacity(self.vertices.len());
        for (i, v) in self.vertices.iter().enumerate() {
            if index.insert(v.name.clone(), i).is_some() {
                return Err(DagError::DuplicateVertex(v.name.clone()));
            }
        }

        // Per-vertex IO name uniqueness and parallelism sanity.
        for v in &self.vertices {
            let mut io = HashSet::new();
            for s in &v.data_sources {
                if !io.insert(s.name.as_str()) {
                    return Err(DagError::DuplicateIo {
                        vertex: v.name.clone(),
                        name: s.name.clone(),
                    });
                }
            }
            for s in &v.data_sinks {
                if !io.insert(s.name.as_str()) {
                    return Err(DagError::DuplicateIo {
                        vertex: v.name.clone(),
                        name: s.name.clone(),
                    });
                }
            }
            if v.parallelism == Parallelism::Fixed(0) {
                return Err(DagError::ZeroParallelism(v.name.clone()));
            }
        }

        // Edge endpoints exist; no self loops; no duplicate (src, dst).
        let mut seen_edges = HashSet::new();
        let mut in_edges = vec![Vec::new(); self.vertices.len()];
        let mut out_edges = vec![Vec::new(); self.vertices.len()];
        for (ei, e) in self.edges.iter().enumerate() {
            let s = *index
                .get(&e.src)
                .ok_or_else(|| DagError::UnknownVertex(e.src.clone()))?;
            let d = *index
                .get(&e.dst)
                .ok_or_else(|| DagError::UnknownVertex(e.dst.clone()))?;
            if s == d {
                return Err(DagError::SelfLoop(e.src.clone()));
            }
            if !seen_edges.insert((s, d)) {
                return Err(DagError::DuplicateEdge {
                    src: e.src.clone(),
                    dst: e.dst.clone(),
                });
            }
            out_edges[s].push(ei);
            in_edges[d].push(ei);
        }

        // One-to-one edges need matching fixed parallelism when both are
        // statically known. (When either side is Auto the orchestrator
        // enforces the match at runtime.)
        for e in &self.edges {
            if matches!(e.property.movement, DataMovement::OneToOne) {
                let s = &self.vertices[index[&e.src]];
                let d = &self.vertices[index[&e.dst]];
                if let (Some(sn), Some(dn)) = (s.parallelism.fixed(), d.parallelism.fixed()) {
                    if sn != dn {
                        return Err(DagError::OneToOneParallelismMismatch {
                            src: e.src.clone(),
                            dst: e.dst.clone(),
                            src_tasks: sn,
                            dst_tasks: dn,
                        });
                    }
                }
            }
        }

        // Auto-parallelism vertices must have a way to decide parallelism:
        // an incoming edge (vertex manager decides) or a root input with an
        // initializer (split calculation decides).
        for (i, v) in self.vertices.iter().enumerate() {
            if v.parallelism == Parallelism::Auto
                && in_edges[i].is_empty()
                && !v.data_sources.iter().any(|s| s.initializer.is_some())
            {
                return Err(DagError::UndecidableParallelism(v.name.clone()));
            }
        }

        let names: Vec<String> = self.vertices.iter().map(|v| v.name.clone()).collect();
        let (topo, depth) = topo_sort(
            self.vertices.len(),
            &in_edges,
            &out_edges,
            &self.edges,
            &index,
            &names,
        )?;

        Ok(Dag {
            name: self.name,
            vertices: self.vertices,
            edges: self.edges,
            index,
            in_edges,
            out_edges,
            topo,
            depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::NamedDescriptor;

    fn p() -> NamedDescriptor {
        NamedDescriptor::new("P")
    }

    fn sg() -> EdgeProperty {
        EdgeProperty::new(
            DataMovement::ScatterGather,
            NamedDescriptor::new("O"),
            NamedDescriptor::new("I"),
        )
    }

    fn o2o() -> EdgeProperty {
        EdgeProperty::new(
            DataMovement::OneToOne,
            NamedDescriptor::new("O"),
            NamedDescriptor::new("I"),
        )
    }

    #[test]
    fn empty_dag_rejected() {
        assert_eq!(
            DagBuilder::new("d").build().unwrap_err(),
            DagError::EmptyDag
        );
    }

    #[test]
    fn duplicate_vertex_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(1))
            .add_vertex(Vertex::new("a", p()).with_parallelism(1))
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::DuplicateVertex("a".into()));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(1))
            .add_edge("a", "ghost", sg())
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::UnknownVertex("ghost".into()));
    }

    #[test]
    fn self_loop_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(1))
            .add_edge("a", "a", sg())
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::SelfLoop("a".into()));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(1))
            .add_vertex(Vertex::new("b", p()).with_parallelism(1))
            .add_edge("a", "b", sg())
            .add_edge("a", "b", sg())
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::DuplicateEdge { .. }));
    }

    #[test]
    fn cycle_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(1))
            .add_vertex(Vertex::new("b", p()).with_parallelism(1))
            .add_vertex(Vertex::new("c", p()).with_parallelism(1))
            .add_edge("a", "b", sg())
            .add_edge("b", "c", sg())
            .add_edge("c", "a", sg())
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::Cycle(_)));
    }

    #[test]
    fn zero_parallelism_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(0))
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::ZeroParallelism("a".into()));
    }

    #[test]
    fn one_to_one_mismatch_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(2))
            .add_vertex(Vertex::new("b", p()).with_parallelism(3))
            .add_edge("a", "b", o2o())
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::OneToOneParallelismMismatch { .. }));
    }

    #[test]
    fn one_to_one_with_auto_side_allowed() {
        let d = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_parallelism(2))
            .add_vertex(Vertex::new("b", p())) // Auto, decided at runtime
            .add_edge("a", "b", o2o())
            .build()
            .unwrap();
        assert_eq!(d.num_vertices(), 2);
    }

    #[test]
    fn undecidable_auto_parallelism_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p())) // Auto, no inputs, no initializer
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::UndecidableParallelism("a".into()));
    }

    #[test]
    fn auto_with_initializer_allowed() {
        let d = DagBuilder::new("d")
            .add_vertex(Vertex::new("a", p()).with_data_source(
                "in",
                NamedDescriptor::new("HdfsInput"),
                Some(NamedDescriptor::new("SplitInitializer")),
            ))
            .build()
            .unwrap();
        assert_eq!(d.num_vertices(), 1);
    }

    #[test]
    fn duplicate_io_name_rejected() {
        let err = DagBuilder::new("d")
            .add_vertex(
                Vertex::new("a", p())
                    .with_parallelism(1)
                    .with_data_source("x", NamedDescriptor::new("I"), None)
                    .with_data_sink("x", NamedDescriptor::new("O"), None),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, DagError::DuplicateIo { .. }));
    }

    #[test]
    fn wordcount_shape_builds() {
        // The canonical WordCount from paper Figure 4: tokenizer -> summer.
        let d = DagBuilder::new("wordcount")
            .add_vertex(
                Vertex::new("tokenizer", NamedDescriptor::new("TokenProcessor")).with_data_source(
                    "in",
                    NamedDescriptor::new("TextInput"),
                    Some(NamedDescriptor::new("SplitInitializer")),
                ),
            )
            .add_vertex(
                Vertex::new("summer", NamedDescriptor::new("SumProcessor"))
                    .with_parallelism(2)
                    .with_data_sink("out", NamedDescriptor::new("TextOutput"), None),
            )
            .add_edge("tokenizer", "summer", sg())
            .build()
            .unwrap();
        assert_eq!(d.num_vertices(), 2);
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.leaves().len(), 1);
    }
}
