//! Vertex definitions: processors, parallelism, resources, locality hints,
//! root inputs (data sources) and leaf outputs (data sinks).

use crate::payload::NamedDescriptor;

/// Task parallelism of a vertex.
///
/// The paper (§3.1): "The task parallelism of a vertex may be defined
/// statically during DAG definition but is typically determined dynamically
/// at runtime" — `Auto` defers the decision to an input initializer (for
/// root vertices) or a vertex manager (for intermediate ones, e.g. the
/// ShuffleVertexManager's automatic partition-cardinality estimation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// Fixed number of tasks, decided at DAG definition time.
    Fixed(usize),
    /// Decided at runtime by an initializer or vertex manager.
    Auto,
}

impl Parallelism {
    /// The fixed task count, if statically known.
    pub fn fixed(&self) -> Option<usize> {
        match self {
            Parallelism::Fixed(n) => Some(*n),
            Parallelism::Auto => None,
        }
    }
}

/// Per-task resource ask, matching YARN's container resource model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resource {
    /// Memory in megabytes.
    pub memory_mb: u32,
    /// Virtual cores.
    pub vcores: u32,
}

impl Resource {
    /// Convenience constructor.
    pub fn new(memory_mb: u32, vcores: u32) -> Self {
        Resource { memory_mb, vcores }
    }
}

impl Default for Resource {
    fn default() -> Self {
        Resource {
            memory_mb: 1024,
            vcores: 1,
        }
    }
}

/// Static locality hint for one task of a vertex.
///
/// Tasks reading initial input typically get hints from their data source;
/// intermediate task locality is inferred at runtime from source tasks and
/// edge connections (paper §4.2, "Locality Aware Scheduling").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskLocationHint {
    /// Preferred nodes (host names).
    pub nodes: Vec<String>,
    /// Preferred racks.
    pub racks: Vec<String>,
}

impl TaskLocationHint {
    /// A hint preferring the given nodes.
    pub fn nodes(nodes: impl IntoIterator<Item = impl Into<String>>) -> Self {
        TaskLocationHint {
            nodes: nodes.into_iter().map(Into::into).collect(),
            racks: Vec::new(),
        }
    }

    /// Whether the hint expresses no preference.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.racks.is_empty()
    }
}

/// A *data source* attached to a vertex: the input class that reads it plus
/// an optional [`DataSourceInitializer`](crate::NamedDescriptor) invoked at
/// runtime to decide the optimal reading pattern (split calculation,
/// dynamic partition pruning — paper §3.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootInput {
    /// Name of this input on the vertex (unique per vertex).
    pub name: String,
    /// Input class reading the source.
    pub input: NamedDescriptor,
    /// Optional initializer deciding splits/parallelism at runtime.
    pub initializer: Option<NamedDescriptor>,
}

/// A *data sink* attached to a vertex: the output class that writes it plus
/// an optional committer invoked exactly once on success to make the output
/// visible to external observers (paper §3.1, "Data Sources and Sinks").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafOutput {
    /// Name of this output on the vertex (unique per vertex).
    pub name: String,
    /// Output class writing the sink.
    pub output: NamedDescriptor,
    /// Optional committer making the output visible on success.
    pub committer: Option<NamedDescriptor>,
}

/// A logical step of processing: user code (the processor) plus parallelism,
/// resources, locality and attached sources/sinks.
#[derive(Clone, Debug)]
pub struct Vertex {
    /// Unique name within the DAG.
    pub name: String,
    /// The processor executed by every task of this vertex.
    pub processor: NamedDescriptor,
    /// Task parallelism.
    pub parallelism: Parallelism,
    /// Per-task resource ask.
    pub resource: Resource,
    /// Static per-task locality hints (may be empty, or shorter than the
    /// task count; missing entries mean "no preference").
    pub location_hints: Vec<TaskLocationHint>,
    /// Optional vertex manager controlling runtime re-configuration
    /// (paper §3.4). When absent, `tez-core` picks a built-in manager based
    /// on the vertex characteristics.
    pub vertex_manager: Option<NamedDescriptor>,
    /// Data sources feeding this vertex from outside the DAG.
    pub data_sources: Vec<RootInput>,
    /// Data sinks written by this vertex to outside the DAG.
    pub data_sinks: Vec<LeafOutput>,
    /// Statistics scale override for this vertex's data volumes. The
    /// orchestrator charges `byte_scale` on every vertex by default;
    /// engines pin absolutely-small inputs (dimension tables) to their
    /// true scale so broadcasts are not inflated (see DESIGN.md).
    pub stats_scale: Option<f64>,
}

impl Vertex {
    /// New vertex with defaults (auto parallelism, default resource).
    pub fn new(name: impl Into<String>, processor: NamedDescriptor) -> Self {
        Vertex {
            name: name.into(),
            processor,
            parallelism: Parallelism::Auto,
            resource: Resource::default(),
            location_hints: Vec::new(),
            vertex_manager: None,
            data_sources: Vec::new(),
            data_sinks: Vec::new(),
            stats_scale: None,
        }
    }

    /// Pin this vertex's statistics scale (see [`Vertex::stats_scale`]).
    pub fn with_stats_scale(mut self, scale: f64) -> Self {
        self.stats_scale = Some(scale);
        self
    }

    /// Set fixed parallelism.
    pub fn with_parallelism(mut self, tasks: usize) -> Self {
        self.parallelism = Parallelism::Fixed(tasks);
        self
    }

    /// Set the resource ask.
    pub fn with_resource(mut self, resource: Resource) -> Self {
        self.resource = resource;
        self
    }

    /// Set static location hints.
    pub fn with_location_hints(mut self, hints: Vec<TaskLocationHint>) -> Self {
        self.location_hints = hints;
        self
    }

    /// Attach a custom vertex manager.
    pub fn with_vertex_manager(mut self, vm: NamedDescriptor) -> Self {
        self.vertex_manager = Some(vm);
        self
    }

    /// Attach a data source.
    pub fn with_data_source(
        mut self,
        name: impl Into<String>,
        input: NamedDescriptor,
        initializer: Option<NamedDescriptor>,
    ) -> Self {
        self.data_sources.push(RootInput {
            name: name.into(),
            input,
            initializer,
        });
        self
    }

    /// Attach a data sink.
    pub fn with_data_sink(
        mut self,
        name: impl Into<String>,
        output: NamedDescriptor,
        committer: Option<NamedDescriptor>,
    ) -> Self {
        self.data_sinks.push(LeafOutput {
            name: name.into(),
            output,
            committer,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_builder_chain() {
        let v = Vertex::new("map", NamedDescriptor::new("MapProcessor"))
            .with_parallelism(4)
            .with_resource(Resource::new(2048, 2))
            .with_data_source("in", NamedDescriptor::new("HdfsInput"), None)
            .with_data_sink("out", NamedDescriptor::new("HdfsOutput"), None);
        assert_eq!(v.parallelism, Parallelism::Fixed(4));
        assert_eq!(v.resource.memory_mb, 2048);
        assert_eq!(v.data_sources.len(), 1);
        assert_eq!(v.data_sinks.len(), 1);
    }

    #[test]
    fn parallelism_fixed_accessor() {
        assert_eq!(Parallelism::Fixed(3).fixed(), Some(3));
        assert_eq!(Parallelism::Auto.fixed(), None);
    }

    #[test]
    fn location_hint_emptiness() {
        assert!(TaskLocationHint::default().is_empty());
        assert!(!TaskLocationHint::nodes(["n1"]).is_empty());
    }
}
