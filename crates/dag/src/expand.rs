//! Expansion of the logical DAG into the physical task DAG (paper Figure 2).
//!
//! "Vertex parallelism and the edge properties can be used by Tez to expand
//! the logical DAG to the real physical task execution DAG during
//! execution." The orchestrator performs this incrementally and lazily; this
//! module provides the eager whole-graph expansion used for planning
//! estimates, visualisation and tests.

use crate::edge::{builtin_edge_manager, DataMovement, EdgeManagerPlugin, EdgeRoutingContext};
use crate::error::DagError;
use crate::graph::Dag;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a physical task: (vertex index, task index within vertex).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalTaskId {
    /// Index of the vertex in the logical DAG.
    pub vertex: usize,
    /// Task index within the vertex (0-based).
    pub task: usize,
}

/// A physical data transfer between two tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhysicalTransfer {
    /// Producer task.
    pub src: PhysicalTaskId,
    /// Partition index of the producer output.
    pub partition: usize,
    /// Consumer task.
    pub dst: PhysicalTaskId,
    /// Physical input index on the consumer.
    pub dst_input_index: usize,
    /// Index of the logical edge this transfer belongs to.
    pub edge: usize,
}

/// The physical task DAG produced by expanding a logical DAG.
#[derive(Clone, Debug)]
pub struct PhysicalDag {
    /// Task count per vertex, indexed by vertex index.
    pub parallelism: Vec<usize>,
    /// Every physical transfer, in deterministic order.
    pub transfers: Vec<PhysicalTransfer>,
}

impl PhysicalDag {
    /// Total number of physical tasks.
    pub fn num_tasks(&self) -> usize {
        self.parallelism.iter().sum()
    }

    /// Transfers arriving at one task.
    pub fn inputs_of(&self, task: PhysicalTaskId) -> Vec<&PhysicalTransfer> {
        self.transfers.iter().filter(|t| t.dst == task).collect()
    }

    /// Transfers leaving one task.
    pub fn outputs_of(&self, task: PhysicalTaskId) -> Vec<&PhysicalTransfer> {
        self.transfers.iter().filter(|t| t.src == task).collect()
    }

    /// Render the physical DAG in Graphviz DOT format, clustered per vertex
    /// as in paper Figure 2's "actual execution" panel.
    pub fn to_dot(&self, dag: &Dag) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}-physical\" {{", dag.name());
        for (vi, v) in dag.vertices().iter().enumerate() {
            let _ = writeln!(s, "  subgraph cluster_{vi} {{ label={:?};", v.name);
            for t in 0..self.parallelism[vi] {
                let _ = writeln!(
                    s,
                    "    t_{vi}_{t} [shape=ellipse,label=\"{}[{t}]\"];",
                    v.name
                );
            }
            s.push_str("  }\n");
        }
        for tr in &self.transfers {
            let _ = writeln!(
                s,
                "  t_{}_{} -> t_{}_{};",
                tr.src.vertex, tr.src.task, tr.dst.vertex, tr.dst.task
            );
        }
        s.push_str("}\n");
        s
    }
}

/// Expand `dag` into its physical task DAG using the given resolved
/// parallelisms and custom edge managers.
///
/// * `parallelism` — resolved task counts per vertex (every `Auto` must be
///   resolved by the caller; the orchestrator resolves them at runtime).
/// * `custom_managers` — edge-manager implementations for edges whose
///   movement is [`DataMovement::Custom`], keyed by logical edge index.
///
/// # Errors
/// Returns [`DagError::MissingEdgeManager`] if a custom edge lacks a
/// manager and [`DagError::OneToOneParallelismMismatch`] if one-to-one
/// parallelisms disagree — callers surface these as DAG failures instead
/// of crashing the orchestrator.
pub fn expand(
    dag: &Dag,
    parallelism: &[usize],
    custom_managers: &HashMap<usize, Arc<dyn EdgeManagerPlugin>>,
) -> Result<PhysicalDag, DagError> {
    assert_eq!(parallelism.len(), dag.num_vertices());
    let mut transfers = Vec::new();
    for (ei, e) in dag.edges().iter().enumerate() {
        let s = dag.vertex_index(&e.src).expect("validated");
        let d = dag.vertex_index(&e.dst).expect("validated");
        let ctx = EdgeRoutingContext {
            num_src_tasks: parallelism[s],
            num_dst_tasks: parallelism[d],
        };
        let mgr: Arc<dyn EdgeManagerPlugin> = match builtin_edge_manager(&e.property.movement) {
            Some(m) => m,
            None => custom_managers
                .get(&ei)
                .ok_or_else(|| DagError::MissingEdgeManager {
                    src: e.src.clone(),
                    dst: e.dst.clone(),
                })?
                .clone(),
        };
        if matches!(e.property.movement, DataMovement::OneToOne)
            && ctx.num_src_tasks != ctx.num_dst_tasks
        {
            return Err(DagError::OneToOneParallelismMismatch {
                src: e.src.clone(),
                dst: e.dst.clone(),
                src_tasks: ctx.num_src_tasks,
                dst_tasks: ctx.num_dst_tasks,
            });
        }
        for st in 0..ctx.num_src_tasks {
            for p in 0..mgr.num_physical_outputs(&ctx, st) {
                for r in mgr.route(&ctx, st, p) {
                    transfers.push(PhysicalTransfer {
                        src: PhysicalTaskId {
                            vertex: s,
                            task: st,
                        },
                        partition: p,
                        dst: PhysicalTaskId {
                            vertex: d,
                            task: r.dst_task,
                        },
                        dst_input_index: r.dst_input_index,
                        edge: ei,
                    });
                }
            }
        }
    }
    Ok(PhysicalDag {
        parallelism: parallelism.to_vec(),
        transfers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DagBuilder;
    use crate::edge::{DataMovement, EdgeProperty};
    use crate::payload::NamedDescriptor;
    use crate::vertex::Vertex;

    fn p() -> NamedDescriptor {
        NamedDescriptor::new("P")
    }

    fn prop(m: DataMovement) -> EdgeProperty {
        EdgeProperty::new(m, NamedDescriptor::new("O"), NamedDescriptor::new("I"))
    }

    /// The Figure 2 DAG: filter1/filter2 feed join via scatter-gather;
    /// filter1 also feeds agg one-to-one; agg feeds join scatter-gather.
    /// (A representative shape exercising all three built-in patterns.)
    fn figure2() -> Dag {
        DagBuilder::new("fig2")
            .add_vertex(Vertex::new("filter1", p()).with_parallelism(3))
            .add_vertex(Vertex::new("filter2", p()).with_parallelism(3))
            .add_vertex(Vertex::new("agg", p()).with_parallelism(3))
            .add_vertex(Vertex::new("join", p()).with_parallelism(2))
            .add_edge("filter1", "agg", prop(DataMovement::OneToOne))
            .add_edge("agg", "join", prop(DataMovement::ScatterGather))
            .add_edge("filter2", "join", prop(DataMovement::ScatterGather))
            .build()
            .unwrap()
    }

    #[test]
    fn expansion_counts() {
        let d = figure2();
        let phys = expand(&d, &[3, 3, 3, 2], &HashMap::new()).unwrap();
        assert_eq!(phys.num_tasks(), 11);
        // one-to-one: 3 transfers; each scatter-gather: 3 src x 2 dst = 6.
        assert_eq!(phys.transfers.len(), 3 + 6 + 6);
    }

    #[test]
    fn one_to_one_connects_same_index() {
        let d = figure2();
        let phys = expand(&d, &[3, 3, 3, 2], &HashMap::new()).unwrap();
        let f1 = d.vertex_index("filter1").unwrap();
        let agg = d.vertex_index("agg").unwrap();
        for t in phys.transfers.iter().filter(|t| t.src.vertex == f1) {
            assert_eq!(t.dst.vertex, agg);
            assert_eq!(t.src.task, t.dst.task);
        }
    }

    #[test]
    fn scatter_gather_inputs_complete() {
        let d = figure2();
        let phys = expand(&d, &[3, 3, 3, 2], &HashMap::new()).unwrap();
        let join = d.vertex_index("join").unwrap();
        for jt in 0..2 {
            let ins = phys.inputs_of(PhysicalTaskId {
                vertex: join,
                task: jt,
            });
            // 3 from agg + 3 from filter2.
            assert_eq!(ins.len(), 6);
        }
    }

    #[test]
    fn broadcast_expansion() {
        let d = DagBuilder::new("b")
            .add_vertex(Vertex::new("small", p()).with_parallelism(2))
            .add_vertex(Vertex::new("big", p()).with_parallelism(5))
            .add_edge("small", "big", prop(DataMovement::Broadcast))
            .build()
            .unwrap();
        let phys = expand(&d, &[2, 5], &HashMap::new()).unwrap();
        assert_eq!(phys.transfers.len(), 10);
        for t in 0..5 {
            assert_eq!(
                phys.inputs_of(PhysicalTaskId { vertex: 1, task: t }).len(),
                2
            );
        }
    }

    #[test]
    fn physical_dot_renders() {
        let d = figure2();
        let phys = expand(&d, &[3, 3, 3, 2], &HashMap::new()).unwrap();
        let dot = phys.to_dot(&d);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("t_0_0"));
    }

    #[test]
    fn one_to_one_mismatch_is_a_typed_error() {
        let d = DagBuilder::new("m")
            .add_vertex(Vertex::new("a", p()).with_parallelism(2))
            .add_vertex(Vertex::new("b", p())) // Auto
            .add_edge("a", "b", prop(DataMovement::OneToOne))
            .build()
            .unwrap();
        // Caller resolves Auto wrongly to 3.
        let err = expand(&d, &[2, 3], &HashMap::new()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::DagError::OneToOneParallelismMismatch {
                src_tasks: 2,
                dst_tasks: 3,
                ..
            }
        ));
    }

    #[test]
    fn missing_custom_edge_manager_is_a_typed_error() {
        let d = DagBuilder::new("c")
            .add_vertex(Vertex::new("a", p()).with_parallelism(2))
            .add_vertex(Vertex::new("b", p()).with_parallelism(2))
            .add_edge(
                "a",
                "b",
                prop(DataMovement::Custom {
                    manager: NamedDescriptor::new("user.Missing"),
                }),
            )
            .build()
            .unwrap();
        let err = expand(&d, &[2, 2], &HashMap::new()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::DagError::MissingEdgeManager { .. }
        ));
    }
}
