//! Edge definitions: connection patterns, transports, and the pluggable
//! [`EdgeManagerPlugin`] routing API (paper §3.1, "Edge").
//!
//! An edge has a *logical* aspect — the connection pattern between producer
//! and consumer tasks, expressed by an edge manager's routing table — and a
//! *physical* aspect — the transport mechanism, implemented by a compatible
//! pair of output/input classes referenced by descriptors.

use crate::payload::NamedDescriptor;
use std::sync::Arc;

/// Built-in connection patterns (paper Figure 3) plus custom routing.
#[derive(Clone, Debug)]
pub enum DataMovement {
    /// Task *i* of the producer feeds task *i* of the consumer.
    OneToOne,
    /// Every producer task feeds every consumer task with its whole output.
    Broadcast,
    /// Every producer task partitions its output; consumer task *j* gathers
    /// partition *j* from every producer (the classic shuffle).
    ScatterGather,
    /// Application-defined routing via a custom [`EdgeManagerPlugin`]
    /// registered under `manager.kind` (e.g. Hive's dynamically partitioned
    /// hash join, §5.2).
    Custom {
        /// Descriptor of the custom edge manager.
        manager: NamedDescriptor,
    },
}

impl DataMovement {
    /// Short label used in traces and DOT output.
    pub fn label(&self) -> &str {
        match self {
            DataMovement::OneToOne => "one-to-one",
            DataMovement::Broadcast => "broadcast",
            DataMovement::ScatterGather => "scatter-gather",
            DataMovement::Custom { .. } => "custom",
        }
    }
}

/// Physical transport of an edge: where intermediate data lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Producer-local main memory; consumers fetch over the network.
    Memory,
    /// Producer-local disk served by the shuffle service; consumers fetch
    /// over the network. This is the default, fault-tolerant choice.
    LocalDisk,
    /// Replicated distributed storage; survives producer node loss and acts
    /// as a barrier to cascading re-execution (paper §4.3).
    Reliable,
}

/// When consumer tasks become schedulable relative to producers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulingKind {
    /// Consumers start only after producers complete (possibly overlapped by
    /// a vertex manager's slow-start policy).
    Sequential,
    /// Consumers run concurrently with producers (streamed edges).
    Concurrent,
}

/// The full property set of a logical edge.
#[derive(Clone, Debug)]
pub struct EdgeProperty {
    /// Logical connection pattern.
    pub movement: DataMovement,
    /// Physical transport.
    pub transport: Transport,
    /// Scheduling dependency.
    pub scheduling: SchedulingKind,
    /// Output class instantiated in producer tasks for this edge.
    pub src_output: NamedDescriptor,
    /// Input class instantiated in consumer tasks for this edge.
    pub dst_input: NamedDescriptor,
}

impl EdgeProperty {
    /// Property with the given movement and IO classes, defaulting to
    /// local-disk transport and sequential scheduling.
    pub fn new(
        movement: DataMovement,
        src_output: NamedDescriptor,
        dst_input: NamedDescriptor,
    ) -> Self {
        EdgeProperty {
            movement,
            transport: Transport::LocalDisk,
            scheduling: SchedulingKind::Sequential,
            src_output,
            dst_input,
        }
    }

    /// Override the transport.
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Override the scheduling kind.
    pub fn with_scheduling(mut self, scheduling: SchedulingKind) -> Self {
        self.scheduling = scheduling;
        self
    }
}

/// A logical edge between two vertices, identified by their names.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Producer vertex name.
    pub src: String,
    /// Consumer vertex name.
    pub dst: String,
    /// Edge properties.
    pub property: EdgeProperty,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(src: impl Into<String>, dst: impl Into<String>, property: EdgeProperty) -> Self {
        Edge {
            src: src.into(),
            dst: dst.into(),
            property,
        }
    }
}

/// Context handed to an [`EdgeManagerPlugin`]: the physical parallelism of
/// both endpoints of the edge.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRoutingContext {
    /// Number of producer tasks.
    pub num_src_tasks: usize,
    /// Number of consumer tasks.
    pub num_dst_tasks: usize,
}

/// One physical routing entry: a producer partition is delivered to
/// `(dst_task, dst_input_index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Destination task index within the consumer vertex.
    pub dst_task: usize,
    /// Physical input index on the destination task that receives the data.
    pub dst_input_index: usize,
}

/// The pluggable routing table of an edge.
///
/// "This routing table must be specified by implementing a pluggable
/// EdgeManagerPlugin API" (paper §3.1). The orchestrator uses it to route
/// data-movement events from producer outputs to the correct consumer
/// inputs, and to expand the logical DAG into the physical task DAG.
///
/// Implementations must be pure functions of their inputs: routing is
/// consulted both during expansion and during event routing, and the two
/// must agree.
pub trait EdgeManagerPlugin: Send + Sync {
    /// Number of physical output partitions each producer task generates on
    /// this edge.
    fn num_physical_outputs(&self, ctx: &EdgeRoutingContext, src_task: usize) -> usize;

    /// Number of physical inputs each consumer task consumes on this edge.
    fn num_physical_inputs(&self, ctx: &EdgeRoutingContext, dst_task: usize) -> usize;

    /// Route one physical output `(src_task, partition)` to its consumers.
    fn route(&self, ctx: &EdgeRoutingContext, src_task: usize, partition: usize) -> Vec<Route>;

    /// Human-readable name for traces.
    fn name(&self) -> &str {
        "custom"
    }
}

/// Routing for [`DataMovement::ScatterGather`]: producer task `s` emits one
/// partition per consumer task; consumer task `d` gathers partition `d` from
/// every producer, at input index `s`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScatterGatherEdgeManager;

impl EdgeManagerPlugin for ScatterGatherEdgeManager {
    fn num_physical_outputs(&self, ctx: &EdgeRoutingContext, _src_task: usize) -> usize {
        ctx.num_dst_tasks
    }

    fn num_physical_inputs(&self, ctx: &EdgeRoutingContext, _dst_task: usize) -> usize {
        ctx.num_src_tasks
    }

    fn route(&self, ctx: &EdgeRoutingContext, src_task: usize, partition: usize) -> Vec<Route> {
        debug_assert!(partition < ctx.num_dst_tasks);
        vec![Route {
            dst_task: partition,
            dst_input_index: src_task,
        }]
    }

    fn name(&self) -> &str {
        "scatter-gather"
    }
}

/// Routing for [`DataMovement::Broadcast`]: each producer emits a single
/// partition consumed by every consumer task.
#[derive(Clone, Copy, Debug, Default)]
pub struct BroadcastEdgeManager;

impl EdgeManagerPlugin for BroadcastEdgeManager {
    fn num_physical_outputs(&self, _ctx: &EdgeRoutingContext, _src_task: usize) -> usize {
        1
    }

    fn num_physical_inputs(&self, ctx: &EdgeRoutingContext, _dst_task: usize) -> usize {
        ctx.num_src_tasks
    }

    fn route(&self, ctx: &EdgeRoutingContext, src_task: usize, partition: usize) -> Vec<Route> {
        debug_assert_eq!(partition, 0);
        (0..ctx.num_dst_tasks)
            .map(|d| Route {
                dst_task: d,
                dst_input_index: src_task,
            })
            .collect()
    }

    fn name(&self) -> &str {
        "broadcast"
    }
}

/// Routing for [`DataMovement::OneToOne`]: task `i` feeds task `i`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OneToOneEdgeManager;

impl EdgeManagerPlugin for OneToOneEdgeManager {
    fn num_physical_outputs(&self, _ctx: &EdgeRoutingContext, _src_task: usize) -> usize {
        1
    }

    fn num_physical_inputs(&self, _ctx: &EdgeRoutingContext, _dst_task: usize) -> usize {
        1
    }

    fn route(&self, ctx: &EdgeRoutingContext, src_task: usize, partition: usize) -> Vec<Route> {
        debug_assert_eq!(partition, 0);
        debug_assert!(
            src_task < ctx.num_dst_tasks,
            "one-to-one parallelism mismatch"
        );
        vec![Route {
            dst_task: src_task,
            dst_input_index: 0,
        }]
    }

    fn name(&self) -> &str {
        "one-to-one"
    }
}

/// Resolve the built-in edge manager for a movement pattern, if any.
/// `Custom` movements are resolved through the component registry by the
/// orchestrator instead.
pub fn builtin_edge_manager(movement: &DataMovement) -> Option<Arc<dyn EdgeManagerPlugin>> {
    match movement {
        DataMovement::OneToOne => Some(Arc::new(OneToOneEdgeManager)),
        DataMovement::Broadcast => Some(Arc::new(BroadcastEdgeManager)),
        DataMovement::ScatterGather => Some(Arc::new(ScatterGatherEdgeManager)),
        DataMovement::Custom { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(s: usize, d: usize) -> EdgeRoutingContext {
        EdgeRoutingContext {
            num_src_tasks: s,
            num_dst_tasks: d,
        }
    }

    #[test]
    fn scatter_gather_routing() {
        let m = ScatterGatherEdgeManager;
        let c = ctx(3, 4);
        assert_eq!(m.num_physical_outputs(&c, 0), 4);
        assert_eq!(m.num_physical_inputs(&c, 2), 3);
        assert_eq!(
            m.route(&c, 1, 2),
            vec![Route {
                dst_task: 2,
                dst_input_index: 1
            }]
        );
    }

    #[test]
    fn broadcast_routing() {
        let m = BroadcastEdgeManager;
        let c = ctx(2, 3);
        assert_eq!(m.num_physical_outputs(&c, 0), 1);
        assert_eq!(m.num_physical_inputs(&c, 0), 2);
        let routes = m.route(&c, 1, 0);
        assert_eq!(routes.len(), 3);
        assert!(routes.iter().all(|r| r.dst_input_index == 1));
        assert_eq!(
            routes.iter().map(|r| r.dst_task).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn one_to_one_routing() {
        let m = OneToOneEdgeManager;
        let c = ctx(3, 3);
        assert_eq!(m.num_physical_outputs(&c, 0), 1);
        assert_eq!(m.num_physical_inputs(&c, 0), 1);
        assert_eq!(
            m.route(&c, 2, 0),
            vec![Route {
                dst_task: 2,
                dst_input_index: 0
            }]
        );
    }

    #[test]
    fn builtin_lookup() {
        assert!(builtin_edge_manager(&DataMovement::OneToOne).is_some());
        assert!(builtin_edge_manager(&DataMovement::Broadcast).is_some());
        assert!(builtin_edge_manager(&DataMovement::ScatterGather).is_some());
        assert!(builtin_edge_manager(&DataMovement::Custom {
            manager: NamedDescriptor::new("x")
        })
        .is_none());
    }

    /// Every (src, partition) routed by scatter-gather lands on a distinct
    /// consumer input — the invariant the event router relies on.
    #[test]
    fn scatter_gather_covers_all_inputs_exactly_once() {
        let m = ScatterGatherEdgeManager;
        let c = ctx(5, 7);
        let mut seen = std::collections::HashSet::new();
        for s in 0..5 {
            for p in 0..m.num_physical_outputs(&c, s) {
                for r in m.route(&c, s, p) {
                    assert!(seen.insert((r.dst_task, r.dst_input_index)));
                }
            }
        }
        // 7 consumer tasks x 5 inputs each.
        assert_eq!(seen.len(), 35);
    }
}
