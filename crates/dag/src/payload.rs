//! Opaque user payloads and named component descriptors.
//!
//! Every application-specific entity in Tez — processors, inputs, outputs,
//! vertex managers, input initializers, committers, edge managers — is
//! configured through an **opaque binary payload** (paper §3.2, "IPO
//! Configuration"). The framework never interprets it; only the component
//! that owns it does. This module provides the payload wrapper plus a small
//! deterministic binary codec used by the built-in components.

use bytes::Bytes;
use std::fmt;

/// An opaque binary payload attached to a descriptor.
///
/// Cheap to clone (backed by [`Bytes`]).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct UserPayload(Bytes);

impl UserPayload {
    /// The empty payload.
    pub fn empty() -> Self {
        UserPayload(Bytes::new())
    }

    /// Wrap raw bytes.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Self {
        UserPayload(bytes.into())
    }

    /// Payload containing a UTF-8 string.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        UserPayload(Bytes::copy_from_slice(s.as_bytes()))
    }

    /// Raw bytes of the payload.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Whether the payload carries any bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of bytes in the payload.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Start a [`PayloadReader`] over this payload.
    pub fn reader(&self) -> PayloadReader<'_> {
        PayloadReader { buf: &self.0 }
    }
}

impl fmt::Debug for UserPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UserPayload({} bytes)", self.0.len())
    }
}

impl From<Bytes> for UserPayload {
    fn from(b: Bytes) -> Self {
        UserPayload(b)
    }
}

impl From<Vec<u8>> for UserPayload {
    fn from(v: Vec<u8>) -> Self {
        UserPayload(Bytes::from(v))
    }
}

/// A reference to user-supplied code: a component *kind* (resolved through
/// the component registry at runtime, like a Java class name) plus its
/// configuration payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedDescriptor {
    /// Registry key of the component implementation.
    pub kind: String,
    /// Opaque configuration handed to the component when instantiated.
    pub payload: UserPayload,
}

impl NamedDescriptor {
    /// Descriptor with an empty payload.
    pub fn new(kind: impl Into<String>) -> Self {
        NamedDescriptor {
            kind: kind.into(),
            payload: UserPayload::empty(),
        }
    }

    /// Descriptor with a payload.
    pub fn with_payload(kind: impl Into<String>, payload: UserPayload) -> Self {
        NamedDescriptor {
            kind: kind.into(),
            payload,
        }
    }
}

/// Little-endian, length-prefixed binary writer used by built-in components
/// to encode their payloads and control-plane event bodies deterministically.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an unsigned 64-bit integer.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a signed 64-bit integer.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Finish and produce a payload.
    pub fn finish(self) -> UserPayload {
        UserPayload(Bytes::from(self.buf))
    }

    /// Finish and produce raw bytes.
    pub fn finish_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Companion reader for [`PayloadWriter`]-encoded payloads.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
}

impl<'a> PayloadReader<'a> {
    /// Reader over raw bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.buf.len() >= n,
            "payload underflow: need {n} bytes, have {}",
            self.buf.len()
        );
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        head
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> &'a [u8] {
        let len = self.get_u64() as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> &'a str {
        std::str::from_utf8(self.get_bytes()).expect("payload string is not valid UTF-8")
    }

    /// Whether all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let mut w = PayloadWriter::new();
        w.put_u64(42).put_i64(-7).put_f64(2.5).put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let p = w.finish();
        let mut r = p.reader();
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_i64(), -7);
        assert_eq!(r.get_f64(), 2.5);
        assert_eq!(r.get_str(), "hello");
        assert_eq!(r.get_bytes(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn empty_payload() {
        let p = UserPayload::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.reader().is_exhausted());
    }

    #[test]
    fn descriptor_holds_kind_and_payload() {
        let d = NamedDescriptor::with_payload("my.Processor", UserPayload::from_str("cfg"));
        assert_eq!(d.kind, "my.Processor");
        assert_eq!(d.payload.as_bytes(), b"cfg");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reader_underflow_panics() {
        let p = UserPayload::from_bytes(vec![1u8, 2, 3]);
        let mut r = p.reader();
        r.get_u64();
    }
}
