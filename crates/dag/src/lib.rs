//! # tez-dag — the DAG API
//!
//! This crate implements the *DAG API* of the Tez paper (§3.1): a concise,
//! engine-agnostic way to describe the **structure** of a data-flow
//! computation, without attaching any data-plane semantics to it.
//!
//! The central types are:
//!
//! * [`Dag`] / [`DagBuilder`] — a validated directed acyclic graph of named
//!   [`Vertex`]es connected by [`Edge`]s.
//! * [`NamedDescriptor`] — an opaque *(kind, payload)* reference to
//!   user-supplied code (processor, input, output, vertex manager, …). This
//!   mirrors Java Tez, where entities are referenced by class name plus an
//!   opaque binary payload and instantiated at runtime; here the `kind` is
//!   resolved through a component registry in `tez-runtime`.
//! * [`EdgeProperty`] — the logical *connection pattern* ([`DataMovement`])
//!   plus the physical *transport* ([`Transport`]) of an edge, together with
//!   the input/output classes that implement the actual data transfer.
//! * [`EdgeManagerPlugin`] — the pluggable routing table that expands a
//!   logical edge into physical task-to-task connections. One-to-one,
//!   broadcast and scatter-gather come built in; engines may supply custom
//!   routing (e.g. Hive's dynamically partitioned hash join).
//! * [`expand`](expand::expand) — expansion of the logical DAG into the
//!   physical task DAG, as visualised in Figure 2 of the paper.
//!
//! The crate deliberately knows nothing about execution: scheduling, fault
//! tolerance and the event control plane live in `tez-core`, and the data
//! plane lives in `tez-shuffle`. Keeping this separation is the paper's key
//! design point ("Tez specifies no data format and is not part of the data
//! plane").

pub mod builder;
pub mod edge;
pub mod error;
pub mod expand;
pub mod graph;
pub mod payload;
pub mod vertex;

pub use builder::DagBuilder;
pub use edge::{
    BroadcastEdgeManager, DataMovement, Edge, EdgeManagerPlugin, EdgeProperty, EdgeRoutingContext,
    OneToOneEdgeManager, Route, ScatterGatherEdgeManager, SchedulingKind, Transport,
};
pub use error::DagError;
pub use expand::{expand, PhysicalDag, PhysicalTaskId};
pub use graph::Dag;
pub use payload::{NamedDescriptor, PayloadReader, PayloadWriter, UserPayload};
pub use vertex::{LeafOutput, Parallelism, Resource, RootInput, TaskLocationHint, Vertex};
