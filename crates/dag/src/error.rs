//! Error type for DAG construction and validation.

use std::fmt;

/// Errors produced while building or validating a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The DAG has no vertices.
    EmptyDag,
    /// Two vertices share a name.
    DuplicateVertex(String),
    /// An edge references a vertex name that is not part of the DAG.
    UnknownVertex(String),
    /// An edge connects a vertex to itself.
    SelfLoop(String),
    /// Two edges connect the same (source, destination) pair.
    DuplicateEdge { src: String, dst: String },
    /// The graph contains a cycle; the payload is one vertex on the cycle.
    Cycle(String),
    /// A vertex declared `Parallelism::Fixed(0)`.
    ZeroParallelism(String),
    /// A one-to-one edge connects vertices whose fixed parallelisms differ.
    OneToOneParallelismMismatch {
        src: String,
        dst: String,
        src_tasks: usize,
        dst_tasks: usize,
    },
    /// A root input or leaf output name collides with another on the vertex.
    DuplicateIo { vertex: String, name: String },
    /// A custom edge was expanded without a registered edge manager.
    MissingEdgeManager { src: String, dst: String },
    /// A vertex with `Parallelism::Auto` has neither an incoming edge nor a
    /// root input initializer able to decide its parallelism.
    UndecidableParallelism(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::EmptyDag => write!(f, "DAG contains no vertices"),
            DagError::DuplicateVertex(v) => write!(f, "duplicate vertex name {v:?}"),
            DagError::UnknownVertex(v) => write!(f, "edge references unknown vertex {v:?}"),
            DagError::SelfLoop(v) => write!(f, "self-loop on vertex {v:?}"),
            DagError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src:?} -> {dst:?}")
            }
            DagError::Cycle(v) => write!(f, "cycle detected through vertex {v:?}"),
            DagError::ZeroParallelism(v) => {
                write!(f, "vertex {v:?} declares fixed parallelism of 0")
            }
            DagError::OneToOneParallelismMismatch {
                src,
                dst,
                src_tasks,
                dst_tasks,
            } => write!(
                f,
                "one-to-one edge {src:?} -> {dst:?} connects mismatched parallelisms \
                 {src_tasks} vs {dst_tasks}"
            ),
            DagError::DuplicateIo { vertex, name } => {
                write!(
                    f,
                    "vertex {vertex:?} has duplicate input/output name {name:?}"
                )
            }
            DagError::MissingEdgeManager { src, dst } => {
                write!(f, "no edge manager for custom edge {src:?} -> {dst:?}")
            }
            DagError::UndecidableParallelism(v) => write!(
                f,
                "vertex {v:?} has Auto parallelism but no incoming edge or root input \
                 initializer to decide it"
            ),
        }
    }
}

impl std::error::Error for DagError {}
