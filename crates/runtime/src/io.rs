//! The IPO task composition (paper §3.2): inputs, processor, outputs.
//!
//! "Tez defines each task as a composition of a set of inputs, a processor
//! and a set of outputs (IPO). … The inputs and outputs hide details like
//! the data transport, partitioning of data and/or aggregation of
//! distributed shards."

use crate::counters::Counters;
use crate::env::TaskEnv;
use crate::error::TaskError;
use crate::events::{OutboundEvent, ShardLocator};
use crate::kv::InputReader;
use bytes::Bytes;
use tez_dag::NamedDescriptor;

/// Identity of one task attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskMeta {
    /// DAG name.
    pub dag: String,
    /// Vertex name.
    pub vertex: String,
    /// Task index within the vertex.
    pub task_index: usize,
    /// Total tasks in the vertex (resolved parallelism).
    pub num_tasks: usize,
    /// Attempt number (0-based; >0 for retries and speculation).
    pub attempt: usize,
}

/// Where a logical input's data comes from.
#[derive(Clone, Debug)]
pub enum InputSource {
    /// Edge input: shards to fetch from the shuffle service, one per
    /// physical input, in input-index order.
    Shards(Vec<ShardLocator>),
    /// Root input: the opaque split payload assigned by the initializer.
    Split(Bytes),
}

/// One logical input of a task.
#[derive(Clone, Debug)]
pub struct InputSpec {
    /// Logical name: the producing vertex name for edge inputs, or the data
    /// source name for root inputs.
    pub name: String,
    /// Input class + configuration.
    pub descriptor: NamedDescriptor,
    /// The physical data.
    pub source: InputSource,
}

/// One logical output of a task.
#[derive(Clone, Debug)]
pub struct OutputSpec {
    /// Logical name: the consuming vertex name for edge outputs, or the
    /// data sink name for leaf outputs.
    pub name: String,
    /// Output class + configuration.
    pub descriptor: NamedDescriptor,
    /// Number of physical partitions to produce (from the edge manager).
    pub num_partitions: usize,
    /// Whether this is a leaf (data sink) output.
    pub is_sink: bool,
    /// Index of the task this output belongs to (sink outputs use it for
    /// part-file naming).
    pub task_index: usize,
    /// Name of the producing vertex (part-file names must be unique across
    /// vertices writing the same sink path).
    pub vertex: String,
}

/// Complete specification of one task attempt, assembled by the
/// orchestrator and handed to the task executor.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Task identity.
    pub meta: TaskMeta,
    /// Processor class + configuration.
    pub processor: NamedDescriptor,
    /// Inputs in deterministic (edge declaration) order.
    pub inputs: Vec<InputSpec>,
    /// Outputs in deterministic order.
    pub outputs: Vec<OutputSpec>,
}

/// A logical input: fetches/decodes its shards in [`start`](Self::start),
/// then hands the processor a reader.
pub trait LogicalInput: Send {
    /// Fetch and prepare data. Fetch failures must be reported as
    /// [`TaskError::InputRead`] so the framework can regenerate producers.
    fn start(&mut self, env: &mut TaskEnv<'_>) -> Result<(), TaskError>;

    /// The reader over the prepared data. Consumes the prepared data; the
    /// framework calls this at most once.
    fn reader(&mut self) -> Result<InputReader, TaskError>;

    /// Total bytes read (local + remote).
    fn bytes_read(&self) -> u64;

    /// Records read.
    fn records_read(&self) -> u64;

    /// Bytes fetched across the network (subset of [`bytes_read`](Self::bytes_read)).
    fn remote_bytes(&self) -> u64 {
        0
    }

    /// Physical shards fetched from the shuffle service (0 for root
    /// inputs, which read splits rather than shards).
    fn shards_fetched(&self) -> u64 {
        0
    }
}

/// One materialized output partition, ready for the data service.
#[derive(Clone, Debug)]
pub struct PartitionBuf {
    /// Encoded key-value data.
    pub data: Bytes,
    /// Record count.
    pub records: u64,
    /// Whether sorted by key.
    pub sorted: bool,
}

/// A leaf-output artifact: a part-file destined for the DFS, made visible
/// only by the committer after success (paper §3.1, "commit … is guaranteed
/// to be done once").
#[derive(Clone, Debug)]
pub struct SinkArtifact {
    /// Target file path.
    pub path: String,
    /// Part name (unique per task, e.g. `part-00003`).
    pub part: String,
    /// Data blocks with record counts.
    pub blocks: Vec<(Bytes, u64)>,
}

/// Everything an output produced, returned from [`LogicalOutput::close`].
#[derive(Clone, Debug, Default)]
pub struct OutputCommit {
    /// Edge output partitions to publish to the data service.
    pub partitions: Vec<PartitionBuf>,
    /// Leaf output artifact, if this was a sink.
    pub sink: Option<SinkArtifact>,
    /// Bytes spilled during sorting (for counters/cost model).
    pub spilled_bytes: u64,
}

impl OutputCommit {
    /// Total bytes across partitions and sink blocks.
    pub fn total_bytes(&self) -> u64 {
        let p: u64 = self.partitions.iter().map(|p| p.data.len() as u64).sum();
        let s: u64 = self
            .sink
            .iter()
            .flat_map(|s| s.blocks.iter())
            .map(|(d, _)| d.len() as u64)
            .sum();
        p + s
    }

    /// Total records across partitions and sink blocks.
    pub fn total_records(&self) -> u64 {
        let p: u64 = self.partitions.iter().map(|p| p.records).sum();
        let s: u64 = self
            .sink
            .iter()
            .flat_map(|s| s.blocks.iter())
            .map(|(_, r)| r)
            .sum();
        p + s
    }
}

/// A logical output: accepts writes from the processor, and on close
/// produces the partitions/artifacts to publish.
pub trait LogicalOutput: Send {
    /// Write one key-value pair.
    fn write(&mut self, key: &[u8], value: &[u8]) -> Result<(), TaskError>;

    /// Finish: sort/spill/merge as needed and return the produced data.
    fn close(&mut self, env: &mut TaskEnv<'_>) -> Result<OutputCommit, TaskError>;

    /// Replace this output's configuration with a new opaque payload before
    /// any write — the "IPO configuration" late-binding hook (paper §3.2).
    /// E.g. a processor installs range-partition bounds computed at runtime
    /// from a sampled histogram. Default: configuration is immutable.
    fn reconfigure(&mut self, payload: &[u8]) -> Result<(), TaskError> {
        let _ = payload;
        Err(TaskError::Fatal(
            "output does not support reconfiguration".into(),
        ))
    }
}

/// An instantiated, named logical input.
pub struct NamedInput {
    /// Logical name (see [`InputSpec::name`]).
    pub name: String,
    /// The live input.
    pub input: Box<dyn LogicalInput>,
}

/// An instantiated, named logical output.
pub struct NamedOutput {
    /// Logical name (see [`OutputSpec::name`]).
    pub name: String,
    /// The live output.
    pub output: Box<dyn LogicalOutput>,
}

/// Context handed to a [`Processor::run`]: its IPOs, environment, counters
/// and the outbound event channel.
pub struct ProcessorContext<'a, 'b> {
    /// Task identity.
    pub meta: &'a TaskMeta,
    /// Started inputs (ready to read).
    pub inputs: &'a mut Vec<NamedInput>,
    /// Open outputs.
    pub outputs: &'a mut Vec<NamedOutput>,
    /// Task environment.
    pub env: &'a mut TaskEnv<'b>,
    /// Task counters.
    pub counters: &'a mut Counters,
    /// Events to route after the task completes (control plane, §3.3).
    pub events: &'a mut Vec<OutboundEvent>,
}

impl<'a, 'b> ProcessorContext<'a, 'b> {
    /// Take the reader of the named input.
    pub fn reader(&mut self, name: &str) -> Result<InputReader, TaskError> {
        let input = self
            .inputs
            .iter_mut()
            .find(|i| i.name == name)
            .ok_or_else(|| TaskError::Corrupt(format!("no input named {name:?}")))?;
        input.input.reader()
    }

    /// Write a pair to the named output.
    pub fn write(&mut self, name: &str, key: &[u8], value: &[u8]) -> Result<(), TaskError> {
        let output = self
            .outputs
            .iter_mut()
            .find(|o| o.name == name)
            .ok_or_else(|| TaskError::Corrupt(format!("no output named {name:?}")))?;
        output.output.write(key, value)
    }

    /// Names of all inputs, in spec order.
    pub fn input_names(&self) -> Vec<String> {
        self.inputs.iter().map(|i| i.name.clone()).collect()
    }

    /// Names of all outputs, in spec order.
    pub fn output_names(&self) -> Vec<String> {
        self.outputs.iter().map(|o| o.name.clone()).collect()
    }

    /// Emit a control-plane event.
    pub fn emit(&mut self, event: OutboundEvent) {
        self.events.push(event);
    }

    /// Reconfigure the named output with a new opaque payload (must happen
    /// before writing to it).
    pub fn reconfigure_output(&mut self, name: &str, payload: &[u8]) -> Result<(), TaskError> {
        let output = self
            .outputs
            .iter_mut()
            .find(|o| o.name == name)
            .ok_or_else(|| TaskError::Corrupt(format!("no output named {name:?}")))?;
        output.output.reconfigure(payload)
    }
}

/// The user-supplied transformation logic of a vertex.
pub trait Processor: Send {
    /// Run the task: read from inputs, write to outputs. The framework
    /// starts inputs before `run` and closes outputs after it.
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError>;
}

/// Everything a finished task attempt produced; assembled by the executor.
#[derive(Debug, Default)]
pub struct TaskOutcome {
    /// Output name → commit, in output-spec order.
    pub outputs: Vec<(String, OutputCommit)>,
    /// Final counters.
    pub counters: Counters,
    /// Events emitted by the processor.
    pub events: Vec<OutboundEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_commit_totals() {
        let c = OutputCommit {
            partitions: vec![
                PartitionBuf {
                    data: Bytes::from_static(b"abcd"),
                    records: 2,
                    sorted: true,
                },
                PartitionBuf {
                    data: Bytes::from_static(b"ef"),
                    records: 1,
                    sorted: true,
                },
            ],
            sink: Some(SinkArtifact {
                path: "/out".into(),
                part: "part-0".into(),
                blocks: vec![(Bytes::from_static(b"xyz"), 3)],
            }),
            spilled_bytes: 0,
        };
        assert_eq!(c.total_bytes(), 9);
        assert_eq!(c.total_records(), 6);
    }
}
