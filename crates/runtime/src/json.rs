//! Shared hand-rolled JSON infrastructure for the deterministic codecs in
//! [`crate::run_report`] and [`crate::timeline`]: an incremental writer with
//! caller-controlled field order and a strict parser accepting only what the
//! writers emit (plus whitespace). Keeping both in one place guarantees the
//! two documents follow the same discipline — fixed field order, sorted
//! maps, integer-only numbers — so same-seed runs serialize byte-identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;

pub(crate) fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object: fields appear exactly in call
/// order, which is what makes the output deterministic.
pub(crate) struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub(crate) fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }
    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        esc(&mut self.buf, k);
        self.buf.push(':');
    }
    pub(crate) fn num(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }
    pub(crate) fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        esc(&mut self.buf, v);
        self
    }
    pub(crate) fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }
    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

pub(crate) fn array(items: impl Iterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum JVal {
    Num(u64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(BTreeMap<String, JVal>),
}

pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    pub(crate) fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.arr(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Parse one complete document: a value followed only by whitespace.
    pub(crate) fn document(&mut self) -> Result<JVal, String> {
        let root = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data"));
        }
        Ok(root)
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn arr(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<u64>()
            .map(JVal::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

pub(crate) fn get<'a>(obj: &'a BTreeMap<String, JVal>, key: &str) -> Result<&'a JVal, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

pub(crate) fn get_num(obj: &BTreeMap<String, JVal>, key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        JVal::Num(n) => Ok(*n),
        _ => Err(format!("field {key:?} is not a number")),
    }
}

pub(crate) fn get_str(obj: &BTreeMap<String, JVal>, key: &str) -> Result<String, String> {
    match get(obj, key)? {
        JVal::Str(s) => Ok(s.clone()),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

pub(crate) fn as_obj(v: &JVal, what: &str) -> Result<BTreeMap<String, JVal>, String> {
    match v {
        JVal::Obj(m) => Ok(m.clone()),
        _ => Err(format!("{what} is not an object")),
    }
}
