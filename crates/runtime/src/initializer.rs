//! Data-source initializers (paper §3.5).
//!
//! "A data source in a DAG can be associated with a DataSourceInitializer
//! that is invoked by the framework before running tasks for the vertex
//! reading that data source. The initializer has the opportunity to use
//! accurate information available at runtime to determine how to optimally
//! read the input." Split calculation and Hive's dynamic partition pruning
//! are the canonical uses.

use crate::counters::Counters;
use crate::env::Dfs;
use crate::error::TaskError;
use bytes::Bytes;

/// One shard of root-input work assigned to a task.
#[derive(Clone, Debug)]
pub struct InputSplit {
    /// Opaque payload interpreted by the input class (e.g. file + block
    /// range).
    pub payload: Bytes,
    /// Preferred hosts (for locality-aware scheduling).
    pub hosts: Vec<String>,
    /// Estimated bytes covered by the split.
    pub bytes: u64,
    /// Estimated records covered by the split.
    pub records: u64,
}

/// Outcome of an initializer step.
#[derive(Debug)]
pub enum InitializerResult {
    /// Splits are decided; the vertex may configure its parallelism.
    Ready(Vec<InputSplit>),
    /// The initializer is waiting for runtime information delivered via
    /// [`InputInitializer::on_event`] (e.g. pruning metadata from another
    /// part of the DAG).
    Waiting,
}

/// Runtime information available to an initializer: cluster state and the
/// distributed filesystem ("it also has access to cluster information via
/// its framework context object").
pub trait InitializerContext {
    /// The distributed filesystem.
    fn dfs(&self) -> &dyn Dfs;
    /// Number of live cluster nodes.
    fn cluster_nodes(&self) -> usize;
    /// Total concurrently-runnable task slots in the cluster.
    fn total_slots(&self) -> usize;
    /// The vertex this initializer belongs to.
    fn vertex_name(&self) -> &str;
    /// DAG-level counters for recording statistics (e.g. pruned splits).
    fn counters(&mut self) -> &mut Counters;
}

/// The DataSourceInitializer API.
pub trait InputInitializer: Send {
    /// Compute splits, or declare that runtime events are needed first.
    fn initialize(
        &mut self,
        ctx: &mut dyn InitializerContext,
    ) -> Result<InitializerResult, TaskError>;

    /// Receive an application event (opaque payload) routed to this
    /// initializer; may now be able to produce (pruned) splits.
    fn on_event(
        &mut self,
        payload: &[u8],
        ctx: &mut dyn InitializerContext,
    ) -> Result<InitializerResult, TaskError> {
        let _ = (payload, ctx);
        Ok(InitializerResult::Waiting)
    }
}
