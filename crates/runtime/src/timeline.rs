//! The structured event timeline: a typed, append-only log of everything
//! that happens during a run, stamped with simulated time (paper §7 — the
//! YARN Timeline Server and Tez UI answer *where time goes*; this module is
//! their in-process equivalent).
//!
//! Every layer emits into one [`Timeline`]: the simulator and RM record
//! container requests, allocations, preemptions and work spans; the AM
//! records DAG/vertex/attempt state transitions and VertexManager
//! reconfigurations; the shuffle layer records fetch retries and failures.
//! The per-DAG slice is carried on [`RunReport`] and feeds two consumers:
//!
//! * [`chrome_trace`] — a Chrome Trace Event Format exporter. Open the
//!   emitted JSON in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`: one row per container, nested phase slices for
//!   cold launch / retry backoff / input fetch, and flow arrows for the
//!   shuffle edge that gated each consumer attempt.
//! * [`CriticalPath`] — walks attempt spans plus edge dependencies backward
//!   from the last finishing attempt and attributes the makespan, exactly,
//!   to six phases: scheduler wait, container launch, retry backoff, input
//!   fetch, processing, and commit.
//!
//! The JSON codecs follow the same hand-rolled discipline as
//! [`crate::run_report`]: fixed field order, integer-only numbers
//! (booleans serialize as `0`/`1`), byte-identical across same-seed runs.

use crate::json::{array, as_obj, get_num, get_str, JVal, Obj, Parser};
use crate::run_report::{Locality, RunReport};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// `app` value for cluster-global events (for example node failures) that
/// belong to every application's timeline slice.
pub const GLOBAL_APP: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Event types
// ---------------------------------------------------------------------------

/// One typed timeline event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A DAG was submitted to the AM.
    DagSubmitted { dag: String },
    /// A DAG reached a terminal state.
    DagFinished { dag: String, status: String },
    /// An edge of the submitted DAG (recorded once per DAG so consumers can
    /// reconstruct the dependency structure without the DAG object).
    EdgeDefined {
        src: String,
        dst: String,
        movement: String,
    },
    /// A vertex started (tasks became schedulable).
    VertexStarted { vertex: String, parallelism: u64 },
    /// A VertexManager reconfigured a vertex at runtime (§3.4).
    VertexReconfigured { vertex: String, parallelism: u64 },
    /// All tasks of a vertex succeeded.
    VertexFinished { vertex: String },
    /// The AM decided to run an attempt and queued a container request.
    AttemptScheduled {
        vertex: String,
        task: u64,
        attempt: u64,
        speculative: bool,
    },
    /// The attempt was bound to an allocated container.
    AttemptAssigned {
        vertex: String,
        task: u64,
        attempt: u64,
        container: u64,
        warm: bool,
    },
    /// The attempt's work was handed to the simulator. The cost breakdown
    /// records where its wall time will go: container cold start, shuffle
    /// retry backoff, and remote input fetch (everything else is compute).
    AttemptLaunched {
        vertex: String,
        task: u64,
        attempt: u64,
        container: u64,
        launch_ms: u64,
        backoff_ms: u64,
        fetch_ms: u64,
    },
    /// The attempt reached a terminal state.
    AttemptFinished {
        vertex: String,
        task: u64,
        attempt: u64,
        container: u64,
        status: String,
    },
    /// The app asked the RM for a container.
    ContainerRequested { request: u64, priority: u64 },
    /// The RM placed a container (locality outcome of delay scheduling).
    ContainerAllocated {
        container: u64,
        node: u64,
        vcores: u64,
        locality: Locality,
        waited_ms: u64,
        relaxed: bool,
    },
    /// The app returned a container to the RM.
    ContainerReleased { container: u64, vcores: u64 },
    /// The RM preempted a container for a starved queue.
    ContainerPreempted { container: u64, vcores: u64 },
    /// A container vanished with its node.
    ContainerLost {
        container: u64,
        node: u64,
        vcores: u64,
    },
    /// The application unregistered.
    AppFinished { status: String },
    /// A cluster node failed (global event).
    NodeFailed { node: u64 },
    /// A work item began executing in a container.
    WorkStarted {
        work: u64,
        container: u64,
        node: u64,
        label: String,
        launch_ms: u64,
    },
    /// A work item reached a terminal state.
    WorkFinished {
        work: u64,
        container: u64,
        node: u64,
        label: String,
        start_ms: u64,
        status: String,
    },
    /// A shuffle fetch succeeded only after transient failures and backoff.
    FetchRetried {
        vertex: String,
        task: u64,
        attempt: u64,
        retries: u64,
        backoff_ms: u64,
    },
    /// A shuffle fetch exhausted its retry budget.
    FetchFailed {
        vertex: String,
        task: u64,
        attempt: u64,
        output: u64,
        partition: u64,
        reason: String,
    },
}

impl EventKind {
    /// Snake-case discriminant used as the JSON `type` field.
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::DagSubmitted { .. } => "dag_submitted",
            EventKind::DagFinished { .. } => "dag_finished",
            EventKind::EdgeDefined { .. } => "edge_defined",
            EventKind::VertexStarted { .. } => "vertex_started",
            EventKind::VertexReconfigured { .. } => "vertex_reconfigured",
            EventKind::VertexFinished { .. } => "vertex_finished",
            EventKind::AttemptScheduled { .. } => "attempt_scheduled",
            EventKind::AttemptAssigned { .. } => "attempt_assigned",
            EventKind::AttemptLaunched { .. } => "attempt_launched",
            EventKind::AttemptFinished { .. } => "attempt_finished",
            EventKind::ContainerRequested { .. } => "container_requested",
            EventKind::ContainerAllocated { .. } => "container_allocated",
            EventKind::ContainerReleased { .. } => "container_released",
            EventKind::ContainerPreempted { .. } => "container_preempted",
            EventKind::ContainerLost { .. } => "container_lost",
            EventKind::AppFinished { .. } => "app_finished",
            EventKind::NodeFailed { .. } => "node_failed",
            EventKind::WorkStarted { .. } => "work_started",
            EventKind::WorkFinished { .. } => "work_finished",
            EventKind::FetchRetried { .. } => "fetch_retried",
            EventKind::FetchFailed { .. } => "fetch_failed",
        }
    }

    /// Stable identifier of the entity this event belongs to; timestamps
    /// are monotonically non-decreasing per entity.
    pub fn entity(&self) -> String {
        match self {
            EventKind::DagSubmitted { dag } | EventKind::DagFinished { dag, .. } => {
                format!("dag:{dag}")
            }
            EventKind::EdgeDefined { src, dst, .. } => format!("edge:{src}->{dst}"),
            EventKind::VertexStarted { vertex, .. }
            | EventKind::VertexReconfigured { vertex, .. }
            | EventKind::VertexFinished { vertex } => format!("vertex:{vertex}"),
            EventKind::AttemptScheduled {
                vertex,
                task,
                attempt,
                ..
            }
            | EventKind::AttemptAssigned {
                vertex,
                task,
                attempt,
                ..
            }
            | EventKind::AttemptLaunched {
                vertex,
                task,
                attempt,
                ..
            }
            | EventKind::AttemptFinished {
                vertex,
                task,
                attempt,
                ..
            }
            | EventKind::FetchRetried {
                vertex,
                task,
                attempt,
                ..
            }
            | EventKind::FetchFailed {
                vertex,
                task,
                attempt,
                ..
            } => format!("attempt:{vertex}/{task}/{attempt}"),
            EventKind::ContainerRequested { request, .. } => format!("request:{request}"),
            EventKind::ContainerAllocated { container, .. }
            | EventKind::ContainerReleased { container, .. }
            | EventKind::ContainerPreempted { container, .. }
            | EventKind::ContainerLost { container, .. } => format!("container:{container}"),
            EventKind::AppFinished { .. } => "app".into(),
            EventKind::NodeFailed { node } => format!("node:{node}"),
            EventKind::WorkStarted { work, .. } | EventKind::WorkFinished { work, .. } => {
                format!("work:{work}")
            }
        }
    }
}

/// One timeline entry: simulated-time stamp, global sequence number for
/// total ordering within a timestamp, owning app (or [`GLOBAL_APP`]), and
/// the typed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Simulated time, ms.
    pub ts_ms: u64,
    /// Global sequence number (emission order across the whole run).
    pub seq: u64,
    /// Owning application id, or [`GLOBAL_APP`].
    pub app: u64,
    /// The typed event.
    pub kind: EventKind,
}

/// Append-only event log. Cheap to clone and slice; per-DAG slices keep
/// their original sequence numbers so merged views stay totally ordered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Events in emission order.
    pub events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an already-ordered slice of events (keeps their `seq`).
    pub fn from_events(events: Vec<TimelineEvent>) -> Self {
        Timeline { events }
    }

    /// Append an event, assigning the next sequence number.
    pub fn record(&mut self, ts_ms: u64, app: u64, kind: EventKind) {
        let seq = self.events.len() as u64;
        self.events.push(TimelineEvent {
            ts_ms,
            seq,
            app,
            kind,
        });
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events with the given type name, in order.
    pub fn of_type<'a>(&'a self, type_name: &'a str) -> impl Iterator<Item = &'a TimelineEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.type_name() == type_name)
    }

    /// Serialize as a deterministic JSON array.
    pub fn to_json(&self) -> String {
        array(self.events.iter().map(event_json))
    }

    /// Parse a document produced by [`Timeline::to_json`].
    pub fn from_json(text: &str) -> Result<Timeline, String> {
        let mut p = Parser::new(text);
        match p.document()? {
            JVal::Arr(items) => Ok(Timeline {
                events: items
                    .iter()
                    .map(event_from_jval)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            _ => Err("timeline is not an array".into()),
        }
    }
}

// ---------------------------------------------------------------------------
// Event codec (shared with RunReport's embedded timeline field)
// ---------------------------------------------------------------------------

fn bool_num(b: bool) -> u64 {
    u64::from(b)
}

fn locality_name(l: Locality) -> &'static str {
    match l {
        Locality::NodeLocal => "node_local",
        Locality::RackLocal => "rack_local",
        Locality::OffRack => "off_rack",
        Locality::Unconstrained => "unconstrained",
    }
}

fn locality_from(s: &str) -> Result<Locality, String> {
    match s {
        "node_local" => Ok(Locality::NodeLocal),
        "rack_local" => Ok(Locality::RackLocal),
        "off_rack" => Ok(Locality::OffRack),
        "unconstrained" => Ok(Locality::Unconstrained),
        _ => Err(format!("unknown locality {s:?}")),
    }
}

pub(crate) fn event_json(e: &TimelineEvent) -> String {
    let head = Obj::new()
        .num("ts", e.ts_ms)
        .num("seq", e.seq)
        .num("app", e.app)
        .str("type", e.kind.type_name());
    match &e.kind {
        EventKind::DagSubmitted { dag } => head.str("dag", dag),
        EventKind::DagFinished { dag, status } => head.str("dag", dag).str("status", status),
        EventKind::EdgeDefined { src, dst, movement } => head
            .str("src", src)
            .str("dst", dst)
            .str("movement", movement),
        EventKind::VertexStarted {
            vertex,
            parallelism,
        }
        | EventKind::VertexReconfigured {
            vertex,
            parallelism,
        } => head.str("vertex", vertex).num("parallelism", *parallelism),
        EventKind::VertexFinished { vertex } => head.str("vertex", vertex),
        EventKind::AttemptScheduled {
            vertex,
            task,
            attempt,
            speculative,
        } => head
            .str("vertex", vertex)
            .num("task", *task)
            .num("attempt", *attempt)
            .num("speculative", bool_num(*speculative)),
        EventKind::AttemptAssigned {
            vertex,
            task,
            attempt,
            container,
            warm,
        } => head
            .str("vertex", vertex)
            .num("task", *task)
            .num("attempt", *attempt)
            .num("container", *container)
            .num("warm", bool_num(*warm)),
        EventKind::AttemptLaunched {
            vertex,
            task,
            attempt,
            container,
            launch_ms,
            backoff_ms,
            fetch_ms,
        } => head
            .str("vertex", vertex)
            .num("task", *task)
            .num("attempt", *attempt)
            .num("container", *container)
            .num("launch_ms", *launch_ms)
            .num("backoff_ms", *backoff_ms)
            .num("fetch_ms", *fetch_ms),
        EventKind::AttemptFinished {
            vertex,
            task,
            attempt,
            container,
            status,
        } => head
            .str("vertex", vertex)
            .num("task", *task)
            .num("attempt", *attempt)
            .num("container", *container)
            .str("status", status),
        EventKind::ContainerRequested { request, priority } => {
            head.num("request", *request).num("priority", *priority)
        }
        EventKind::ContainerAllocated {
            container,
            node,
            vcores,
            locality,
            waited_ms,
            relaxed,
        } => head
            .num("container", *container)
            .num("node", *node)
            .num("vcores", *vcores)
            .str("locality", locality_name(*locality))
            .num("waited_ms", *waited_ms)
            .num("relaxed", bool_num(*relaxed)),
        EventKind::ContainerReleased { container, vcores }
        | EventKind::ContainerPreempted { container, vcores } => {
            head.num("container", *container).num("vcores", *vcores)
        }
        EventKind::ContainerLost {
            container,
            node,
            vcores,
        } => head
            .num("container", *container)
            .num("node", *node)
            .num("vcores", *vcores),
        EventKind::AppFinished { status } => head.str("status", status),
        EventKind::NodeFailed { node } => head.num("node", *node),
        EventKind::WorkStarted {
            work,
            container,
            node,
            label,
            launch_ms,
        } => head
            .num("work", *work)
            .num("container", *container)
            .num("node", *node)
            .str("label", label)
            .num("launch_ms", *launch_ms),
        EventKind::WorkFinished {
            work,
            container,
            node,
            label,
            start_ms,
            status,
        } => head
            .num("work", *work)
            .num("container", *container)
            .num("node", *node)
            .str("label", label)
            .num("start_ms", *start_ms)
            .str("status", status),
        EventKind::FetchRetried {
            vertex,
            task,
            attempt,
            retries,
            backoff_ms,
        } => head
            .str("vertex", vertex)
            .num("task", *task)
            .num("attempt", *attempt)
            .num("retries", *retries)
            .num("backoff_ms", *backoff_ms),
        EventKind::FetchFailed {
            vertex,
            task,
            attempt,
            output,
            partition,
            reason,
        } => head
            .str("vertex", vertex)
            .num("task", *task)
            .num("attempt", *attempt)
            .num("output", *output)
            .num("partition", *partition)
            .str("reason", reason),
    }
    .finish()
}

pub(crate) fn event_from_jval(v: &JVal) -> Result<TimelineEvent, String> {
    let o = as_obj(v, "timeline event")?;
    let ty = get_str(&o, "type")?;
    let kind = match ty.as_str() {
        "dag_submitted" => EventKind::DagSubmitted {
            dag: get_str(&o, "dag")?,
        },
        "dag_finished" => EventKind::DagFinished {
            dag: get_str(&o, "dag")?,
            status: get_str(&o, "status")?,
        },
        "edge_defined" => EventKind::EdgeDefined {
            src: get_str(&o, "src")?,
            dst: get_str(&o, "dst")?,
            movement: get_str(&o, "movement")?,
        },
        "vertex_started" => EventKind::VertexStarted {
            vertex: get_str(&o, "vertex")?,
            parallelism: get_num(&o, "parallelism")?,
        },
        "vertex_reconfigured" => EventKind::VertexReconfigured {
            vertex: get_str(&o, "vertex")?,
            parallelism: get_num(&o, "parallelism")?,
        },
        "vertex_finished" => EventKind::VertexFinished {
            vertex: get_str(&o, "vertex")?,
        },
        "attempt_scheduled" => EventKind::AttemptScheduled {
            vertex: get_str(&o, "vertex")?,
            task: get_num(&o, "task")?,
            attempt: get_num(&o, "attempt")?,
            speculative: get_num(&o, "speculative")? != 0,
        },
        "attempt_assigned" => EventKind::AttemptAssigned {
            vertex: get_str(&o, "vertex")?,
            task: get_num(&o, "task")?,
            attempt: get_num(&o, "attempt")?,
            container: get_num(&o, "container")?,
            warm: get_num(&o, "warm")? != 0,
        },
        "attempt_launched" => EventKind::AttemptLaunched {
            vertex: get_str(&o, "vertex")?,
            task: get_num(&o, "task")?,
            attempt: get_num(&o, "attempt")?,
            container: get_num(&o, "container")?,
            launch_ms: get_num(&o, "launch_ms")?,
            backoff_ms: get_num(&o, "backoff_ms")?,
            fetch_ms: get_num(&o, "fetch_ms")?,
        },
        "attempt_finished" => EventKind::AttemptFinished {
            vertex: get_str(&o, "vertex")?,
            task: get_num(&o, "task")?,
            attempt: get_num(&o, "attempt")?,
            container: get_num(&o, "container")?,
            status: get_str(&o, "status")?,
        },
        "container_requested" => EventKind::ContainerRequested {
            request: get_num(&o, "request")?,
            priority: get_num(&o, "priority")?,
        },
        "container_allocated" => EventKind::ContainerAllocated {
            container: get_num(&o, "container")?,
            node: get_num(&o, "node")?,
            vcores: get_num(&o, "vcores")?,
            locality: locality_from(&get_str(&o, "locality")?)?,
            waited_ms: get_num(&o, "waited_ms")?,
            relaxed: get_num(&o, "relaxed")? != 0,
        },
        "container_released" => EventKind::ContainerReleased {
            container: get_num(&o, "container")?,
            vcores: get_num(&o, "vcores")?,
        },
        "container_preempted" => EventKind::ContainerPreempted {
            container: get_num(&o, "container")?,
            vcores: get_num(&o, "vcores")?,
        },
        "container_lost" => EventKind::ContainerLost {
            container: get_num(&o, "container")?,
            node: get_num(&o, "node")?,
            vcores: get_num(&o, "vcores")?,
        },
        "app_finished" => EventKind::AppFinished {
            status: get_str(&o, "status")?,
        },
        "node_failed" => EventKind::NodeFailed {
            node: get_num(&o, "node")?,
        },
        "work_started" => EventKind::WorkStarted {
            work: get_num(&o, "work")?,
            container: get_num(&o, "container")?,
            node: get_num(&o, "node")?,
            label: get_str(&o, "label")?,
            launch_ms: get_num(&o, "launch_ms")?,
        },
        "work_finished" => EventKind::WorkFinished {
            work: get_num(&o, "work")?,
            container: get_num(&o, "container")?,
            node: get_num(&o, "node")?,
            label: get_str(&o, "label")?,
            start_ms: get_num(&o, "start_ms")?,
            status: get_str(&o, "status")?,
        },
        "fetch_retried" => EventKind::FetchRetried {
            vertex: get_str(&o, "vertex")?,
            task: get_num(&o, "task")?,
            attempt: get_num(&o, "attempt")?,
            retries: get_num(&o, "retries")?,
            backoff_ms: get_num(&o, "backoff_ms")?,
        },
        "fetch_failed" => EventKind::FetchFailed {
            vertex: get_str(&o, "vertex")?,
            task: get_num(&o, "task")?,
            attempt: get_num(&o, "attempt")?,
            output: get_num(&o, "output")?,
            partition: get_num(&o, "partition")?,
            reason: get_str(&o, "reason")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(TimelineEvent {
        ts_ms: get_num(&o, "ts")?,
        seq: get_num(&o, "seq")?,
        app: get_num(&o, "app")?,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Chrome Trace Event Format exporter
// ---------------------------------------------------------------------------

/// Per-attempt cost breakdown extracted from `attempt_launched` events.
#[derive(Clone, Copy, Debug, Default)]
struct LaunchInfo {
    launch_ms: u64,
    backoff_ms: u64,
    fetch_ms: u64,
}

fn launch_infos(report: &RunReport) -> BTreeMap<(String, u64, u64), LaunchInfo> {
    let mut map = BTreeMap::new();
    for e in &report.timeline.events {
        if let EventKind::AttemptLaunched {
            vertex,
            task,
            attempt,
            launch_ms,
            backoff_ms,
            fetch_ms,
            ..
        } = &e.kind
        {
            map.insert(
                (vertex.clone(), *task, *attempt),
                LaunchInfo {
                    launch_ms: *launch_ms,
                    backoff_ms: *backoff_ms,
                    fetch_ms: *fetch_ms,
                },
            );
        }
    }
    map
}

fn in_edges(report: &RunReport) -> BTreeMap<String, Vec<String>> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in &report.timeline.events {
        if let EventKind::EdgeDefined { src, dst, .. } = &e.kind {
            map.entry(dst.clone()).or_default().push(src.clone());
        }
    }
    map
}

/// The producer attempt whose completion gated `consumer`'s start on the
/// given source vertex: the latest-finishing succeeded attempt of `src`
/// that ended at or before the consumer's start. Deterministic tie-break
/// on `(end, vertex, task, attempt)`.
fn gating_producer<'r>(
    report: &'r RunReport,
    src: &str,
    consumer_start: u64,
) -> Option<&'r crate::run_report::AttemptSpan> {
    report
        .attempts
        .iter()
        .filter(|p| p.vertex == src && p.status == "succeeded" && p.end_ms <= consumer_start)
        .max_by(|a, b| {
            (a.end_ms, &b.vertex, b.task, b.attempt).cmp(&(b.end_ms, &a.vertex, a.task, a.attempt))
        })
}

/// Export one or more run reports as a Chrome Trace Event Format document.
///
/// Deterministic: same reports produce byte-identical JSON. Open in
/// Perfetto or `chrome://tracing`. Layout: one process per report (named
/// after the DAG), one thread row per container, an `X` slice per task
/// attempt with nested `launch`/`backoff`/`fetch` phase slices, `s`/`f`
/// flow arrows from the gating shuffle producer to each consumer attempt,
/// and instant markers for node failures, preemptions and VertexManager
/// reconfigurations.
pub fn chrome_trace(reports: &[&RunReport]) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut flow_id = 0u64;
    for (pid, report) in reports.iter().enumerate() {
        let pid = pid as u64;
        events.push(
            Obj::new()
                .str("name", "process_name")
                .str("ph", "M")
                .num("pid", pid)
                .num("tid", 0)
                .raw("args", &Obj::new().str("name", &report.dag).finish())
                .finish(),
        );
        let containers: BTreeSet<u64> = report.attempts.iter().map(|a| a.container).collect();
        for cid in &containers {
            events.push(
                Obj::new()
                    .str("name", "thread_name")
                    .str("ph", "M")
                    .num("pid", pid)
                    .num("tid", *cid)
                    .raw(
                        "args",
                        &Obj::new().str("name", &format!("container {cid}")).finish(),
                    )
                    .finish(),
            );
        }
        let infos = launch_infos(report);
        for a in &report.attempts {
            let name = format!("{}[{}].{}", a.vertex, a.task, a.attempt);
            events.push(
                Obj::new()
                    .str("name", &name)
                    .str("cat", "attempt")
                    .str("ph", "X")
                    .num("pid", pid)
                    .num("tid", a.container)
                    .num("ts", a.start_ms * 1000)
                    .num("dur", (a.end_ms - a.start_ms) * 1000)
                    .raw("args", &Obj::new().str("status", &a.status).finish())
                    .finish(),
            );
            let info = infos
                .get(&(a.vertex.clone(), a.task, a.attempt))
                .copied()
                .unwrap_or_default();
            let mut cursor = a.start_ms;
            for (phase, ms) in [
                ("launch", info.launch_ms),
                ("backoff", info.backoff_ms),
                ("fetch", info.fetch_ms),
            ] {
                if ms == 0 {
                    continue;
                }
                let end = (cursor + ms).min(a.end_ms);
                if end > cursor {
                    events.push(
                        Obj::new()
                            .str("name", phase)
                            .str("cat", "phase")
                            .str("ph", "X")
                            .num("pid", pid)
                            .num("tid", a.container)
                            .num("ts", cursor * 1000)
                            .num("dur", (end - cursor) * 1000)
                            .finish(),
                    );
                }
                cursor = end;
            }
        }
        let deps = in_edges(report);
        for a in &report.attempts {
            let Some(srcs) = deps.get(&a.vertex) else {
                continue;
            };
            for src in srcs {
                let Some(p) = gating_producer(report, src, a.start_ms) else {
                    continue;
                };
                flow_id += 1;
                let name = format!("shuffle {src}->{}", a.vertex);
                events.push(
                    Obj::new()
                        .str("name", &name)
                        .str("cat", "shuffle")
                        .str("ph", "s")
                        .num("id", flow_id)
                        .num("pid", pid)
                        .num("tid", p.container)
                        .num("ts", p.end_ms * 1000)
                        .finish(),
                );
                events.push(
                    Obj::new()
                        .str("name", &name)
                        .str("cat", "shuffle")
                        .str("ph", "f")
                        .str("bp", "e")
                        .num("id", flow_id)
                        .num("pid", pid)
                        .num("tid", a.container)
                        .num("ts", a.start_ms * 1000)
                        .finish(),
                );
            }
        }
        for e in &report.timeline.events {
            match &e.kind {
                EventKind::NodeFailed { node } => events.push(
                    Obj::new()
                        .str("name", &format!("node {node} failed"))
                        .str("cat", "fault")
                        .str("ph", "i")
                        .str("s", "g")
                        .num("pid", pid)
                        .num("tid", 0)
                        .num("ts", e.ts_ms * 1000)
                        .finish(),
                ),
                EventKind::ContainerPreempted { container, .. } => events.push(
                    Obj::new()
                        .str("name", "preempted")
                        .str("cat", "scheduler")
                        .str("ph", "i")
                        .str("s", "t")
                        .num("pid", pid)
                        .num("tid", *container)
                        .num("ts", e.ts_ms * 1000)
                        .finish(),
                ),
                EventKind::VertexReconfigured {
                    vertex,
                    parallelism,
                } => events.push(
                    Obj::new()
                        .str(
                            "name",
                            &format!("reconfigure {vertex} -> {parallelism} tasks"),
                        )
                        .str("cat", "vertex_manager")
                        .str("ph", "i")
                        .str("s", "p")
                        .num("pid", pid)
                        .num("tid", 0)
                        .num("ts", e.ts_ms * 1000)
                        .finish(),
                ),
                _ => {}
            }
        }
    }
    Obj::new()
        .str("displayTimeUnit", "ms")
        .raw("traceEvents", &array(events.into_iter()))
        .finish()
}

// ---------------------------------------------------------------------------
// Critical-path analyzer
// ---------------------------------------------------------------------------

/// Makespan attribution across the six execution phases, ms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Waiting for the scheduler to place a container (request → assign).
    pub scheduler_wait_ms: u64,
    /// Container cold-start (JVM launch analogue).
    pub launch_ms: u64,
    /// Shuffle fetch retry backoff.
    pub backoff_ms: u64,
    /// Remote input fetch (including assignment → launch slack absorbed by
    /// slow-start prefetch).
    pub fetch_ms: u64,
    /// Processor compute plus local I/O.
    pub processing_ms: u64,
    /// Output commit after the last attempt finished.
    pub commit_ms: u64,
}

impl PhaseTotals {
    /// Sum of all phases.
    pub fn sum(&self) -> u64 {
        self.scheduler_wait_ms
            + self.launch_ms
            + self.backoff_ms
            + self.fetch_ms
            + self.processing_ms
            + self.commit_ms
    }

    fn add(&mut self, other: &PhaseTotals) {
        self.scheduler_wait_ms += other.scheduler_wait_ms;
        self.launch_ms += other.launch_ms;
        self.backoff_ms += other.backoff_ms;
        self.fetch_ms += other.fetch_ms;
        self.processing_ms += other.processing_ms;
        self.commit_ms += other.commit_ms;
    }

    fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("scheduler_wait", self.scheduler_wait_ms),
            ("launch", self.launch_ms),
            ("backoff", self.backoff_ms),
            ("fetch", self.fetch_ms),
            ("processing", self.processing_ms),
            ("commit", self.commit_ms),
        ]
    }

    fn to_json(self) -> String {
        Obj::new()
            .num("scheduler_wait_ms", self.scheduler_wait_ms)
            .num("launch_ms", self.launch_ms)
            .num("backoff_ms", self.backoff_ms)
            .num("fetch_ms", self.fetch_ms)
            .num("processing_ms", self.processing_ms)
            .num("commit_ms", self.commit_ms)
            .finish()
    }
}

/// One step on the critical path: an attempt and the slice of the makespan
/// `[from_ms, to_ms]` it is charged for, broken into phases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPathStep {
    /// Vertex name.
    pub vertex: String,
    /// Task index.
    pub task: u64,
    /// Attempt number.
    pub attempt: u64,
    /// Hosting container.
    pub container: u64,
    /// Start of the charged window (gating producer's end, or DAG
    /// submission for the first step), ms.
    pub from_ms: u64,
    /// End of the charged window (this attempt's end), ms.
    pub to_ms: u64,
    /// Phase attribution of the window; sums to `to_ms - from_ms`.
    pub phases: PhaseTotals,
}

/// The critical path of one DAG run: the backward chain of attempts from
/// the last finisher through the shuffle producers that gated each start,
/// with the makespan attributed *exactly* to phases (the step windows tile
/// `[submitted_ms, finished_ms]`, so `totals.sum() == makespan_ms` always).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Steps in execution order (first → last finisher).
    pub steps: Vec<CriticalPathStep>,
    /// Phase totals across all steps plus commit.
    pub totals: PhaseTotals,
    /// `finished_ms - submitted_ms`.
    pub makespan_ms: u64,
}

impl CriticalPath {
    /// Walk the report's attempt spans and edge dependencies backward from
    /// the last finishing succeeded attempt. Returns `None` when the report
    /// has no succeeded attempts to anchor the walk.
    pub fn analyze(report: &RunReport) -> Option<CriticalPath> {
        let last = report
            .attempts
            .iter()
            .filter(|a| a.status == "succeeded")
            .max_by(|a, b| {
                (a.end_ms, &b.vertex, b.task, b.attempt)
                    .cmp(&(b.end_ms, &a.vertex, a.task, a.attempt))
            })?;

        // Backward chain: each attempt's window opens where its gating
        // producer closed.
        let deps = in_edges(report);
        let mut chain = vec![last];
        let mut cur = last;
        while chain.len() <= report.attempts.len() {
            let launch = cur.start_ms;
            let gate = deps
                .get(&cur.vertex)
                .into_iter()
                .flatten()
                .filter_map(|src| gating_producer(report, src, launch))
                .max_by(|a, b| {
                    (a.end_ms, &b.vertex, b.task, b.attempt)
                        .cmp(&(b.end_ms, &a.vertex, a.task, a.attempt))
                });
            match gate {
                Some(p) => {
                    chain.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        chain.reverse();

        let infos = launch_infos(report);
        let assigned: BTreeMap<(String, u64, u64), u64> = report
            .timeline
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::AttemptAssigned {
                    vertex,
                    task,
                    attempt,
                    ..
                } => Some(((vertex.clone(), *task, *attempt), e.ts_ms)),
                _ => None,
            })
            .collect();

        let mut steps = Vec::with_capacity(chain.len());
        let mut totals = PhaseTotals::default();
        let mut boundary = report.submitted_ms;
        for a in chain {
            let e = a.end_ms;
            let b = boundary.min(e);
            let info = infos
                .get(&(a.vertex.clone(), a.task, a.attempt))
                .copied()
                .unwrap_or_default();
            let t1 = assigned
                .get(&(a.vertex.clone(), a.task, a.attempt))
                .copied()
                .unwrap_or(a.start_ms)
                .clamp(b, e);
            let t2 = a.start_ms.clamp(t1, e);
            let t3 = (t2 + info.launch_ms).min(e);
            let t4 = (t3 + info.backoff_ms).min(e);
            let t5 = (t4 + info.fetch_ms).min(e);
            let phases = PhaseTotals {
                scheduler_wait_ms: t1 - b,
                launch_ms: t3 - t2,
                backoff_ms: t4 - t3,
                fetch_ms: (t2 - t1) + (t5 - t4),
                processing_ms: e - t5,
                commit_ms: 0,
            };
            totals.add(&phases);
            steps.push(CriticalPathStep {
                vertex: a.vertex.clone(),
                task: a.task,
                attempt: a.attempt,
                container: a.container,
                from_ms: b,
                to_ms: e,
                phases,
            });
            boundary = e;
        }
        let commit = report.finished_ms.saturating_sub(boundary);
        totals.commit_ms += commit;

        Some(CriticalPath {
            steps,
            totals,
            makespan_ms: report.runtime_ms(),
        })
    }

    /// The phase with the largest share of the makespan (ties resolve in
    /// canonical order: scheduler_wait, launch, backoff, fetch, processing,
    /// commit).
    pub fn dominant_phase(&self) -> (&'static str, u64) {
        let mut best = ("scheduler_wait", 0u64);
        for (name, ms) in self.totals.named() {
            if ms > best.1 {
                best = (name, ms);
            }
        }
        best
    }

    /// Plain-text table: phase totals with percentages, then the step chain.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let (dom, dom_ms) = self.dominant_phase();
        let _ = writeln!(
            out,
            "critical path: {} ms makespan over {} steps, dominant phase {} ({} ms)",
            self.makespan_ms,
            self.steps.len(),
            dom,
            dom_ms
        );
        for (name, ms) in self.totals.named() {
            let pct = if self.makespan_ms > 0 {
                ms as f64 * 100.0 / self.makespan_ms as f64
            } else {
                0.0
            };
            let _ = writeln!(out, "  {name:>14} {ms:>10} ms  {pct:>5.1}%");
        }
        for (i, s) in self.steps.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{:<2} {}[{}].{} on container {}: {}..{} ms \
                 (wait {}, launch {}, backoff {}, fetch {}, compute {})",
                i,
                s.vertex,
                s.task,
                s.attempt,
                s.container,
                s.from_ms,
                s.to_ms,
                s.phases.scheduler_wait_ms,
                s.phases.launch_ms,
                s.phases.backoff_ms,
                s.phases.fetch_ms,
                s.phases.processing_ms
            );
        }
        out
    }

    /// Deterministic JSON object (embedded in [`RunReport::to_json`]).
    pub fn to_json(&self) -> String {
        let (dom, _) = self.dominant_phase();
        Obj::new()
            .num("makespan_ms", self.makespan_ms)
            .str("dominant", dom)
            .raw("totals", &self.totals.to_json())
            .raw(
                "steps",
                &array(self.steps.iter().map(|s| {
                    Obj::new()
                        .str("vertex", &s.vertex)
                        .num("task", s.task)
                        .num("attempt", s.attempt)
                        .num("container", s.container)
                        .num("from_ms", s.from_ms)
                        .num("to_ms", s.to_ms)
                        .raw("phases", &s.phases.to_json())
                        .finish()
                })),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::get;
    use crate::run_report::AttemptSpan;

    fn ev(ts: u64, app: u64, kind: EventKind) -> TimelineEvent {
        TimelineEvent {
            ts_ms: ts,
            seq: 0,
            app,
            kind,
        }
    }

    fn sample_timeline() -> Timeline {
        let mut t = Timeline::new();
        t.record(0, 1, EventKind::DagSubmitted { dag: "wc".into() });
        t.record(
            0,
            1,
            EventKind::EdgeDefined {
                src: "a".into(),
                dst: "b".into(),
                movement: "scatter_gather".into(),
            },
        );
        t.record(
            5,
            1,
            EventKind::ContainerRequested {
                request: 1,
                priority: 2,
            },
        );
        t.record(
            10,
            1,
            EventKind::ContainerAllocated {
                container: 7,
                node: 3,
                vcores: 1,
                locality: Locality::NodeLocal,
                waited_ms: 5,
                relaxed: false,
            },
        );
        t.record(
            12,
            1,
            EventKind::AttemptScheduled {
                vertex: "a \"q\"".into(),
                task: 0,
                attempt: 0,
                speculative: true,
            },
        );
        t.record(900, GLOBAL_APP, EventKind::NodeFailed { node: 2 });
        t
    }

    #[test]
    fn timeline_json_round_trips() {
        let t = sample_timeline();
        let json = t.to_json();
        let back = Timeline::from_json(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = vec![
            EventKind::DagSubmitted { dag: "d".into() },
            EventKind::DagFinished {
                dag: "d".into(),
                status: "succeeded".into(),
            },
            EventKind::EdgeDefined {
                src: "a".into(),
                dst: "b".into(),
                movement: "broadcast".into(),
            },
            EventKind::VertexStarted {
                vertex: "v".into(),
                parallelism: 4,
            },
            EventKind::VertexReconfigured {
                vertex: "v".into(),
                parallelism: 2,
            },
            EventKind::VertexFinished { vertex: "v".into() },
            EventKind::AttemptScheduled {
                vertex: "v".into(),
                task: 1,
                attempt: 0,
                speculative: false,
            },
            EventKind::AttemptAssigned {
                vertex: "v".into(),
                task: 1,
                attempt: 0,
                container: 9,
                warm: true,
            },
            EventKind::AttemptLaunched {
                vertex: "v".into(),
                task: 1,
                attempt: 0,
                container: 9,
                launch_ms: 2500,
                backoff_ms: 300,
                fetch_ms: 120,
            },
            EventKind::AttemptFinished {
                vertex: "v".into(),
                task: 1,
                attempt: 0,
                container: 9,
                status: "succeeded".into(),
            },
            EventKind::ContainerRequested {
                request: 3,
                priority: 1,
            },
            EventKind::ContainerAllocated {
                container: 9,
                node: 0,
                vcores: 1,
                locality: Locality::OffRack,
                waited_ms: 750,
                relaxed: true,
            },
            EventKind::ContainerReleased {
                container: 9,
                vcores: 1,
            },
            EventKind::ContainerPreempted {
                container: 9,
                vcores: 1,
            },
            EventKind::ContainerLost {
                container: 9,
                node: 0,
                vcores: 1,
            },
            EventKind::AppFinished {
                status: "succeeded".into(),
            },
            EventKind::NodeFailed { node: 5 },
            EventKind::WorkStarted {
                work: 11,
                container: 9,
                node: 0,
                label: "v[1]".into(),
                launch_ms: 2500,
            },
            EventKind::WorkFinished {
                work: 11,
                container: 9,
                node: 0,
                label: "v[1]".into(),
                start_ms: 10,
                status: "succeeded".into(),
            },
            EventKind::FetchRetried {
                vertex: "v".into(),
                task: 1,
                attempt: 0,
                retries: 2,
                backoff_ms: 300,
            },
            EventKind::FetchFailed {
                vertex: "v".into(),
                task: 1,
                attempt: 0,
                output: 4,
                partition: 2,
                reason: "transient".into(),
            },
        ];
        let t = Timeline {
            events: kinds
                .into_iter()
                .enumerate()
                .map(|(i, k)| TimelineEvent {
                    ts_ms: i as u64,
                    seq: i as u64,
                    app: 1,
                    kind: k,
                })
                .collect(),
        };
        let json = t.to_json();
        let back = Timeline::from_json(&json).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json);
        for e in &t.events {
            assert!(!e.kind.type_name().is_empty());
            assert!(!e.kind.entity().is_empty());
        }
    }

    fn linear_report() -> RunReport {
        // a[0] 100..1000, gates b[0] 1000..4000, gates c[0] 4000..9000;
        // commit 9000..9010. Submitted at 0.
        let mut t = Timeline::new();
        t.record(0, 1, EventKind::DagSubmitted { dag: "lin".into() });
        t.record(
            0,
            1,
            EventKind::EdgeDefined {
                src: "a".into(),
                dst: "b".into(),
                movement: "scatter_gather".into(),
            },
        );
        t.record(
            0,
            1,
            EventKind::EdgeDefined {
                src: "b".into(),
                dst: "c".into(),
                movement: "scatter_gather".into(),
            },
        );
        for (v, sched, assign, start, end, launch, backoff, fetch) in [
            ("a", 0u64, 40u64, 100u64, 1000u64, 60u64, 0u64, 0u64),
            ("b", 900, 1000, 1000, 4000, 0, 300, 200),
            ("c", 3800, 4000, 4000, 9000, 0, 0, 500),
        ] {
            t.record(
                sched,
                1,
                EventKind::AttemptScheduled {
                    vertex: v.into(),
                    task: 0,
                    attempt: 0,
                    speculative: false,
                },
            );
            t.record(
                assign,
                1,
                EventKind::AttemptAssigned {
                    vertex: v.into(),
                    task: 0,
                    attempt: 0,
                    container: 1,
                    warm: false,
                },
            );
            t.record(
                start,
                1,
                EventKind::AttemptLaunched {
                    vertex: v.into(),
                    task: 0,
                    attempt: 0,
                    container: 1,
                    launch_ms: launch,
                    backoff_ms: backoff,
                    fetch_ms: fetch,
                },
            );
            t.record(
                end,
                1,
                EventKind::AttemptFinished {
                    vertex: v.into(),
                    task: 0,
                    attempt: 0,
                    container: 1,
                    status: "succeeded".into(),
                },
            );
        }
        RunReport {
            dag: "lin".into(),
            status: "succeeded".into(),
            submitted_ms: 0,
            finished_ms: 9_010,
            attempts: vec![
                AttemptSpan {
                    vertex: "a".into(),
                    task: 0,
                    attempt: 0,
                    container: 1,
                    start_ms: 100,
                    end_ms: 1_000,
                    status: "succeeded".into(),
                    speculative: false,
                },
                AttemptSpan {
                    vertex: "b".into(),
                    task: 0,
                    attempt: 0,
                    container: 1,
                    start_ms: 1_000,
                    end_ms: 4_000,
                    status: "succeeded".into(),
                    speculative: false,
                },
                AttemptSpan {
                    vertex: "c".into(),
                    task: 0,
                    attempt: 0,
                    container: 1,
                    start_ms: 4_000,
                    end_ms: 9_000,
                    status: "succeeded".into(),
                    speculative: false,
                },
            ],
            timeline: t,
            ..RunReport::default()
        }
    }

    #[test]
    fn critical_path_phases_sum_to_makespan_exactly() {
        let r = linear_report();
        let cp = CriticalPath::analyze(&r).expect("path");
        assert_eq!(cp.makespan_ms, 9_010);
        assert_eq!(cp.totals.sum(), cp.makespan_ms);
        assert_eq!(cp.steps.len(), 3, "all three vertices on the path");
        assert_eq!(cp.steps[0].vertex, "a");
        assert_eq!(cp.steps[2].vertex, "c");
        // The windows tile the makespan.
        assert_eq!(cp.steps[0].from_ms, 0);
        assert_eq!(cp.steps[1].from_ms, cp.steps[0].to_ms);
        assert_eq!(cp.steps[2].from_ms, cp.steps[1].to_ms);
        assert_eq!(cp.totals.commit_ms, 10);
        // Per-step phase sums equal the step windows.
        for s in &cp.steps {
            assert_eq!(s.phases.sum(), s.to_ms - s.from_ms);
        }
    }

    #[test]
    fn critical_path_separates_backoff_from_processing() {
        let r = linear_report();
        let cp = CriticalPath::analyze(&r).expect("path");
        // b carried 300 ms of retry backoff; it must be attributed to the
        // backoff phase, not lumped into processing.
        assert_eq!(cp.steps[1].phases.backoff_ms, 300);
        assert_eq!(cp.totals.backoff_ms, 300);
        assert_eq!(
            cp.steps[1].phases.processing_ms,
            3_000 - 300 - 200,
            "compute excludes backoff and fetch"
        );
    }

    #[test]
    fn critical_path_dominant_phase_and_renderers() {
        let r = linear_report();
        let cp = CriticalPath::analyze(&r).expect("path");
        assert_eq!(cp.dominant_phase().0, "processing");
        let table = cp.render_table();
        assert!(table.contains("dominant phase processing"));
        assert!(table.contains("backoff"));
        assert!(table.contains("c[0].0"));
        let json = cp.to_json();
        assert!(json.contains("\"dominant\":\"processing\""));
        assert_eq!(json, CriticalPath::analyze(&r).unwrap().to_json());
    }

    #[test]
    fn critical_path_needs_a_succeeded_attempt() {
        let mut r = linear_report();
        for a in &mut r.attempts {
            a.status = "failed".into();
        }
        assert!(CriticalPath::analyze(&r).is_none());
    }

    #[test]
    fn chrome_trace_is_deterministic_and_structured() {
        let r = linear_report();
        let json = chrome_trace(&[&r]);
        assert_eq!(json, chrome_trace(&[&r]), "byte-identical");
        // Valid per our own strict parser.
        let doc = Parser::new(&json).document().expect("valid JSON");
        let root = as_obj(&doc, "trace").unwrap();
        assert_eq!(get_str(&root, "displayTimeUnit").unwrap(), "ms");
        let JVal::Arr(events) = get(&root, "traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        let phs: Vec<String> = events
            .iter()
            .map(|e| get_str(&as_obj(e, "event").unwrap(), "ph").unwrap())
            .collect();
        assert!(phs.iter().any(|p| p == "M"), "metadata events present");
        assert!(phs.iter().any(|p| p == "X"), "slices present");
        assert!(
            phs.iter().any(|p| p == "s") && phs.iter().any(|p| p == "f"),
            "flow arrows present: {phs:?}"
        );
        // Phase sub-slices for b's backoff and fetch.
        assert!(json.contains("\"name\":\"backoff\""));
        assert!(json.contains("\"name\":\"fetch\""));
        assert!(json.contains("\"name\":\"launch\""));
    }

    #[test]
    fn timeline_entities_group_related_events() {
        let e1 = ev(
            0,
            1,
            EventKind::AttemptScheduled {
                vertex: "v".into(),
                task: 2,
                attempt: 1,
                speculative: false,
            },
        );
        let e2 = ev(
            9,
            1,
            EventKind::FetchRetried {
                vertex: "v".into(),
                task: 2,
                attempt: 1,
                retries: 1,
                backoff_ms: 100,
            },
        );
        assert_eq!(e1.kind.entity(), e2.kind.entity());
        assert_eq!(e1.kind.entity(), "attempt:v/2/1");
    }
}
