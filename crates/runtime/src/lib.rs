//! # tez-runtime — the Runtime API
//!
//! The DAG API (`tez-dag`) defines the *scaffolding structure* of the data
//! processing; this crate defines the interfaces used to inject the actual
//! application code that fills that scaffolding (paper §3.2):
//!
//! * [`Processor`], [`LogicalInput`], [`LogicalOutput`] — the **IPO** task
//!   composition. A task is a set of inputs, one processor and a set of
//!   outputs; the inputs and outputs hide data transport, partitioning and
//!   aggregation, so the processor keeps a logical view of the computation.
//! * [`events`] — the asynchronous, push-based **event control plane**
//!   (§3.3) used for all communication: data-movement metadata from producer
//!   outputs to consumer inputs, statistics to vertex managers, error
//!   notifications to the framework.
//! * [`VertexManager`] (§3.4) and [`InputInitializer`] (§3.5) — the
//!   runtime-reconfiguration APIs enabling late-binding optimizations such
//!   as automatic partition-cardinality estimation and dynamic partition
//!   pruning.
//! * [`ComponentRegistry`] — resolves the opaque `(kind, payload)`
//!   descriptors of `tez-dag` into live components, playing the role that
//!   class loading plays in the Java implementation.
//!
//! Tez is **not part of the data plane**: this crate defines no data format.
//! The built-in key-value implementations live in `tez-shuffle`, and engines
//! are free to plug in their own (as Flink does with its binary format,
//! paper §5.5).

pub mod committer;
pub mod counters;
pub mod env;
pub mod error;
pub mod events;
pub mod history;
pub mod initializer;
pub mod io;
mod json;
pub mod kv;
pub mod metrics;
pub mod registry;
pub mod run_report;
pub mod timeline;
pub mod vertex_manager;

pub use committer::{CommitEnv, OutputCommitter};
pub use counters::{counter_names, Counters};
pub use env::{
    BlockInfo, DataFetcher, Dfs, FetchError, FetchedShard, MemDfs, NullObjectRegistry,
    ObjectRegistry, ObjectScope, SecurityToken, TaskEnv,
};
pub use error::TaskError;
pub use events::{DataMovementEvent, InputReadError, OutboundEvent, ShardLocator};
pub use history::{entity_types, HistoryEntity, HistoryQuery, HistoryStore};
pub use initializer::{InitializerContext, InitializerResult, InputInitializer, InputSplit};
pub use io::{
    InputSource, InputSpec, LogicalInput, LogicalOutput, NamedInput, NamedOutput, OutputCommit,
    OutputSpec, PartitionBuf, Processor, ProcessorContext, SinkArtifact, TaskMeta, TaskOutcome,
    TaskSpec,
};
pub use kv::{InputReader, KvGroup, KvGroupReader, KvReader, KvWriter};
pub use metrics::{
    detect_stragglers, metric_names, progress_at, render_progress, DagMetrics, Histogram,
    MetricsRegistry, ScopeMetrics, StragglerFlag, VertexProgress,
};
pub use registry::ComponentRegistry;
pub use run_report::{
    render_gantt, AttemptSpan, ContainerStats, EdgeStats, Locality, RunReport, SchedulerStats,
};
pub use timeline::{
    chrome_trace, CriticalPath, CriticalPathStep, EventKind, PhaseTotals, Timeline, TimelineEvent,
    GLOBAL_APP,
};
pub use vertex_manager::{SourceKind, SourceTaskAttempt, VertexManager, VertexManagerContext};
