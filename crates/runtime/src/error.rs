//! Task-level error type shared by processors, inputs and outputs.

use crate::events::InputReadError;
use std::fmt;

/// Errors surfaced by application code or the data plane while a task runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// Application logic failed; the attempt may be retried on another node.
    Failed(String),
    /// Application logic failed fatally; the task (and DAG) must not retry.
    Fatal(String),
    /// One or more input shards could not be fetched. The framework uses
    /// the DAG dependency to re-execute the producers that generated the
    /// missing data (paper §4.3).
    InputRead(Vec<InputReadError>),
    /// A component kind was not found in the registry.
    UnknownComponent(String),
    /// Data decoding failed (corrupt shard, wrong format pairing).
    Corrupt(String),
    /// Security token rejected by the shuffle service.
    AccessDenied(String),
}

impl TaskError {
    /// Convenience constructor for [`TaskError::Failed`].
    pub fn failed(msg: impl Into<String>) -> Self {
        TaskError::Failed(msg.into())
    }

    /// Convenience constructor for [`TaskError::Fatal`].
    pub fn fatal(msg: impl Into<String>) -> Self {
        TaskError::Fatal(msg.into())
    }

    /// Whether the error is retriable on a different attempt.
    pub fn is_retriable(&self) -> bool {
        !matches!(self, TaskError::Fatal(_) | TaskError::UnknownComponent(_))
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Failed(m) => write!(f, "task failed: {m}"),
            TaskError::Fatal(m) => write!(f, "task failed fatally: {m}"),
            TaskError::InputRead(errs) => {
                write!(f, "failed to read {} input shard(s)", errs.len())
            }
            TaskError::UnknownComponent(k) => write!(f, "unknown component kind {k:?}"),
            TaskError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            TaskError::AccessDenied(m) => write!(f, "access denied: {m}"),
        }
    }
}

impl std::error::Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ShardLocator;

    #[test]
    fn retriability() {
        assert!(TaskError::failed("x").is_retriable());
        assert!(!TaskError::fatal("x").is_retriable());
        assert!(TaskError::InputRead(vec![InputReadError {
            locator: ShardLocator::default(),
            consumer_vertex: "v".into(),
            consumer_task: 0,
        }])
        .is_retriable());
        assert!(!TaskError::UnknownComponent("K".into()).is_retriable());
    }

    #[test]
    fn display_is_informative() {
        let e = TaskError::failed("boom");
        assert!(e.to_string().contains("boom"));
    }
}
