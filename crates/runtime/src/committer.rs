//! Data-sink committers (paper §3.1): make final output visible to
//! external observers, exactly once, after successful completion.

use crate::env::Dfs;
use crate::error::TaskError;
use crate::io::SinkArtifact;

/// Environment available during commit.
pub struct CommitEnv<'a> {
    /// The distributed filesystem receiving the output.
    pub dfs: &'a dyn Dfs,
}

/// The DataSinkCommitter API. The orchestrator invokes [`commit`](Self::commit)
/// once per sink when the DAG succeeds, with the artifacts of every
/// successful task, and [`abort`](Self::abort) when it fails.
pub trait OutputCommitter: Send {
    /// Publish the artifacts (typically: concatenate part files into the
    /// target path and make it visible).
    fn commit(
        &mut self,
        artifacts: &[SinkArtifact],
        env: &mut CommitEnv<'_>,
    ) -> Result<(), TaskError>;

    /// Discard any partial output.
    fn abort(&mut self, env: &mut CommitEnv<'_>) {
        let _ = env;
    }
}
