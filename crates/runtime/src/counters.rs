//! Task and DAG counters ("publishing metrics and statistics", paper §2).

use std::collections::BTreeMap;
use std::fmt;

/// Well-known counter names used by the built-in components.
pub mod counter_names {
    /// Raw bytes read by all inputs of a task.
    pub const BYTES_READ: &str = "BYTES_READ";
    /// Raw bytes written by all outputs of a task.
    pub const BYTES_WRITTEN: &str = "BYTES_WRITTEN";
    /// Records consumed by the processor.
    pub const RECORDS_IN: &str = "RECORDS_IN";
    /// Records produced by the processor.
    pub const RECORDS_OUT: &str = "RECORDS_OUT";
    /// Bytes read over the (simulated) network.
    pub const REMOTE_BYTES: &str = "REMOTE_BYTES";
    /// Bytes spilled by the external sorter.
    pub const SPILLED_BYTES: &str = "SPILLED_BYTES";
    /// Number of sorted spill runs merged.
    pub const MERGED_RUNS: &str = "MERGED_RUNS";
    /// Shuffle fetch retries performed.
    pub const FETCH_RETRIES: &str = "FETCH_RETRIES";
    /// Records dropped by a combiner.
    pub const COMBINED_RECORDS: &str = "COMBINED_RECORDS";
    /// Splits pruned by dynamic partition pruning.
    pub const PRUNED_SPLITS: &str = "PRUNED_SPLITS";
    /// Objects served from the shared object registry.
    pub const REGISTRY_HITS: &str = "REGISTRY_HITS";
    /// Physical shuffle shards fetched by edge inputs.
    pub const SHUFFLED_SHARDS: &str = "SHUFFLED_SHARDS";
}

/// A deterministic, mergeable bag of named `u64` counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to `name`. Saturates at `u64::MAX` instead of
    /// panicking: counters are observability, not control flow, and a
    /// pinned-at-max value is a visible signal while an overflow panic
    /// would take the whole attempt down.
    pub fn add(&mut self, name: &str, delta: u64) {
        if delta != 0 {
            let slot = self.values.entry(name.to_string()).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
    }

    /// Increment `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 when never written).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merge another counter set into this one (saturating, like
    /// [`Counters::add`]).
    pub fn merge(&mut self, other: &Counters) {
        for (k, &v) in &other.values {
            let slot = self.values.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
    }

    /// Iterate counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no counter has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:>24} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_inc() {
        let mut c = Counters::new();
        c.add(counter_names::BYTES_READ, 100);
        c.inc(counter_names::RECORDS_IN);
        c.inc(counter_names::RECORDS_IN);
        assert_eq!(c.get(counter_names::BYTES_READ), 100);
        assert_eq!(c.get(counter_names::RECORDS_IN), 2);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn zero_add_allocates_nothing() {
        let mut c = Counters::new();
        c.add("x", 0);
        assert!(c.is_empty());
    }

    #[test]
    fn merge_sums() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Counters::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn add_and_merge_saturate_instead_of_overflowing() {
        let mut c = Counters::new();
        c.add("x", u64::MAX - 1);
        c.add("x", 5);
        assert_eq!(c.get("x"), u64::MAX);
        let mut other = Counters::new();
        other.add("x", 1);
        other.add("y", u64::MAX);
        c.merge(&other);
        assert_eq!(c.get("x"), u64::MAX);
        assert_eq!(c.get("y"), u64::MAX);
        c.merge(&other);
        assert_eq!(c.get("y"), u64::MAX);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.add("b", 1);
        c.add("a", 1);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
