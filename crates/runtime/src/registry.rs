//! The component registry: resolves `(kind, payload)` descriptors into live
//! components, playing the role of class loading in Java Tez.
//!
//! Engines register their processors, inputs, outputs, edge managers,
//! vertex managers, initializers and committers once; the orchestrator
//! instantiates them per task/vertex from descriptors embedded in the DAG.

use crate::committer::OutputCommitter;
use crate::error::TaskError;
use crate::initializer::InputInitializer;
use crate::io::{InputSpec, LogicalInput, LogicalOutput, OutputSpec, Processor};
use crate::vertex_manager::VertexManager;
use std::collections::HashMap;
use std::sync::Arc;
use tez_dag::{EdgeManagerPlugin, UserPayload};

/// Factory for processors.
pub type ProcessorFactory = Arc<dyn Fn(&UserPayload) -> Box<dyn Processor> + Send + Sync>;
/// Factory for logical inputs (receives the full input spec: payload plus
/// physical sources). Fallible: a malformed descriptor payload is a typed
/// [`TaskError`], not a panic inside the factory.
pub type InputFactory =
    Arc<dyn Fn(&InputSpec) -> Result<Box<dyn LogicalInput>, TaskError> + Send + Sync>;
/// Factory for logical outputs (fallible, like [`InputFactory`]).
pub type OutputFactory =
    Arc<dyn Fn(&OutputSpec) -> Result<Box<dyn LogicalOutput>, TaskError> + Send + Sync>;
/// Factory for custom edge managers.
pub type EdgeManagerFactory = Arc<dyn Fn(&UserPayload) -> Arc<dyn EdgeManagerPlugin> + Send + Sync>;
/// Factory for vertex managers.
pub type VertexManagerFactory = Arc<dyn Fn(&UserPayload) -> Box<dyn VertexManager> + Send + Sync>;
/// Factory for input initializers.
pub type InitializerFactory = Arc<dyn Fn(&UserPayload) -> Box<dyn InputInitializer> + Send + Sync>;
/// Factory for output committers.
pub type CommitterFactory = Arc<dyn Fn(&UserPayload) -> Box<dyn OutputCommitter> + Send + Sync>;

/// Maps component kinds to factories. Cheap to clone; registration returns
/// `&mut Self` for chaining.
#[derive(Clone, Default)]
pub struct ComponentRegistry {
    processors: HashMap<String, ProcessorFactory>,
    inputs: HashMap<String, InputFactory>,
    outputs: HashMap<String, OutputFactory>,
    edge_managers: HashMap<String, EdgeManagerFactory>,
    vertex_managers: HashMap<String, VertexManagerFactory>,
    initializers: HashMap<String, InitializerFactory>,
    committers: HashMap<String, CommitterFactory>,
}

impl ComponentRegistry {
    /// Empty registry. Most callers should start from
    /// `tez_shuffle::register_builtins` / `tez_core::standard_registry`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a processor kind.
    pub fn register_processor<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&UserPayload) -> Box<dyn Processor> + Send + Sync + 'static,
    {
        self.processors.insert(kind.to_string(), Arc::new(f));
        self
    }

    /// Register an input kind.
    pub fn register_input<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&InputSpec) -> Result<Box<dyn LogicalInput>, TaskError> + Send + Sync + 'static,
    {
        self.inputs.insert(kind.to_string(), Arc::new(f));
        self
    }

    /// Register an output kind.
    pub fn register_output<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&OutputSpec) -> Result<Box<dyn LogicalOutput>, TaskError> + Send + Sync + 'static,
    {
        self.outputs.insert(kind.to_string(), Arc::new(f));
        self
    }

    /// Register a custom edge-manager kind.
    pub fn register_edge_manager<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&UserPayload) -> Arc<dyn EdgeManagerPlugin> + Send + Sync + 'static,
    {
        self.edge_managers.insert(kind.to_string(), Arc::new(f));
        self
    }

    /// Register a vertex-manager kind.
    pub fn register_vertex_manager<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&UserPayload) -> Box<dyn VertexManager> + Send + Sync + 'static,
    {
        self.vertex_managers.insert(kind.to_string(), Arc::new(f));
        self
    }

    /// Register an input-initializer kind.
    pub fn register_initializer<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&UserPayload) -> Box<dyn InputInitializer> + Send + Sync + 'static,
    {
        self.initializers.insert(kind.to_string(), Arc::new(f));
        self
    }

    /// Register a committer kind.
    pub fn register_committer<F>(&mut self, kind: &str, f: F) -> &mut Self
    where
        F: Fn(&UserPayload) -> Box<dyn OutputCommitter> + Send + Sync + 'static,
    {
        self.committers.insert(kind.to_string(), Arc::new(f));
        self
    }

    fn missing(kind: &str, what: &str) -> TaskError {
        TaskError::UnknownComponent(format!("{what} {kind:?}"))
    }

    /// Instantiate a processor.
    pub fn create_processor(
        &self,
        kind: &str,
        payload: &UserPayload,
    ) -> Result<Box<dyn Processor>, TaskError> {
        self.processors
            .get(kind)
            .map(|f| f(payload))
            .ok_or_else(|| Self::missing(kind, "processor"))
    }

    /// Instantiate a logical input.
    pub fn create_input(&self, spec: &InputSpec) -> Result<Box<dyn LogicalInput>, TaskError> {
        self.inputs
            .get(&spec.descriptor.kind)
            .ok_or_else(|| Self::missing(&spec.descriptor.kind, "input"))
            .and_then(|f| f(spec))
    }

    /// Instantiate a logical output.
    pub fn create_output(&self, spec: &OutputSpec) -> Result<Box<dyn LogicalOutput>, TaskError> {
        self.outputs
            .get(&spec.descriptor.kind)
            .ok_or_else(|| Self::missing(&spec.descriptor.kind, "output"))
            .and_then(|f| f(spec))
    }

    /// Instantiate a custom edge manager.
    pub fn create_edge_manager(
        &self,
        kind: &str,
        payload: &UserPayload,
    ) -> Result<Arc<dyn EdgeManagerPlugin>, TaskError> {
        self.edge_managers
            .get(kind)
            .map(|f| f(payload))
            .ok_or_else(|| Self::missing(kind, "edge manager"))
    }

    /// Instantiate a vertex manager.
    pub fn create_vertex_manager(
        &self,
        kind: &str,
        payload: &UserPayload,
    ) -> Result<Box<dyn VertexManager>, TaskError> {
        self.vertex_managers
            .get(kind)
            .map(|f| f(payload))
            .ok_or_else(|| Self::missing(kind, "vertex manager"))
    }

    /// Instantiate an input initializer.
    pub fn create_initializer(
        &self,
        kind: &str,
        payload: &UserPayload,
    ) -> Result<Box<dyn InputInitializer>, TaskError> {
        self.initializers
            .get(kind)
            .map(|f| f(payload))
            .ok_or_else(|| Self::missing(kind, "initializer"))
    }

    /// Instantiate a committer.
    pub fn create_committer(
        &self,
        kind: &str,
        payload: &UserPayload,
    ) -> Result<Box<dyn OutputCommitter>, TaskError> {
        self.committers
            .get(kind)
            .map(|f| f(payload))
            .ok_or_else(|| Self::missing(kind, "committer"))
    }

    /// Whether a processor kind is registered (for DAG pre-validation).
    pub fn has_processor(&self, kind: &str) -> bool {
        self.processors.contains_key(kind)
    }
}

impl std::fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("processors", &self.processors.len())
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .field("edge_managers", &self.edge_managers.len())
            .field("vertex_managers", &self.vertex_managers.len())
            .field("initializers", &self.initializers.len())
            .field("committers", &self.committers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::ProcessorContext;

    struct Nop;
    impl Processor for Nop {
        fn run(&mut self, _ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
            Ok(())
        }
    }

    #[test]
    fn register_and_create_processor() {
        let mut r = ComponentRegistry::new();
        r.register_processor("Nop", |_p| Box::new(Nop));
        assert!(r.has_processor("Nop"));
        assert!(r.create_processor("Nop", &UserPayload::empty()).is_ok());
    }

    #[test]
    fn unknown_kind_is_error() {
        let r = ComponentRegistry::new();
        let err = match r.create_processor("Ghost", &UserPayload::empty()) {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert!(matches!(err, TaskError::UnknownComponent(_)));
        assert!(!err.is_retriable());
    }
}
