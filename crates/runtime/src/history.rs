//! ATS-style history store: a queryable, append-only entity view of one or
//! more DAG executions, mirroring the YARN Timeline Server data model the
//! paper's Tez UI is built on (§2, §7).
//!
//! Each entity carries an `entitytype` + `entityid` pair, a start/end time,
//! its lifecycle events, **primary filters** (indexed key/value pairs a
//! query can match), and **related entities** (typed edges to other
//! entities: a DAG lists its vertices and containers, an attempt points at
//! its container and the container points back). Entities are *derived* —
//! [`HistoryStore::ingest_report`] replays a [`RunReport`]'s timeline — so
//! the store never drifts from the report and inherits its determinism:
//! same-seed runs export byte-identical history JSON at any worker count.

use crate::json::{array, esc, Obj};
use crate::run_report::RunReport;
use crate::timeline::EventKind;
use std::collections::{BTreeMap, BTreeSet};

/// Entity type names, matching the Tez Timeline Server conventions.
pub mod entity_types {
    /// One DAG execution.
    pub const DAG: &str = "TEZ_DAG_ID";
    /// One vertex of a DAG.
    pub const VERTEX: &str = "TEZ_VERTEX_ID";
    /// One task attempt.
    pub const ATTEMPT: &str = "TEZ_TASK_ATTEMPT_ID";
    /// One YARN container.
    pub const CONTAINER: &str = "TEZ_CONTAINER_ID";
}

/// One lifecycle event on an entity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntityEvent {
    /// Simulated time, ms.
    pub ts_ms: u64,
    /// Event type (the timeline event's snake_case `type_name`).
    pub event_type: String,
}

/// One history entity: the ATS record shape.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoryEntity {
    /// Entity type (see [`entity_types`]).
    pub entity_type: String,
    /// Entity id, unique within its type. DAG-scoped entities are
    /// qualified by DAG name (`dag/vertex`, `dag/vertex/task/attempt`);
    /// containers keep their cluster-wide numeric id so cross-DAG reuse
    /// shows as one entity.
    pub entity_id: String,
    /// First time the entity was seen, ms.
    pub start_time_ms: u64,
    /// Last terminal event time, ms (0 until one is seen).
    pub end_time_ms: u64,
    /// Lifecycle events in record order.
    pub events: Vec<EntityEvent>,
    /// Indexed key → values pairs a query can filter on.
    pub primary_filters: BTreeMap<String, BTreeSet<String>>,
    /// Typed edges: related entity type → ids.
    pub related_entities: BTreeMap<String, BTreeSet<String>>,
    /// Free-form facts (numbers serialized as decimal strings).
    pub other_info: BTreeMap<String, String>,
}

impl HistoryEntity {
    fn new(entity_type: &str, entity_id: String, ts_ms: u64) -> Self {
        HistoryEntity {
            entity_type: entity_type.to_string(),
            entity_id,
            start_time_ms: ts_ms,
            ..HistoryEntity::default()
        }
    }

    /// Whether filter `key` holds `value`.
    pub fn has_filter(&self, key: &str, value: &str) -> bool {
        self.primary_filters
            .get(key)
            .is_some_and(|vs| vs.contains(value))
    }

    /// Related ids of `entity_type`, if any.
    pub fn related(&self, entity_type: &str) -> Option<&BTreeSet<String>> {
        self.related_entities.get(entity_type)
    }

    fn add_event(&mut self, ts_ms: u64, event_type: &str) {
        self.start_time_ms = self.start_time_ms.min(ts_ms);
        self.events.push(EntityEvent {
            ts_ms,
            event_type: event_type.to_string(),
        });
    }

    fn add_filter(&mut self, key: &str, value: &str) {
        self.primary_filters
            .entry(key.to_string())
            .or_default()
            .insert(value.to_string());
    }

    fn relate(&mut self, entity_type: &str, id: &str) {
        self.related_entities
            .entry(entity_type.to_string())
            .or_default()
            .insert(id.to_string());
    }

    fn set_info(&mut self, key: &str, value: impl ToString) {
        self.other_info.insert(key.to_string(), value.to_string());
    }

    fn to_json(&self) -> String {
        let events = array(self.events.iter().map(|e| {
            Obj::new()
                .num("ts", e.ts_ms)
                .str("type", &e.event_type)
                .finish()
        }));
        let mut filters = String::from("{");
        for (i, (k, vs)) in self.primary_filters.iter().enumerate() {
            if i > 0 {
                filters.push(',');
            }
            esc(&mut filters, k);
            filters.push(':');
            filters.push_str(&array(vs.iter().map(|v| {
                let mut s = String::new();
                esc(&mut s, v);
                s
            })));
        }
        filters.push('}');
        let mut related = String::from("{");
        for (i, (k, vs)) in self.related_entities.iter().enumerate() {
            if i > 0 {
                related.push(',');
            }
            esc(&mut related, k);
            related.push(':');
            related.push_str(&array(vs.iter().map(|v| {
                let mut s = String::new();
                esc(&mut s, v);
                s
            })));
        }
        related.push('}');
        let mut info = String::from("{");
        for (i, (k, v)) in self.other_info.iter().enumerate() {
            if i > 0 {
                info.push(',');
            }
            esc(&mut info, k);
            info.push(':');
            esc(&mut info, v);
        }
        info.push('}');
        Obj::new()
            .str("entitytype", &self.entity_type)
            .str("entity", &self.entity_id)
            .num("starttime", self.start_time_ms)
            .num("endtime", self.end_time_ms)
            .raw("events", &events)
            .raw("primaryfilters", &filters)
            .raw("relatedentities", &related)
            .raw("otherinfo", &info)
            .finish()
    }
}

/// Qualified vertex entity id.
pub fn vertex_id(dag: &str, vertex: &str) -> String {
    format!("{dag}/{vertex}")
}

/// Qualified attempt entity id.
pub fn attempt_id(dag: &str, vertex: &str, task: u64, attempt: u64) -> String {
    format!("{dag}/{vertex}/{task}/{attempt}")
}

/// Container entity id (cluster-wide numeric id, unqualified).
pub fn container_id(container: u64) -> String {
    format!("{container}")
}

/// The append-only entity store. Ingest reports, then query.
#[derive(Clone, Debug, Default)]
pub struct HistoryStore {
    // Keyed by (type, id) for merging; `order` preserves first-seen order
    // for queries.
    entities: BTreeMap<(String, String), HistoryEntity>,
    order: Vec<(String, String)>,
}

impl HistoryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store over a set of finished reports (e.g. one session).
    pub fn from_reports<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> Self {
        let mut store = HistoryStore::new();
        for r in reports {
            store.ingest_report(r);
        }
        store
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the store holds no entity.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Look up one entity by type and id.
    pub fn entity(&self, entity_type: &str, entity_id: &str) -> Option<&HistoryEntity> {
        self.entities
            .get(&(entity_type.to_string(), entity_id.to_string()))
    }

    /// Start a query over the store.
    pub fn query(&self) -> HistoryQuery<'_> {
        HistoryQuery {
            store: self,
            entity_type: None,
            filter: None,
            window: None,
        }
    }

    fn upsert(&mut self, entity_type: &str, entity_id: String, ts_ms: u64) -> &mut HistoryEntity {
        let key = (entity_type.to_string(), entity_id);
        if !self.entities.contains_key(&key) {
            self.order.push(key.clone());
            self.entities.insert(
                key.clone(),
                HistoryEntity::new(entity_type, key.1.clone(), ts_ms),
            );
        }
        self.entities.get_mut(&key).expect("just inserted")
    }

    /// Replay one report's timeline into entities. DAG-scoped entity ids
    /// are qualified by the report's DAG name; containers merge across
    /// reports so cross-DAG reuse is visible on one entity.
    pub fn ingest_report(&mut self, report: &RunReport) {
        let dag = report.dag.clone();
        let d = self.upsert(entity_types::DAG, dag.clone(), report.submitted_ms);
        d.end_time_ms = report.finished_ms;
        d.add_filter("status", &report.status);
        d.set_info("runtime_ms", report.runtime_ms());

        for e in &report.timeline.events {
            let ts = e.ts_ms;
            let name = e.kind.type_name();
            match &e.kind {
                EventKind::DagSubmitted { .. } | EventKind::DagFinished { .. } => {
                    self.upsert(entity_types::DAG, dag.clone(), ts)
                        .add_event(ts, name);
                }
                EventKind::VertexStarted {
                    vertex,
                    parallelism,
                }
                | EventKind::VertexReconfigured {
                    vertex,
                    parallelism,
                } => {
                    let vid = vertex_id(&dag, vertex);
                    let v = self.upsert(entity_types::VERTEX, vid.clone(), ts);
                    v.add_event(ts, name);
                    v.add_filter("dag", &dag);
                    v.add_filter("vertex", vertex);
                    v.set_info("parallelism", parallelism);
                    let d = self.upsert(entity_types::DAG, dag.clone(), ts);
                    d.relate(entity_types::VERTEX, &vid);
                }
                EventKind::VertexFinished { vertex } => {
                    let vid = vertex_id(&dag, vertex);
                    let v = self.upsert(entity_types::VERTEX, vid, ts);
                    v.add_event(ts, name);
                    v.end_time_ms = ts;
                }
                EventKind::AttemptScheduled {
                    vertex,
                    task,
                    attempt,
                    speculative,
                } => {
                    let aid = attempt_id(&dag, vertex, *task, *attempt);
                    let vid = vertex_id(&dag, vertex);
                    let a = self.upsert(entity_types::ATTEMPT, aid.clone(), ts);
                    a.add_event(ts, name);
                    a.add_filter("dag", &dag);
                    a.add_filter("vertex", &vid);
                    if *speculative {
                        a.add_filter("speculative", "1");
                    }
                    let v = self.upsert(entity_types::VERTEX, vid, ts);
                    v.relate(entity_types::ATTEMPT, &aid);
                }
                EventKind::AttemptAssigned {
                    vertex,
                    task,
                    attempt,
                    container,
                    ..
                }
                | EventKind::AttemptLaunched {
                    vertex,
                    task,
                    attempt,
                    container,
                    ..
                } => {
                    let aid = attempt_id(&dag, vertex, *task, *attempt);
                    let cid = container_id(*container);
                    let a = self.upsert(entity_types::ATTEMPT, aid.clone(), ts);
                    a.add_event(ts, name);
                    a.relate(entity_types::CONTAINER, &cid);
                    let c = self.upsert(entity_types::CONTAINER, cid, ts);
                    c.add_event(ts, name);
                    c.relate(entity_types::ATTEMPT, &aid);
                    let d = self.upsert(entity_types::DAG, dag.clone(), ts);
                    d.relate(entity_types::CONTAINER, &container_id(*container));
                }
                EventKind::AttemptFinished {
                    vertex,
                    task,
                    attempt,
                    container,
                    status,
                } => {
                    let aid = attempt_id(&dag, vertex, *task, *attempt);
                    let a = self.upsert(entity_types::ATTEMPT, aid, ts);
                    a.add_event(ts, name);
                    a.end_time_ms = ts;
                    a.add_filter("status", status);
                    a.set_info("container", container);
                }
                EventKind::ContainerAllocated {
                    container,
                    node,
                    locality: _,
                    waited_ms,
                    ..
                } => {
                    let c = self.upsert(entity_types::CONTAINER, container_id(*container), ts);
                    c.add_event(ts, name);
                    c.add_filter("node", &node.to_string());
                    c.set_info("queue_wait_ms", waited_ms);
                }
                EventKind::ContainerReleased { container, .. }
                | EventKind::ContainerPreempted { container, .. }
                | EventKind::ContainerLost { container, .. } => {
                    let c = self.upsert(entity_types::CONTAINER, container_id(*container), ts);
                    c.add_event(ts, name);
                    c.end_time_ms = ts;
                }
                _ => {}
            }
        }

        // Durable facts from the structured report sections: spans give
        // attempts exact start/end even when the timeline slice started
        // mid-flight, and vertex counters become vertex otherinfo.
        for a in &report.attempts {
            let aid = attempt_id(&dag, &a.vertex, a.task, a.attempt);
            let ent = self.upsert(entity_types::ATTEMPT, aid, a.start_ms);
            ent.set_info("start_ms", a.start_ms);
            ent.set_info("end_ms", a.end_ms);
            ent.set_info("duration_ms", a.end_ms.saturating_sub(a.start_ms));
            if ent.end_time_ms == 0 {
                ent.end_time_ms = a.end_ms;
            }
        }
        for (vname, counters) in &report.vertex_counters {
            let vid = vertex_id(&dag, vname);
            let v = self.upsert(entity_types::VERTEX, vid, report.submitted_ms);
            for (k, val) in counters.iter() {
                v.set_info(&format!("counter:{k}"), val);
            }
        }
    }

    /// Deterministic JSON export: `{"entities":[...]}` sorted by
    /// `(entitytype, entity)`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"entities\":[");
        for (i, e) in self.entities.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Builder-style query: filter by entity type, one primary filter, and a
/// start-time window, then [`HistoryQuery::run`].
pub struct HistoryQuery<'a> {
    store: &'a HistoryStore,
    entity_type: Option<String>,
    filter: Option<(String, String)>,
    window: Option<(u64, u64)>,
}

impl<'a> HistoryQuery<'a> {
    /// Keep only entities of `t`.
    pub fn entity_type(mut self, t: &str) -> Self {
        self.entity_type = Some(t.to_string());
        self
    }

    /// Keep only entities whose primary filter `key` holds `value`.
    pub fn filter(mut self, key: &str, value: &str) -> Self {
        self.filter = Some((key.to_string(), value.to_string()));
        self
    }

    /// Keep only entities whose start time lies in `[from_ms, to_ms]`.
    pub fn window(mut self, from_ms: u64, to_ms: u64) -> Self {
        self.window = Some((from_ms, to_ms));
        self
    }

    /// Execute; results come back in first-ingested order.
    pub fn run(self) -> Vec<&'a HistoryEntity> {
        self.store
            .order
            .iter()
            .filter_map(|k| self.store.entities.get(k))
            .filter(|e| {
                if let Some(t) = &self.entity_type {
                    if &e.entity_type != t {
                        return false;
                    }
                }
                if let Some((k, v)) = &self.filter {
                    if !e.has_filter(k, v) {
                        return false;
                    }
                }
                if let Some((from, to)) = self.window {
                    if e.start_time_ms < from || e.start_time_ms > to {
                        return false;
                    }
                }
                true
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_report::AttemptSpan;
    use crate::timeline::Timeline;

    fn sample_report() -> RunReport {
        let mut t = Timeline::new();
        t.record(10, 1, EventKind::DagSubmitted { dag: "d1".into() });
        t.record(
            12,
            1,
            EventKind::VertexStarted {
                vertex: "map".into(),
                parallelism: 2,
            },
        );
        t.record(
            15,
            1,
            EventKind::AttemptScheduled {
                vertex: "map".into(),
                task: 0,
                attempt: 0,
                speculative: false,
            },
        );
        t.record(
            20,
            1,
            EventKind::ContainerAllocated {
                container: 7,
                node: 2,
                vcores: 1,
                locality: crate::run_report::Locality::NodeLocal,
                waited_ms: 5,
                relaxed: false,
            },
        );
        t.record(
            25,
            1,
            EventKind::AttemptLaunched {
                vertex: "map".into(),
                task: 0,
                attempt: 0,
                container: 7,
                launch_ms: 5,
                backoff_ms: 0,
                fetch_ms: 0,
            },
        );
        t.record(
            80,
            1,
            EventKind::AttemptFinished {
                vertex: "map".into(),
                task: 0,
                attempt: 0,
                container: 7,
                status: "succeeded".into(),
            },
        );
        t.record(
            90,
            1,
            EventKind::VertexFinished {
                vertex: "map".into(),
            },
        );
        t.record(
            95,
            1,
            EventKind::DagFinished {
                dag: "d1".into(),
                status: "succeeded".into(),
            },
        );
        let mut vc = std::collections::BTreeMap::new();
        let mut c = crate::Counters::new();
        c.add("BYTES_READ", 64);
        vc.insert("map".to_string(), c);
        RunReport {
            dag: "d1".into(),
            status: "succeeded".into(),
            submitted_ms: 10,
            finished_ms: 95,
            attempts: vec![AttemptSpan {
                vertex: "map".into(),
                task: 0,
                attempt: 0,
                container: 7,
                start_ms: 25,
                end_ms: 80,
                status: "succeeded".into(),
                speculative: false,
            }],
            vertex_counters: vc,
            timeline: t,
            ..RunReport::default()
        }
    }

    #[test]
    fn entities_link_dag_vertex_attempt_container() {
        let store = HistoryStore::from_reports([&sample_report()]);
        let dag = store.entity(entity_types::DAG, "d1").unwrap();
        assert!(dag
            .related(entity_types::VERTEX)
            .unwrap()
            .contains("d1/map"));
        assert!(dag.related(entity_types::CONTAINER).unwrap().contains("7"));
        assert_eq!(dag.end_time_ms, 95);
        let v = store.entity(entity_types::VERTEX, "d1/map").unwrap();
        assert!(v
            .related(entity_types::ATTEMPT)
            .unwrap()
            .contains("d1/map/0/0"));
        assert_eq!(v.other_info["counter:BYTES_READ"], "64");
        let a = store.entity(entity_types::ATTEMPT, "d1/map/0/0").unwrap();
        assert!(a.related(entity_types::CONTAINER).unwrap().contains("7"));
        assert!(a.has_filter("status", "succeeded"));
        assert_eq!(a.other_info["duration_ms"], "55");
        let c = store.entity(entity_types::CONTAINER, "7").unwrap();
        assert!(c
            .related(entity_types::ATTEMPT)
            .unwrap()
            .contains("d1/map/0/0"));
        assert!(c.has_filter("node", "2"));
    }

    #[test]
    fn queries_filter_by_type_filter_and_window() {
        let store = HistoryStore::from_reports([&sample_report()]);
        let verts = store.query().entity_type(entity_types::VERTEX).run();
        assert_eq!(verts.len(), 1);
        let by_dag = store
            .query()
            .entity_type(entity_types::ATTEMPT)
            .filter("dag", "d1")
            .run();
        assert_eq!(by_dag.len(), 1);
        assert!(store.query().filter("status", "failed").run().is_empty());
        // The container first appears at ts 20.
        assert_eq!(store.query().window(0, 19).run().len(), 3);
        assert_eq!(
            store
                .query()
                .entity_type(entity_types::CONTAINER)
                .window(20, 20)
                .run()
                .len(),
            1
        );
    }

    #[test]
    fn export_is_deterministic_and_merge_spans_reports() {
        let r = sample_report();
        let a = HistoryStore::from_reports([&r]);
        let b = HistoryStore::from_reports([&r]);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().starts_with("{\"entities\":[{\"entitytype\":"));
        // A second DAG reusing container 7 merges into one entity with
        // attempts from both DAGs.
        let mut r2 = sample_report();
        r2.dag = "d2".into();
        let mut t = Timeline::new();
        for mut e in sample_report().timeline.events {
            if let EventKind::DagSubmitted { dag } = &mut e.kind {
                *dag = "d2".into();
            }
            t.record(e.ts_ms + 100, e.app, e.kind);
        }
        r2.timeline = t;
        r2.submitted_ms += 100;
        r2.finished_ms += 100;
        let merged = HistoryStore::from_reports([&r, &r2]);
        let c = merged.entity(entity_types::CONTAINER, "7").unwrap();
        let rel = c.related(entity_types::ATTEMPT).unwrap();
        assert!(rel.contains("d1/map/0/0") && rel.contains("d2/map/0/0"));
    }
}
