//! The unified run report: one structured observability record per DAG
//! execution (paper §2 "publishing metrics and statistics", §7 Tez UI).
//!
//! Every layer of the stack contributes a section — scheduler decisions
//! from the RM (locality outcomes, wait times, preemptions), container
//! lifecycle from the simulator (cold launches vs. reuse, warm-up level),
//! data-plane statistics from the shuffle (bytes fetched/merged/spilled
//! per edge, fetch failures), and per-attempt timings plus counter rollups
//! from the AM. The types live here, in the lowest shared crate, so
//! `tez-yarn` can fill [`SchedulerStats`] and `tez-core` can assemble the
//! whole [`RunReport`].
//!
//! The JSON codec is hand-rolled and *deterministic*: fixed field order,
//! sorted maps, integer-only numbers — two same-seed runs serialize to
//! byte-identical documents, which makes reports diffable artifacts.

use crate::counters::Counters;
use crate::json::{array, as_obj, esc, get, get_num, get_str, JVal, Obj, Parser};
use crate::timeline::{event_from_jval, event_json, CriticalPath, Timeline};
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Section types
// ---------------------------------------------------------------------------

/// Locality class of one container placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locality {
    /// Placed on a preferred node.
    NodeLocal,
    /// Placed on a preferred rack (but not a preferred node).
    RackLocal,
    /// Placed off-rack despite node/rack preferences.
    OffRack,
    /// The request had no locality preference.
    Unconstrained,
}

/// Scheduler-level decisions, filled by `tez-yarn::rm` per app.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Container placements performed.
    pub placements: u64,
    /// Placements on a preferred node.
    pub node_local: u64,
    /// Placements on a preferred rack.
    pub rack_local: u64,
    /// Placements off-rack despite preferences.
    pub off_rack: u64,
    /// Placements of requests with no locality preference.
    pub unconstrained: u64,
    /// Placements that happened only after a delay-scheduling relaxation
    /// (the request waited out at least the node-local delay).
    pub relaxed_after_delay: u64,
    /// Total request wait time (request creation to placement), ms.
    pub total_wait_ms: u64,
    /// Longest single request wait, ms.
    pub max_wait_ms: u64,
    /// Containers this app lost to cross-queue preemption.
    pub preemptions: u64,
}

impl SchedulerStats {
    /// Record one placement decision.
    pub fn record_placement(&mut self, locality: Locality, waited_ms: u64, relaxed: bool) {
        self.placements += 1;
        match locality {
            Locality::NodeLocal => self.node_local += 1,
            Locality::RackLocal => self.rack_local += 1,
            Locality::OffRack => self.off_rack += 1,
            Locality::Unconstrained => self.unconstrained += 1,
        }
        if relaxed {
            self.relaxed_after_delay += 1;
        }
        self.total_wait_ms += waited_ms;
        self.max_wait_ms = self.max_wait_ms.max(waited_ms);
    }

    /// Stats accumulated since `base` was snapshotted (per-DAG attribution
    /// of an app-lifetime accumulator). `max_wait_ms` is not differenced —
    /// it reports the app-lifetime maximum.
    pub fn delta_since(&self, base: &SchedulerStats) -> SchedulerStats {
        SchedulerStats {
            placements: self.placements - base.placements,
            node_local: self.node_local - base.node_local,
            rack_local: self.rack_local - base.rack_local,
            off_rack: self.off_rack - base.off_rack,
            unconstrained: self.unconstrained - base.unconstrained,
            relaxed_after_delay: self.relaxed_after_delay - base.relaxed_after_delay,
            total_wait_ms: self.total_wait_ms - base.total_wait_ms,
            max_wait_ms: self.max_wait_ms,
            preemptions: self.preemptions - base.preemptions,
        }
    }
}

/// Container lifecycle as seen at task-assignment time, derived from the
/// simulator's per-container work history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContainerStats {
    /// Task attempts assigned to containers.
    pub assignments: u64,
    /// Assignments into a cold container (no prior work).
    pub cold_starts: u64,
    /// Assignments into a re-used, warm container.
    pub reuse_hits: u64,
    /// Sum of warm-up levels (work items previously run by the container)
    /// at assignment; divide by `assignments` for the mean.
    pub warmup_levels: u64,
}

/// Data-plane statistics for one DAG edge (`src -> dst`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Producer vertex.
    pub src: String,
    /// Consumer vertex.
    pub dst: String,
    /// Bytes fetched from the shuffle service by consumer attempts.
    pub fetched_bytes: u64,
    /// Fetched bytes that passed through the sorted-merge path.
    pub merged_bytes: u64,
    /// Bytes spilled by producer-side sorters for this edge.
    pub spilled_bytes: u64,
    /// Shard fetches that failed after exhausting their retries.
    pub fetch_failures: u64,
}

/// One task-attempt execution span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptSpan {
    /// Vertex name.
    pub vertex: String,
    /// Task index within the vertex.
    pub task: u64,
    /// Attempt number.
    pub attempt: u64,
    /// Hosting container id.
    pub container: u64,
    /// Work start, ms of simulated time.
    pub start_ms: u64,
    /// Work end, ms of simulated time.
    pub end_ms: u64,
    /// `"succeeded"`, `"failed"`, or `"killed"`.
    pub status: String,
    /// Whether this attempt was launched speculatively (a backup for a
    /// suspected straggler rather than a retry of a failure).
    pub speculative: bool,
}

/// The unified per-DAG observability record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// DAG name.
    pub dag: String,
    /// `"succeeded"` or `"failed: <reason>"`.
    pub status: String,
    /// Submission time, ms.
    pub submitted_ms: u64,
    /// Finish time, ms.
    pub finished_ms: u64,
    /// Scheduler decisions while this DAG ran.
    pub scheduler: SchedulerStats,
    /// Container lifecycle at assignment.
    pub containers: ContainerStats,
    /// Per-edge data-plane statistics, sorted by `(src, dst)`.
    pub edges: Vec<EdgeStats>,
    /// Attempt spans in completion order.
    pub attempts: Vec<AttemptSpan>,
    /// Counter rollup across all task attempts.
    pub counters: Counters,
    /// Per-vertex counter rollups, keyed by vertex name: the aggregation
    /// level between the raw per-task bags and the DAG-wide rollup above.
    pub vertex_counters: BTreeMap<String, Counters>,
    /// Structured event log for this DAG's slice of the run (plus
    /// cluster-global events such as node failures). See
    /// [`crate::timeline`].
    pub timeline: Timeline,
}

impl RunReport {
    /// Wall-clock runtime, ms.
    pub fn runtime_ms(&self) -> u64 {
        self.finished_ms.saturating_sub(self.submitted_ms)
    }

    /// Edge stats for `src -> dst`, if any data moved on it.
    pub fn edge(&self, src: &str, dst: &str) -> Option<&EdgeStats> {
        self.edges.iter().find(|e| e.src == src && e.dst == dst)
    }

    /// Total shuffle bytes fetched across all edges.
    pub fn total_fetched_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.fetched_bytes).sum()
    }

    /// Critical-path analysis over the attempts and the timeline (see
    /// [`CriticalPath::analyze`]). `None` when no attempt succeeded.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        CriticalPath::analyze(self)
    }

    /// Speculative attempts that won their race: launched as a straggler
    /// backup and finished `"succeeded"`.
    pub fn speculation_winners(&self) -> Vec<&AttemptSpan> {
        self.attempts
            .iter()
            .filter(|a| a.speculative && a.status == "succeeded")
            .collect()
    }

    /// Speculative attempts that lost (killed or failed after the original
    /// finished first).
    pub fn speculation_losers(&self) -> Vec<&AttemptSpan> {
        self.attempts
            .iter()
            .filter(|a| a.speculative && a.status != "succeeded")
            .collect()
    }

    /// Histogram-based per-vertex outlier attempts (see
    /// [`crate::metrics::detect_stragglers`]). Like `critical_path`, this
    /// is derived from the attempts at call time, never stored.
    pub fn stragglers(&self) -> Vec<crate::metrics::StragglerFlag> {
        crate::metrics::detect_stragglers(self)
    }
}

// ---------------------------------------------------------------------------
// Deterministic JSON serializer (writer primitives live in `crate::json`)
// ---------------------------------------------------------------------------

fn scheduler_json(s: &SchedulerStats) -> String {
    Obj::new()
        .num("placements", s.placements)
        .num("node_local", s.node_local)
        .num("rack_local", s.rack_local)
        .num("off_rack", s.off_rack)
        .num("unconstrained", s.unconstrained)
        .num("relaxed_after_delay", s.relaxed_after_delay)
        .num("total_wait_ms", s.total_wait_ms)
        .num("max_wait_ms", s.max_wait_ms)
        .num("preemptions", s.preemptions)
        .finish()
}

fn containers_json(c: &ContainerStats) -> String {
    Obj::new()
        .num("assignments", c.assignments)
        .num("cold_starts", c.cold_starts)
        .num("reuse_hits", c.reuse_hits)
        .num("warmup_levels", c.warmup_levels)
        .finish()
}

fn edge_json(e: &EdgeStats) -> String {
    Obj::new()
        .str("src", &e.src)
        .str("dst", &e.dst)
        .num("fetched_bytes", e.fetched_bytes)
        .num("merged_bytes", e.merged_bytes)
        .num("spilled_bytes", e.spilled_bytes)
        .num("fetch_failures", e.fetch_failures)
        .finish()
}

fn attempt_json(a: &AttemptSpan) -> String {
    Obj::new()
        .str("vertex", &a.vertex)
        .num("task", a.task)
        .num("attempt", a.attempt)
        .num("container", a.container)
        .num("start_ms", a.start_ms)
        .num("end_ms", a.end_ms)
        .str("status", &a.status)
        .num("speculative", u64::from(a.speculative))
        .finish()
}

fn counters_json(c: &Counters) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in c.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(&mut out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
    out
}

fn vertex_counters_json(vc: &BTreeMap<String, Counters>) -> String {
    let mut out = String::from("{");
    for (i, (vertex, c)) in vc.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(&mut out, vertex);
        out.push(':');
        out.push_str(&counters_json(c));
    }
    out.push('}');
    out
}

impl RunReport {
    /// Serialize to deterministic JSON: fixed field order, sorted counter
    /// keys, integers only. Same-seed runs produce byte-identical output.
    /// The `critical_path` and `stragglers` fields are *derived* —
    /// recomputed from attempts and timeline at serialization time, so
    /// they never drift from them — and are therefore ignored by
    /// [`RunReport::from_json`].
    pub fn to_json(&self) -> String {
        let cp = self
            .critical_path()
            .map(|c| c.to_json())
            .unwrap_or_else(|| String::from("{}"));
        let stragglers = array(self.stragglers().iter().map(|s| s.to_json()));
        Obj::new()
            .str("dag", &self.dag)
            .str("status", &self.status)
            .num("submitted_ms", self.submitted_ms)
            .num("finished_ms", self.finished_ms)
            .raw("scheduler", &scheduler_json(&self.scheduler))
            .raw("containers", &containers_json(&self.containers))
            .raw("edges", &array(self.edges.iter().map(edge_json)))
            .raw("attempts", &array(self.attempts.iter().map(attempt_json)))
            .raw("counters", &counters_json(&self.counters))
            .raw(
                "vertex_counters",
                &vertex_counters_json(&self.vertex_counters),
            )
            .raw(
                "timeline",
                &array(self.timeline.events.iter().map(event_json)),
            )
            .raw("critical_path", &cp)
            .raw("stragglers", &stragglers)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// JSON parser (round-trip for tooling; accepts only what to_json emits
// plus whitespace; parser primitives live in `crate::json`)
// ---------------------------------------------------------------------------

impl RunReport {
    /// Parse a document produced by [`RunReport::to_json`]. The derived
    /// `critical_path` and `stragglers` fields are ignored; they are
    /// recomputed on the next [`RunReport::to_json`], so round-trips stay
    /// byte-identical.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let mut p = Parser::new(text);
        let root = p.document()?;
        let root = as_obj(&root, "document")?;

        let s = as_obj(get(&root, "scheduler")?, "scheduler")?;
        let scheduler = SchedulerStats {
            placements: get_num(&s, "placements")?,
            node_local: get_num(&s, "node_local")?,
            rack_local: get_num(&s, "rack_local")?,
            off_rack: get_num(&s, "off_rack")?,
            unconstrained: get_num(&s, "unconstrained")?,
            relaxed_after_delay: get_num(&s, "relaxed_after_delay")?,
            total_wait_ms: get_num(&s, "total_wait_ms")?,
            max_wait_ms: get_num(&s, "max_wait_ms")?,
            preemptions: get_num(&s, "preemptions")?,
        };
        let c = as_obj(get(&root, "containers")?, "containers")?;
        let containers = ContainerStats {
            assignments: get_num(&c, "assignments")?,
            cold_starts: get_num(&c, "cold_starts")?,
            reuse_hits: get_num(&c, "reuse_hits")?,
            warmup_levels: get_num(&c, "warmup_levels")?,
        };

        let edges = match get(&root, "edges")? {
            JVal::Arr(items) => items
                .iter()
                .map(|v| {
                    let e = as_obj(v, "edge")?;
                    Ok(EdgeStats {
                        src: get_str(&e, "src")?,
                        dst: get_str(&e, "dst")?,
                        fetched_bytes: get_num(&e, "fetched_bytes")?,
                        merged_bytes: get_num(&e, "merged_bytes")?,
                        spilled_bytes: get_num(&e, "spilled_bytes")?,
                        fetch_failures: get_num(&e, "fetch_failures")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("edges is not an array".into()),
        };
        let attempts = match get(&root, "attempts")? {
            JVal::Arr(items) => items
                .iter()
                .map(|v| {
                    let a = as_obj(v, "attempt")?;
                    Ok(AttemptSpan {
                        vertex: get_str(&a, "vertex")?,
                        task: get_num(&a, "task")?,
                        attempt: get_num(&a, "attempt")?,
                        container: get_num(&a, "container")?,
                        start_ms: get_num(&a, "start_ms")?,
                        end_ms: get_num(&a, "end_ms")?,
                        status: get_str(&a, "status")?,
                        speculative: get_num(&a, "speculative").unwrap_or(0) != 0,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("attempts is not an array".into()),
        };
        let mut counters = Counters::new();
        for (k, v) in as_obj(get(&root, "counters")?, "counters")? {
            match v {
                JVal::Num(n) => counters.add(&k, n),
                _ => return Err(format!("counter {k:?} is not a number")),
            }
        }
        // Documents from before vertex counters existed parse to an empty
        // map, like the timeline below.
        let mut vertex_counters = BTreeMap::new();
        if let Some(v) = root.get("vertex_counters") {
            for (vertex, bag) in as_obj(v, "vertex_counters")? {
                let mut c = Counters::new();
                for (k, v) in as_obj(&bag, "vertex counter bag")? {
                    match v {
                        JVal::Num(n) => c.add(&k, n),
                        _ => return Err(format!("vertex counter {k:?} is not a number")),
                    }
                }
                vertex_counters.insert(vertex, c);
            }
        }
        // Documents from before the timeline existed parse to an empty one.
        let timeline = match root.get("timeline") {
            Some(JVal::Arr(items)) => Timeline::from_events(
                items
                    .iter()
                    .map(event_from_jval)
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Some(_) => return Err("timeline is not an array".into()),
            None => Timeline::default(),
        };

        Ok(RunReport {
            dag: get_str(&root, "dag")?,
            status: get_str(&root, "status")?,
            submitted_ms: get_num(&root, "submitted_ms")?,
            finished_ms: get_num(&root, "finished_ms")?,
            scheduler,
            containers,
            edges,
            attempts,
            counters,
            vertex_counters,
            timeline,
        })
    }
}

// ---------------------------------------------------------------------------
// Human-readable renderers
// ---------------------------------------------------------------------------

impl RunReport {
    /// Multi-section plain-text table of the report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report: {} — {} ({} ms)",
            self.dag,
            self.status,
            self.runtime_ms()
        );
        let s = &self.scheduler;
        let _ = writeln!(
            out,
            "  scheduler : {} placements (node-local {}, rack-local {}, off-rack {}, \
             unconstrained {}), {} relaxed after delay, wait total {} ms / max {} ms, \
             {} preempted",
            s.placements,
            s.node_local,
            s.rack_local,
            s.off_rack,
            s.unconstrained,
            s.relaxed_after_delay,
            s.total_wait_ms,
            s.max_wait_ms,
            s.preemptions
        );
        let c = &self.containers;
        let mean_warm = if c.assignments > 0 {
            c.warmup_levels as f64 / c.assignments as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  containers: {} assignments ({} cold, {} reused), mean warm-up {:.1} works",
            c.assignments, c.cold_starts, c.reuse_hits, mean_warm
        );
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  edge {} -> {}: fetched {} B (merged {} B), spilled {} B, {} fetch failures",
                e.src, e.dst, e.fetched_bytes, e.merged_bytes, e.spilled_bytes, e.fetch_failures
            );
        }
        let _ = writeln!(out, "  attempts  : {}", self.attempts.len());
        for (k, v) in self.counters.iter() {
            let _ = writeln!(out, "    {k:>24} = {v}");
        }
        for (vertex, c) in &self.vertex_counters {
            let _ = writeln!(out, "  vertex {vertex}:");
            for (k, v) in c.iter() {
                let _ = writeln!(out, "    {k:>24} = {v}");
            }
        }
        for s in self.stragglers() {
            let _ = writeln!(
                out,
                "  straggler : {} task {} attempt {} ran {} ms (vertex p50 {} ms, threshold {} ms)",
                s.vertex, s.task, s.attempt, s.duration_ms, s.vertex_p50_ms, s.threshold_ms
            );
        }
        out
    }
}

/// ASCII Gantt over the attempt spans of one or more reports (Fig. 7
/// style): rows are containers, cells are lettered by report index
/// (`A`, `B`, …). Reports from one session share container ids, so
/// cross-DAG container reuse shows as one row carrying both letters.
pub fn render_gantt(reports: &[&RunReport], width: usize) -> String {
    let width = width.max(2);
    let mut by_container: BTreeMap<u64, Vec<(u8, &AttemptSpan)>> = BTreeMap::new();
    let mut t_max = 1u64;
    for (i, r) in reports.iter().enumerate() {
        let letter = b'A' + (i % 26) as u8;
        for a in &r.attempts {
            by_container
                .entry(a.container)
                .or_default()
                .push((letter, a));
            t_max = t_max.max(a.end_ms);
        }
    }
    let mut out = String::new();
    for (cid, mut spans) in by_container {
        spans.sort_by_key(|(_, a)| (a.start_ms, a.end_ms));
        let mut line = vec![b'.'; width];
        for (letter, a) in spans {
            let lo = (a.start_ms as usize * (width - 1)) / t_max as usize;
            let hi = (a.end_ms as usize * (width - 1)) / t_max as usize;
            for cell in line.iter_mut().take(hi.max(lo) + 1).skip(lo) {
                *cell = letter;
            }
        }
        let _ = writeln!(
            out,
            "container {:>4} | {}",
            cid,
            String::from_utf8_lossy(&line)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut counters = Counters::new();
        counters.add("BYTES_READ", 4096);
        counters.add("FETCH_RETRIES", 2);
        let mut vertex_counters = BTreeMap::new();
        let mut vc = Counters::new();
        vc.add("BYTES_READ", 4096);
        vertex_counters.insert("tokenizer \"quoted\"\n".to_string(), vc);
        let mut timeline = Timeline::new();
        timeline.record(
            10,
            1,
            crate::timeline::EventKind::DagSubmitted {
                dag: "wordcount".into(),
            },
        );
        timeline.record(
            100,
            1,
            crate::timeline::EventKind::AttemptLaunched {
                vertex: "tokenizer \"quoted\"\n".into(),
                task: 3,
                attempt: 0,
                container: 7,
                launch_ms: 50,
                backoff_ms: 0,
                fetch_ms: 20,
            },
        );
        RunReport {
            dag: "wordcount".into(),
            status: "succeeded".into(),
            submitted_ms: 10,
            finished_ms: 9_010,
            scheduler: SchedulerStats {
                placements: 11,
                node_local: 8,
                rack_local: 2,
                off_rack: 0,
                unconstrained: 1,
                relaxed_after_delay: 2,
                total_wait_ms: 2_400,
                max_wait_ms: 1_000,
                preemptions: 1,
            },
            containers: ContainerStats {
                assignments: 11,
                cold_starts: 4,
                reuse_hits: 7,
                warmup_levels: 13,
            },
            edges: vec![EdgeStats {
                src: "tokenizer".into(),
                dst: "summer".into(),
                fetched_bytes: 1 << 20,
                merged_bytes: 1 << 20,
                spilled_bytes: 512,
                fetch_failures: 1,
            }],
            attempts: vec![AttemptSpan {
                vertex: "tokenizer \"quoted\"\n".into(),
                task: 3,
                attempt: 0,
                container: 7,
                start_ms: 100,
                end_ms: 900,
                status: "succeeded".into(),
                speculative: false,
            }],
            counters,
            vertex_counters,
            timeline,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        // And the re-serialization is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn serialization_is_deterministic() {
        let r = sample();
        assert_eq!(r.to_json(), r.to_json());
        // Counter insertion order must not leak into the document.
        let mut r2 = sample();
        r2.counters = Counters::new();
        r2.counters.add("FETCH_RETRIES", 2);
        r2.counters.add("BYTES_READ", 4096);
        assert_eq!(r2.to_json(), r.to_json());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(RunReport::from_json("").is_err());
        assert!(RunReport::from_json("{").is_err());
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("[1,2]").is_err());
        let valid = sample().to_json();
        assert!(RunReport::from_json(&valid[..valid.len() - 1]).is_err());
        assert!(RunReport::from_json(&format!("{valid}x")).is_err());
    }

    #[test]
    fn scheduler_delta_subtracts_counts_keeps_max() {
        let mut acc = SchedulerStats::default();
        acc.record_placement(Locality::NodeLocal, 100, false);
        let base = acc.clone();
        acc.record_placement(Locality::RackLocal, 1_200, true);
        acc.record_placement(Locality::Unconstrained, 0, false);
        let d = acc.delta_since(&base);
        assert_eq!(d.placements, 2);
        assert_eq!(d.node_local, 0);
        assert_eq!(d.rack_local, 1);
        assert_eq!(d.unconstrained, 1);
        assert_eq!(d.relaxed_after_delay, 1);
        assert_eq!(d.total_wait_ms, 1_200);
        assert_eq!(d.max_wait_ms, 1_200);
    }

    #[test]
    fn gantt_shows_cross_report_container_reuse() {
        let mut a = sample();
        a.attempts = vec![AttemptSpan {
            vertex: "v".into(),
            task: 0,
            attempt: 0,
            container: 1,
            start_ms: 0,
            end_ms: 500,
            status: "succeeded".into(),
            speculative: false,
        }];
        let mut b = sample();
        b.attempts = vec![AttemptSpan {
            vertex: "v".into(),
            task: 0,
            attempt: 0,
            container: 1,
            start_ms: 600,
            end_ms: 1_000,
            status: "succeeded".into(),
            speculative: true,
        }];
        let g = render_gantt(&[&a, &b], 40);
        assert_eq!(g.lines().count(), 1, "one shared container row");
        let line = g.lines().next().unwrap();
        assert!(line.contains('A') && line.contains('B'), "{g}");
    }

    #[test]
    fn table_renders_every_section() {
        let t = sample().render_table();
        assert!(t.contains("scheduler"));
        assert!(t.contains("containers"));
        assert!(t.contains("tokenizer -> summer"));
        assert!(t.contains("FETCH_RETRIES"));
        assert!(t.contains("vertex tokenizer"));
    }

    #[test]
    fn vertex_counters_round_trip_and_old_docs_default_empty() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\"vertex_counters\":{"));
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.vertex_counters, r.vertex_counters);
        // A pre-vertex-counters document (field stripped) still parses.
        let stripped = json.replace(
            &format!(
                ",\"vertex_counters\":{}",
                super::vertex_counters_json(&r.vertex_counters)
            ),
            "",
        );
        assert_ne!(stripped, json);
        let old = RunReport::from_json(&stripped).unwrap();
        assert!(old.vertex_counters.is_empty());
    }

    #[test]
    fn stragglers_are_serialized_but_derived() {
        let mut r = sample();
        let quick = |task: u64, end: u64| AttemptSpan {
            vertex: "v".into(),
            task,
            attempt: 0,
            container: 1,
            start_ms: 0,
            end_ms: end,
            status: "succeeded".into(),
            speculative: false,
        };
        r.attempts = vec![quick(0, 10), quick(1, 10), quick(2, 10), quick(3, 400)];
        let json = r.to_json();
        assert!(json.contains("\"stragglers\":[{\"vertex\":\"v\",\"task\":3"));
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json, "derived field re-derives identically");
    }
}
