//! Hierarchical metrics registry: counters and latency histograms rolled up
//! task → vertex → DAG → app (paper §2 "publishing metrics and statistics",
//! §7 Tez UI).
//!
//! The flat [`Counters`] bag gives per-task totals; this module adds the
//! aggregation layers the Timeline Server / Tez UI stack provides in the
//! Java implementation: every counter a task reports is merged into its
//! vertex, its DAG and the app-wide scope, and latency-shaped measurements
//! (attempt duration, scheduler queue wait, shuffle fetch latency, spill
//! size) are recorded into fixed-bucket log2 [`Histogram`]s so p50/p95/p99
//! survive aggregation without storing raw samples.
//!
//! Everything here is integer-only and ordered by `BTreeMap`, so the JSON
//! and Prometheus expositions are byte-identical across same-seed runs and
//! worker counts, like the run report and Chrome trace.

use crate::counters::Counters;
use crate::json::{array, esc, Obj};
use crate::run_report::RunReport;
use crate::timeline::EventKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Well-known histogram names recorded by the built-in components.
pub mod metric_names {
    /// Task-attempt execution span (work start to terminal event), ms.
    pub const ATTEMPT_DURATION_MS: &str = "attempt_duration_ms";
    /// Container-request wait in the RM queue (creation to placement), ms.
    pub const QUEUE_WAIT_MS: &str = "scheduler_queue_wait_ms";
    /// Per-shard shuffle fetch latency (backoff plus simulated remote
    /// read), ms.
    pub const SHUFFLE_FETCH_LATENCY_MS: &str = "shuffle_fetch_latency_ms";
    /// Producer-side sorter spill size, bytes.
    pub const SPILL_SIZE_BYTES: &str = "spill_size_bytes";
    /// Data-plane payloads handed to the worker pool (a counter, not a
    /// histogram — submission order is control-plane driven, so the count
    /// is identical at any worker count).
    pub const POOL_JOBS_SUBMITTED: &str = "POOL_JOBS_SUBMITTED";
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i - 1]` (bucket 64 saturates at
/// `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram over `u64` samples.
///
/// Stores only per-bucket counts plus the exact sum — no raw samples, no
/// min/max — which keeps [`Histogram::merge`] and [`Histogram::delta_since`]
/// closed under bucket-wise arithmetic: a per-DAG slice of an app-lifetime
/// accumulator is itself a well-formed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (what quantiles report).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The `pct`-th percentile (0..=100), reported as the inclusive upper
    /// bound of the bucket holding that rank. 0 when empty.
    pub fn quantile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Ceil of count*pct/100 in u128 so huge counts cannot overflow.
        let target = ((self.count as u128 * pct as u128).div_ceil(100)).max(1);
        let mut seen = 0u128;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u128;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> u64 {
        self.quantile(50)
    }

    /// 95th percentile (upper bucket bound).
    pub fn p95(&self) -> u64 {
        self.quantile(95)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> u64 {
        self.quantile(99)
    }

    /// Merge another histogram into this one (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples recorded since `base` was snapshotted (bucket-wise
    /// subtraction) — the per-DAG attribution pattern used for
    /// app-lifetime accumulators like the RM queue-wait histogram.
    pub fn delta_since(&self, base: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (&cur, &b)) in self.buckets.iter().zip(base.buckets.iter()).enumerate() {
            out.buckets[i] = cur.saturating_sub(b);
        }
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        out
    }

    /// Deterministic JSON: count, sum, the three standard quantiles, and
    /// the non-empty buckets as `[upper_bound, count]` pairs in index
    /// order.
    pub fn to_json(&self) -> String {
        let buckets = array(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("[{},{}]", bucket_upper(i), c)),
        );
        Obj::new()
            .num("count", self.count)
            .num("sum", self.sum)
            .num("p50", self.p50())
            .num("p95", self.p95())
            .num("p99", self.p99())
            .raw("buckets", &buckets)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Registry hierarchy
// ---------------------------------------------------------------------------

/// One aggregation scope: a counter bag plus named histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScopeMetrics {
    /// Counter rollup at this scope.
    pub counters: Counters,
    /// Named latency/size distributions at this scope.
    pub histograms: BTreeMap<String, Histogram>,
}

impl ScopeMetrics {
    fn add_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    fn record_value(&mut self, hist: &str, v: u64) {
        self.histograms
            .entry(hist.to_string())
            .or_default()
            .record(v);
    }

    fn merge_histogram(&mut self, hist: &str, other: &Histogram) {
        if !other.is_empty() {
            self.histograms
                .entry(hist.to_string())
                .or_default()
                .merge(other);
        }
    }

    fn to_json(&self) -> String {
        Obj::new()
            .raw("counters", &counters_fragment(&self.counters))
            .raw("histograms", &histograms_fragment(&self.histograms))
            .finish()
    }
}

/// DAG-level scope plus its per-vertex children.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagMetrics {
    /// Rollup across the whole DAG.
    pub scope: ScopeMetrics,
    /// Per-vertex scopes, keyed by vertex name.
    pub vertices: BTreeMap<String, ScopeMetrics>,
}

impl DagMetrics {
    fn to_json(&self) -> String {
        let mut verts = String::from("{");
        for (i, (name, s)) in self.vertices.iter().enumerate() {
            if i > 0 {
                verts.push(',');
            }
            esc(&mut verts, name);
            verts.push(':');
            verts.push_str(&s.to_json());
        }
        verts.push('}');
        Obj::new()
            .raw("counters", &counters_fragment(&self.scope.counters))
            .raw("histograms", &histograms_fragment(&self.scope.histograms))
            .raw("vertices", &verts)
            .finish()
    }
}

fn counters_fragment(c: &Counters) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in c.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(&mut out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
    out
}

fn histograms_fragment(h: &BTreeMap<String, Histogram>) -> String {
    let mut out = String::from("{");
    for (i, (k, hist)) in h.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(&mut out, k);
        out.push(':');
        out.push_str(&hist.to_json());
    }
    out.push('}');
    out
}

/// The app-wide registry: one app scope plus per-DAG children. Every
/// record targeted at a vertex also lands in its DAG and the app scope,
/// so each level reads as a complete rollup on its own.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Rollup across the whole app (session).
    pub app: ScopeMetrics,
    /// Per-DAG registries, keyed by DAG name.
    pub dags: BTreeMap<String, DagMetrics>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure a DAG scope exists (so a DAG with no samples still appears
    /// in the export).
    pub fn begin_dag(&mut self, dag: &str) {
        self.dags.entry(dag.to_string()).or_default();
    }

    /// Merge one task attempt's counter bag into its vertex, DAG and app
    /// scopes.
    pub fn record_task_counters(&mut self, dag: &str, vertex: &str, counters: &Counters) {
        if counters.is_empty() {
            return;
        }
        self.app.counters.merge(counters);
        let d = self.dags.entry(dag.to_string()).or_default();
        d.scope.counters.merge(counters);
        d.vertices
            .entry(vertex.to_string())
            .or_default()
            .counters
            .merge(counters);
    }

    /// Add to a named counter at DAG scope (and the app rollup).
    pub fn add_dag_counter(&mut self, dag: &str, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        self.app.add_counter(name, delta);
        self.dags
            .entry(dag.to_string())
            .or_default()
            .scope
            .add_counter(name, delta);
    }

    /// Record one sample into a named histogram at vertex scope (when
    /// `vertex` is given), DAG scope, and the app rollup.
    pub fn record_value(&mut self, dag: &str, vertex: Option<&str>, hist: &str, v: u64) {
        self.app.record_value(hist, v);
        let d = self.dags.entry(dag.to_string()).or_default();
        d.scope.record_value(hist, v);
        if let Some(vname) = vertex {
            d.vertices
                .entry(vname.to_string())
                .or_default()
                .record_value(hist, v);
        }
    }

    /// Merge a pre-aggregated histogram into a DAG scope (and the app
    /// rollup) — used for per-DAG deltas of app-lifetime accumulators
    /// like the RM queue-wait histogram.
    pub fn merge_histogram(&mut self, dag: &str, hist: &str, other: &Histogram) {
        if other.is_empty() {
            return;
        }
        self.app.merge_histogram(hist, other);
        self.dags
            .entry(dag.to_string())
            .or_default()
            .scope
            .merge_histogram(hist, other);
    }

    /// Metrics for one DAG, if any were recorded.
    pub fn dag(&self, name: &str) -> Option<&DagMetrics> {
        self.dags.get(name)
    }

    /// Deterministic JSON export of the whole hierarchy.
    pub fn to_json(&self) -> String {
        let mut dags = String::from("{");
        for (i, (name, d)) in self.dags.iter().enumerate() {
            if i > 0 {
                dags.push(',');
            }
            esc(&mut dags, name);
            dags.push(':');
            dags.push_str(&d.to_json());
        }
        dags.push('}');
        Obj::new()
            .raw("app", &self.app.to_json())
            .raw("dags", &dags)
            .finish()
    }

    /// Prometheus text-format exposition of the whole hierarchy.
    ///
    /// Counters become `tez_counter_total{scope,dag,vertex,counter}`
    /// samples; each histogram becomes a standard Prometheus histogram
    /// family (`_bucket{le=...}` cumulative, `_sum`, `_count`) named
    /// `tez_<name>`. Scopes are emitted app → DAG → vertex, maps in key
    /// order, so the exposition is byte-identical across same-seed runs.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE tez_counter_total counter\n");
        write_counter_samples(&mut out, &self.app.counters, "app", None, None);
        for (dag, d) in &self.dags {
            write_counter_samples(&mut out, &d.scope.counters, "dag", Some(dag), None);
            for (vertex, v) in &d.vertices {
                write_counter_samples(&mut out, &v.counters, "vertex", Some(dag), Some(vertex));
            }
        }

        // Collect the union of histogram names across all scopes so each
        // family gets exactly one TYPE header.
        let mut names: Vec<&str> = self.app.histograms.keys().map(String::as_str).collect();
        for d in self.dags.values() {
            for k in d.scope.histograms.keys() {
                names.push(k);
            }
            for v in d.vertices.values() {
                for k in v.histograms.keys() {
                    names.push(k);
                }
            }
        }
        names.sort_unstable();
        names.dedup();
        for name in names {
            let _ = writeln!(out, "# TYPE tez_{name} histogram");
            if let Some(h) = self.app.histograms.get(name) {
                write_histogram_samples(&mut out, name, h, "app", None, None);
            }
            for (dag, d) in &self.dags {
                if let Some(h) = d.scope.histograms.get(name) {
                    write_histogram_samples(&mut out, name, h, "dag", Some(dag), None);
                }
                for (vertex, v) in &d.vertices {
                    if let Some(h) = v.histograms.get(name) {
                        write_histogram_samples(
                            &mut out,
                            name,
                            h,
                            "vertex",
                            Some(dag),
                            Some(vertex),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn prom_label(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn labels(
    scope: &str,
    dag: Option<&str>,
    vertex: Option<&str>,
    extra: Option<(&str, &str)>,
) -> String {
    let mut out = String::from("{scope=\"");
    prom_label(&mut out, scope);
    out.push('"');
    if let Some(d) = dag {
        out.push_str(",dag=\"");
        prom_label(&mut out, d);
        out.push('"');
    }
    if let Some(v) = vertex {
        out.push_str(",vertex=\"");
        prom_label(&mut out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        out.push(',');
        out.push_str(k);
        out.push_str("=\"");
        prom_label(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

fn write_counter_samples(
    out: &mut String,
    counters: &Counters,
    scope: &str,
    dag: Option<&str>,
    vertex: Option<&str>,
) {
    for (name, value) in counters.iter() {
        let _ = writeln!(
            out,
            "tez_counter_total{} {}",
            labels(scope, dag, vertex, Some(("counter", name))),
            value
        );
    }
}

fn write_histogram_samples(
    out: &mut String,
    name: &str,
    h: &Histogram,
    scope: &str,
    dag: Option<&str>,
    vertex: Option<&str>,
) {
    let base = labels(scope, dag, vertex, None);
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        let c = h.bucket_count(i);
        if c == 0 {
            continue;
        }
        cumulative += c;
        let le = if i >= 64 {
            String::from("+Inf")
        } else {
            format!("{}", bucket_upper(i))
        };
        let _ = writeln!(
            out,
            "tez_{name}_bucket{} {}",
            labels(scope, dag, vertex, Some(("le", &le))),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "tez_{name}_bucket{} {}",
        labels(scope, dag, vertex, Some(("le", "+Inf"))),
        h.count()
    );
    let _ = writeln!(out, "tez_{name}_sum{} {}", base, h.sum());
    let _ = writeln!(out, "tez_{name}_count{} {}", base, h.count());
}

// ---------------------------------------------------------------------------
// Live per-vertex progress (derived from the timeline)
// ---------------------------------------------------------------------------

/// Attempt-state counts for one vertex at a point in simulated time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexProgress {
    /// Vertex name.
    pub vertex: String,
    /// Distinct tasks ever scheduled for this vertex (final parallelism).
    pub total_tasks: u64,
    /// Attempts launched but not yet terminal at the probe time.
    pub running: u64,
    /// Attempts that finished `"succeeded"` by the probe time.
    pub succeeded: u64,
    /// Attempts that finished `"failed"` by the probe time.
    pub failed: u64,
    /// Attempts that finished `"killed"` by the probe time.
    pub killed: u64,
}

/// Per-vertex attempt-state counts at simulated time `ts_ms`, derived
/// from the report's timeline. Vertices appear in first-scheduled order.
/// Probing at `finished_ms` gives the terminal picture; earlier probes
/// replay the run as the AM saw it.
pub fn progress_at(report: &RunReport, ts_ms: u64) -> Vec<VertexProgress> {
    let mut order: Vec<String> = Vec::new();
    let mut by_vertex: BTreeMap<String, VertexProgress> = BTreeMap::new();
    let mut tasks: BTreeMap<String, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for e in &report.timeline.events {
        match &e.kind {
            EventKind::AttemptScheduled { vertex, task, .. } => {
                if !by_vertex.contains_key(vertex) {
                    order.push(vertex.clone());
                    by_vertex.insert(
                        vertex.clone(),
                        VertexProgress {
                            vertex: vertex.clone(),
                            ..VertexProgress::default()
                        },
                    );
                }
                tasks.entry(vertex.clone()).or_default().insert(*task);
            }
            EventKind::AttemptLaunched { vertex, .. } if e.ts_ms <= ts_ms => {
                if let Some(p) = by_vertex.get_mut(vertex) {
                    p.running += 1;
                }
            }
            EventKind::AttemptFinished { vertex, status, .. } if e.ts_ms <= ts_ms => {
                if let Some(p) = by_vertex.get_mut(vertex) {
                    // Terminal events may close attempts killed before
                    // launch; only decrement what was counted running.
                    p.running = p.running.saturating_sub(1);
                    match status.as_str() {
                        "succeeded" => p.succeeded += 1,
                        "failed" => p.failed += 1,
                        _ => p.killed += 1,
                    }
                }
            }
            _ => {}
        }
    }
    order
        .into_iter()
        .map(|v| {
            let mut p = by_vertex.remove(&v).expect("vertex recorded");
            p.total_tasks = tasks.get(&p.vertex).map(|t| t.len() as u64).unwrap_or(0);
            p
        })
        .collect()
}

/// Render progress rows as ASCII bars: fill tracks succeeded tasks over
/// the vertex's final parallelism.
pub fn render_progress(rows: &[VertexProgress], width: usize) -> String {
    let width = width.max(4);
    let name_w = rows
        .iter()
        .map(|r| r.vertex.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    for r in rows {
        let total = r.total_tasks.max(1);
        let filled = ((r.succeeded.min(total) as usize) * width) / total as usize;
        let mut bar = String::with_capacity(width);
        for i in 0..width {
            bar.push(if i < filled { '#' } else { '.' });
        }
        let _ = writeln!(
            out,
            "  {:<name_w$} [{bar}] {}/{} done, {} running, {} failed, {} killed",
            r.vertex, r.succeeded, r.total_tasks, r.running, r.failed, r.killed
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Straggler detection (histogram-based, over finished reports)
// ---------------------------------------------------------------------------

/// Minimum succeeded attempts a vertex needs before outliers are flagged.
pub const STRAGGLER_MIN_SAMPLES: u64 = 4;

/// Duration multiple of the vertex median beyond which an attempt is
/// flagged.
pub const STRAGGLER_FACTOR: u64 = 2;

/// One flagged outlier attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StragglerFlag {
    /// Vertex name.
    pub vertex: String,
    /// Task index.
    pub task: u64,
    /// Attempt number.
    pub attempt: u64,
    /// The attempt's execution span, ms.
    pub duration_ms: u64,
    /// The vertex's median duration (histogram bucket upper bound), ms.
    pub vertex_p50_ms: u64,
    /// Flagging threshold that was exceeded, ms.
    pub threshold_ms: u64,
}

impl StragglerFlag {
    pub(crate) fn to_json(&self) -> String {
        Obj::new()
            .str("vertex", &self.vertex)
            .num("task", self.task)
            .num("attempt", self.attempt)
            .num("duration_ms", self.duration_ms)
            .num("vertex_p50_ms", self.vertex_p50_ms)
            .num("threshold_ms", self.threshold_ms)
            .finish()
    }
}

/// Flag succeeded attempts whose duration exceeds
/// [`STRAGGLER_FACTOR`] × the vertex's histogram median, for vertices
/// with at least [`STRAGGLER_MIN_SAMPLES`] succeeded attempts. Flags come
/// out in the report's attempt order, so the annotation is deterministic.
pub fn detect_stragglers(report: &RunReport) -> Vec<StragglerFlag> {
    let mut per_vertex: BTreeMap<&str, Histogram> = BTreeMap::new();
    for a in &report.attempts {
        if a.status == "succeeded" {
            per_vertex
                .entry(a.vertex.as_str())
                .or_default()
                .record(a.end_ms.saturating_sub(a.start_ms));
        }
    }
    let mut flags = Vec::new();
    for a in &report.attempts {
        if a.status != "succeeded" {
            continue;
        }
        let Some(h) = per_vertex.get(a.vertex.as_str()) else {
            continue;
        };
        if h.count() < STRAGGLER_MIN_SAMPLES {
            continue;
        }
        let p50 = h.p50().max(1);
        let threshold = p50.saturating_mul(STRAGGLER_FACTOR);
        let duration = a.end_ms.saturating_sub(a.start_ms);
        if duration > threshold {
            flags.push(StragglerFlag {
                vertex: a.vertex.clone(),
                task: a.task,
                attempt: a.attempt,
                duration_ms: duration,
                vertex_p50_ms: p50,
                threshold_ms: threshold,
            });
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_report::AttemptSpan;

    #[test]
    fn bucket_boundaries_cover_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
        }
        // Buckets tile without gaps or overlap.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1).saturating_add(1));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000, 5000] {
            h.record(v);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() >= 5000, "p99 at least the max sample's bucket low");
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 6116);
        assert_eq!(h.quantile(100), bucket_upper(bucket_index(5000)));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(100);
        let base = a.clone();
        a.record(7);
        a.record(0);
        let delta = a.delta_since(&base);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 7);
        let mut rebuilt = base.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn histogram_json_is_deterministic_and_sparse() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        let j = h.to_json();
        assert_eq!(j, h.to_json());
        assert_eq!(
            j,
            "{\"count\":3,\"sum\":6,\"p50\":3,\"p95\":3,\"p99\":3,\"buckets\":[[0,1],[3,2]]}"
        );
    }

    #[test]
    fn registry_rolls_up_task_to_vertex_dag_app() {
        let mut r = MetricsRegistry::new();
        let mut c = Counters::new();
        c.add("BYTES_READ", 10);
        r.record_task_counters("dagA", "map", &c);
        r.record_task_counters("dagA", "reduce", &c);
        r.record_task_counters("dagB", "map", &c);
        assert_eq!(r.app.counters.get("BYTES_READ"), 30);
        assert_eq!(r.dag("dagA").unwrap().scope.counters.get("BYTES_READ"), 20);
        assert_eq!(
            r.dag("dagA").unwrap().vertices["map"]
                .counters
                .get("BYTES_READ"),
            10
        );
        r.record_value("dagA", Some("map"), metric_names::ATTEMPT_DURATION_MS, 40);
        assert_eq!(
            r.app.histograms[metric_names::ATTEMPT_DURATION_MS].count(),
            1
        );
        assert_eq!(
            r.dag("dagA").unwrap().vertices["map"].histograms[metric_names::ATTEMPT_DURATION_MS]
                .count(),
            1
        );
        assert!(r.dag("dagB").unwrap().vertices["map"].histograms.is_empty());
    }

    #[test]
    fn registry_json_and_prometheus_are_deterministic() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.begin_dag("dagB");
            r.begin_dag("dagA");
            let mut c = Counters::new();
            c.add("RECORDS_IN", 3);
            r.record_task_counters("dagA", "v1", &c);
            r.record_value("dagA", Some("v1"), metric_names::SPILL_SIZE_BYTES, 4096);
            r.add_dag_counter("dagB", metric_names::POOL_JOBS_SUBMITTED, 2);
            r
        };
        let a = build();
        let b = build();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert!(a.to_json().starts_with("{\"app\":"));
        let prom = a.to_prometheus();
        assert!(prom.contains("# TYPE tez_counter_total counter"));
        assert!(prom.contains("# TYPE tez_spill_size_bytes histogram"));
        assert!(prom.contains(
            "tez_counter_total{scope=\"vertex\",dag=\"dagA\",vertex=\"v1\",counter=\"RECORDS_IN\"} 3"
        ));
        assert!(prom.contains("tez_spill_size_bytes_bucket{scope=\"app\",le=\"8191\"}"));
        assert!(prom.contains("tez_spill_size_bytes_count{scope=\"app\"} 1"));
        // Every histogram family closes with +Inf at the total count.
        assert!(prom.contains("tez_spill_size_bytes_bucket{scope=\"app\",le=\"+Inf\"} 1"));
    }

    fn span(vertex: &str, task: u64, start: u64, end: u64, status: &str) -> AttemptSpan {
        AttemptSpan {
            vertex: vertex.into(),
            task,
            attempt: 0,
            container: 1,
            start_ms: start,
            end_ms: end,
            status: status.into(),
            speculative: false,
        }
    }

    #[test]
    fn stragglers_need_min_samples_and_exceed_threshold() {
        // Three quick tasks + one slow: not enough samples to flag yet.
        let mut report = RunReport {
            attempts: vec![
                span("map", 0, 0, 10, "succeeded"),
                span("map", 1, 0, 10, "succeeded"),
                span("map", 2, 0, 10, "succeeded"),
            ],
            ..RunReport::default()
        };
        assert!(detect_stragglers(&report).is_empty());
        report.attempts.push(span("map", 3, 0, 200, "succeeded"));
        let flags = detect_stragglers(&report);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].task, 3);
        assert_eq!(flags[0].duration_ms, 200);
        assert!(flags[0].threshold_ms < 200);
        // Failed attempts never count as stragglers or samples.
        report.attempts.push(span("map", 4, 0, 900, "failed"));
        assert_eq!(detect_stragglers(&report).len(), 1);
    }

    #[test]
    fn progress_counts_attempt_states_over_time() {
        use crate::timeline::{EventKind, Timeline};
        let mut t = Timeline::new();
        let sched = |v: &str, task| EventKind::AttemptScheduled {
            vertex: v.into(),
            task,
            attempt: 0,
            speculative: false,
        };
        let launch = |v: &str, task| EventKind::AttemptLaunched {
            vertex: v.into(),
            task,
            attempt: 0,
            container: 1,
            launch_ms: 0,
            backoff_ms: 0,
            fetch_ms: 0,
        };
        let finish = |v: &str, task, status: &str| EventKind::AttemptFinished {
            vertex: v.into(),
            task,
            attempt: 0,
            container: 1,
            status: status.into(),
        };
        t.record(0, 1, sched("map", 0));
        t.record(0, 1, sched("map", 1));
        t.record(5, 1, launch("map", 0));
        t.record(5, 1, launch("map", 1));
        t.record(50, 1, finish("map", 0, "succeeded"));
        t.record(60, 1, sched("reduce", 0));
        t.record(70, 1, launch("reduce", 0));
        t.record(90, 1, finish("map", 1, "failed"));
        t.record(120, 1, finish("reduce", 0, "succeeded"));
        let report = RunReport {
            timeline: t,
            ..RunReport::default()
        };
        let mid = progress_at(&report, 80);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid[0].vertex, "map");
        assert_eq!(mid[0].total_tasks, 2);
        assert_eq!(mid[0].succeeded, 1);
        assert_eq!(mid[0].running, 1);
        assert_eq!(mid[1].vertex, "reduce");
        assert_eq!(mid[1].running, 1);
        let done = progress_at(&report, 200);
        assert_eq!(done[0].failed, 1);
        assert_eq!(done[0].running, 0);
        assert_eq!(done[1].succeeded, 1);
        let text = render_progress(&done, 10);
        assert!(text.contains("map"));
        assert!(text.contains("1/2 done"));
    }
}
