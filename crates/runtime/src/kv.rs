//! Reader/writer interfaces between inputs/outputs and processors.
//!
//! These are interfaces only — the built-in key-value implementations live
//! in `tez-shuffle`. Keys and values are opaque byte strings; engines encode
//! typed data with order-preserving codecs when sort order matters.

use crate::error::TaskError;
use bytes::Bytes;

/// A flat stream of key-value pairs.
pub trait KvReader: Send {
    /// Next pair, or `None` at end of stream. `Bytes` values are cheap
    /// slices of the underlying shard buffers.
    fn next(&mut self) -> Option<(Bytes, Bytes)>;
}

/// One key together with all its values (from a sorted, merged input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvGroup {
    /// The group key.
    pub key: Bytes,
    /// All values sharing the key, in merge order.
    pub values: Vec<Bytes>,
}

/// A stream of key groups, keys in ascending byte order.
pub trait KvGroupReader: Send {
    /// Next group, or `None` at end of stream.
    fn next_group(&mut self) -> Option<KvGroup>;
}

/// The reader handed to a processor for one logical input.
pub enum InputReader {
    /// Flat pairs (unsorted edges, root inputs).
    KeyValue(Box<dyn KvReader>),
    /// Sorted groups (scatter-gather merged input).
    Grouped(Box<dyn KvGroupReader>),
}

impl InputReader {
    /// Unwrap as a flat reader; error if grouped.
    pub fn into_kv(self) -> Result<Box<dyn KvReader>, TaskError> {
        match self {
            InputReader::KeyValue(r) => Ok(r),
            InputReader::Grouped(_) => Err(TaskError::Corrupt(
                "expected flat key-value reader, found grouped".into(),
            )),
        }
    }

    /// Unwrap as a grouped reader; error if flat.
    pub fn into_grouped(self) -> Result<Box<dyn KvGroupReader>, TaskError> {
        match self {
            InputReader::Grouped(r) => Ok(r),
            InputReader::KeyValue(_) => Err(TaskError::Corrupt(
                "expected grouped reader, found flat key-value".into(),
            )),
        }
    }

    /// Drain all pairs into a vector (test/debug convenience; grouped
    /// readers are flattened).
    pub fn collect_pairs(self) -> Vec<(Bytes, Bytes)> {
        match self {
            InputReader::KeyValue(mut r) => {
                let mut out = Vec::new();
                while let Some(p) = r.next() {
                    out.push(p);
                }
                out
            }
            InputReader::Grouped(mut r) => {
                let mut out = Vec::new();
                while let Some(g) = r.next_group() {
                    for v in g.values {
                        out.push((g.key.clone(), v));
                    }
                }
                out
            }
        }
    }
}

/// The writer handed to a processor for one logical output.
pub trait KvWriter: Send {
    /// Write one pair. Partitioning/sorting happen behind this interface.
    fn write(&mut self, key: &[u8], value: &[u8]) -> Result<(), TaskError>;
}

/// Simple in-memory reader over a pair vector (used by tests and by inputs
/// that materialize small data, e.g. broadcast sides).
pub struct VecKvReader {
    pairs: std::vec::IntoIter<(Bytes, Bytes)>,
}

impl VecKvReader {
    /// Reader over the given pairs.
    pub fn new(pairs: Vec<(Bytes, Bytes)>) -> Self {
        VecKvReader {
            pairs: pairs.into_iter(),
        }
    }
}

impl KvReader for VecKvReader {
    fn next(&mut self) -> Option<(Bytes, Bytes)> {
        self.pairs.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn vec_reader_streams_pairs() {
        let mut r = VecKvReader::new(vec![(b("k1"), b("v1")), (b("k2"), b("v2"))]);
        assert_eq!(r.next(), Some((b("k1"), b("v1"))));
        assert_eq!(r.next(), Some((b("k2"), b("v2"))));
        assert_eq!(r.next(), None);
    }

    #[test]
    fn into_kv_rejects_grouped() {
        struct Empty;
        impl KvGroupReader for Empty {
            fn next_group(&mut self) -> Option<KvGroup> {
                None
            }
        }
        let r = InputReader::Grouped(Box::new(Empty));
        assert!(r.into_kv().is_err());
    }

    #[test]
    fn collect_pairs_flattens_groups() {
        struct Two;
        impl KvGroupReader for Two {
            fn next_group(&mut self) -> Option<KvGroup> {
                None
            }
        }
        let flat = InputReader::KeyValue(Box::new(VecKvReader::new(vec![(b("a"), b("1"))])));
        assert_eq!(flat.collect_pairs().len(), 1);
        let grouped = InputReader::Grouped(Box::new(Two));
        assert!(grouped.collect_pairs().is_empty());
    }
}
