//! Abstract environment handed to tasks: data fetching, distributed
//! storage, the shared object registry, and security tokens.
//!
//! These traits keep `tez-runtime` independent of the simulator: the
//! orchestrator (`tez-core`) adapts the simulated cluster services of
//! `tez-yarn` / `tez-shuffle` to these interfaces.

use crate::error::TaskError;
use crate::events::ShardLocator;
use bytes::Bytes;
use std::any::Any;
use std::sync::Arc;

/// A fetched shard of intermediate data.
#[derive(Clone, Debug)]
pub struct FetchedShard {
    /// Encoded key-value bytes (format owned by the input/output pair).
    pub data: Bytes,
    /// Record count.
    pub records: u64,
    /// Whether the shard is sorted by key.
    pub sorted: bool,
    /// Whether the fetch crossed the network (for counters/cost).
    pub remote: bool,
}

/// Failure to fetch one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchError {
    /// The locator that failed.
    pub locator: ShardLocator,
    /// Human-readable reason.
    pub reason: String,
}

/// Fetches intermediate data by locator (the consumer side of the shuffle
/// service). Implementations validate the caller's [`SecurityToken`].
pub trait DataFetcher {
    /// Fetch one shard.
    fn fetch(
        &self,
        locator: &ShardLocator,
        token: SecurityToken,
    ) -> Result<FetchedShard, FetchError>;
}

/// One block of a distributed-filesystem file.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    /// Block index within the file.
    pub index: usize,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Record count.
    pub records: u64,
    /// Host names holding replicas.
    pub hosts: Vec<String>,
}

/// Minimal distributed-filesystem contract used by root inputs, leaf
/// outputs, split initializers and the classic MapReduce baseline.
///
/// All methods take `&self`: implementations use interior mutability so a
/// shared handle can be read by task payloads on worker threads while the
/// control plane retains write access (writes themselves only ever happen
/// on the control-plane thread, which keeps replica placement and
/// statistics deterministic).
pub trait Dfs: Send + Sync {
    /// Blocks of a file, or `None` if absent.
    fn list_blocks(&self, path: &str) -> Option<Vec<BlockInfo>>;
    /// Read one block's data.
    fn read_block(&self, path: &str, index: usize) -> Option<Bytes>;
    /// Create (or replace) a file from blocks; returns total bytes written.
    fn write_file(&self, path: &str, blocks: Vec<(Bytes, u64)>) -> u64;
    /// Delete a file if present.
    fn delete(&self, path: &str);
    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool;
}

/// Lifecycle scope of a shared-registry object (paper §4.2, "Shared Object
/// Registry"): objects are evicted when their scope completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectScope {
    /// Evicted when the owning vertex completes.
    Vertex,
    /// Evicted when the DAG completes.
    Dag,
    /// Evicted when the session ends.
    Session,
}

/// Per-container in-memory cache shared by successive tasks running in the
/// same container — e.g. Hive caches the broadcast-join hash table so later
/// join tasks in the container skip rebuilding it.
pub trait ObjectRegistry: Send + Sync {
    /// Look up a cached object.
    fn get(&self, key: &str) -> Option<Arc<dyn Any + Send + Sync>>;
    /// Cache an object under the given lifecycle scope.
    fn put(&self, scope: ObjectScope, key: &str, value: Arc<dyn Any + Send + Sync>);
}

/// Authentication token handed to tasks; the shuffle service validates it
/// on every fetch (modelling YARN's token-based security, paper §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SecurityToken(pub u64);

impl SecurityToken {
    /// A deliberately-invalid token (for tests).
    pub const INVALID: SecurityToken = SecurityToken(0);
}

/// Everything a task may touch while it runs. Lifetimes borrow from the
/// executor that assembles the environment.
pub struct TaskEnv<'a> {
    /// Shuffle fetch service.
    pub fetcher: &'a dyn DataFetcher,
    /// Distributed filesystem.
    pub dfs: &'a dyn Dfs,
    /// Per-container shared object registry.
    pub registry: &'a dyn ObjectRegistry,
    /// This task's security token.
    pub token: SecurityToken,
}

impl<'a> TaskEnv<'a> {
    /// Fetch a shard with this task's token.
    pub fn fetch(&self, locator: &ShardLocator) -> Result<FetchedShard, FetchError> {
        self.fetcher.fetch(locator, self.token)
    }
}

/// A no-op registry for contexts where sharing is disabled.
pub struct NullObjectRegistry;

impl ObjectRegistry for NullObjectRegistry {
    fn get(&self, _key: &str) -> Option<Arc<dyn Any + Send + Sync>> {
        None
    }
    fn put(&self, _scope: ObjectScope, _key: &str, _value: Arc<dyn Any + Send + Sync>) {}
}

/// In-memory [`Dfs`] for unit tests of inputs/outputs. The production-grade
/// simulated HDFS (replication, locality, failure) lives in `tez-yarn`.
#[derive(Default)]
pub struct MemDfs {
    files: std::sync::Mutex<std::collections::HashMap<String, Vec<(Bytes, u64)>>>,
}

impl MemDfs {
    /// Empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Dfs for MemDfs {
    fn list_blocks(&self, path: &str) -> Option<Vec<BlockInfo>> {
        self.files.lock().unwrap().get(path).map(|blocks| {
            blocks
                .iter()
                .enumerate()
                .map(|(i, (data, records))| BlockInfo {
                    index: i,
                    bytes: data.len() as u64,
                    records: *records,
                    hosts: Vec::new(),
                })
                .collect()
        })
    }

    fn read_block(&self, path: &str, index: usize) -> Option<Bytes> {
        self.files
            .lock()
            .unwrap()
            .get(path)?
            .get(index)
            .map(|(d, _)| d.clone())
    }

    fn write_file(&self, path: &str, blocks: Vec<(Bytes, u64)>) -> u64 {
        let bytes = blocks.iter().map(|(d, _)| d.len() as u64).sum();
        self.files.lock().unwrap().insert(path.to_string(), blocks);
        bytes
    }

    fn delete(&self, path: &str) {
        self.files.lock().unwrap().remove(path);
    }

    fn exists(&self, path: &str) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fetch of output {} partition {} on node {} failed: {}",
            self.locator.output_id, self.locator.partition, self.locator.node, self.reason
        )
    }
}

impl From<FetchError> for TaskError {
    fn from(e: FetchError) -> Self {
        TaskError::Failed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_dfs_roundtrip() {
        let dfs = MemDfs::new();
        assert!(!dfs.exists("/t"));
        let written = dfs.write_file(
            "/t",
            vec![
                (Bytes::from_static(b"abc"), 1),
                (Bytes::from_static(b"de"), 1),
            ],
        );
        assert_eq!(written, 5);
        assert!(dfs.exists("/t"));
        let blocks = dfs.list_blocks("/t").unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].bytes, 3);
        assert_eq!(&dfs.read_block("/t", 1).unwrap()[..], b"de");
        dfs.delete("/t");
        assert!(dfs.list_blocks("/t").is_none());
    }

    #[test]
    fn null_registry_never_stores() {
        let r = NullObjectRegistry;
        r.put(ObjectScope::Dag, "k", Arc::new(5u32));
        assert!(r.get("k").is_none());
    }
}
