//! The VertexManager API (paper §3.4): dynamically adapting the execution.
//!
//! "When constructing the DAG, each vertex can be associated with a
//! VertexManager … responsible for vertex re-configuration during DAG
//! execution." The manager observes state transitions through callbacks
//! and acts through its context: changing parallelism, edge routing, and
//! task scheduling.

use std::sync::Arc;
use tez_dag::EdgeManagerPlugin;

/// Identifies a completed source task (producer side of an incoming edge).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceTaskAttempt {
    /// Producer vertex name.
    pub vertex: String,
    /// Producer task index.
    pub task: usize,
}

/// Connection pattern of an incoming edge, as seen by a vertex manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Scatter-gather (shuffle) source — slow-start applies.
    ScatterGather,
    /// Broadcast source — must complete before consumers can finish their
    /// fetch phase.
    Broadcast,
    /// One-to-one source.
    OneToOne,
    /// Custom-routed source.
    Custom,
}

/// The window through which a vertex manager observes and mutates its
/// vertex. Implemented by the orchestrator.
pub trait VertexManagerContext {
    /// Name of the managed vertex.
    fn vertex_name(&self) -> &str;

    /// Resolved parallelism of the managed vertex, if decided.
    fn parallelism(&self) -> Option<usize>;

    /// Names of source (producer) vertices, in edge order.
    fn source_vertices(&self) -> Vec<String>;

    /// Resolved parallelism of a source vertex, if decided.
    fn source_parallelism(&self, vertex: &str) -> Option<usize>;

    /// Number of completed tasks of a source vertex.
    fn completed_source_tasks(&self, vertex: &str) -> usize;

    /// Connection pattern of the edge from a source vertex.
    fn source_edge_kind(&self, vertex: &str) -> Option<SourceKind>;

    /// Number of splits produced by the named root input initializer, if
    /// this vertex has one and it has finished.
    fn root_input_splits(&self, source: &str) -> Option<usize>;

    /// Re-configure the vertex: set its parallelism, optionally replacing
    /// the routing of incoming edges (keyed by source vertex name). Only
    /// legal before any task of the vertex has been scheduled.
    fn reconfigure(
        &mut self,
        parallelism: usize,
        routing: Vec<(String, Arc<dyn EdgeManagerPlugin>)>,
    );

    /// Schedule the given task indices for execution.
    fn schedule_tasks(&mut self, tasks: Vec<usize>);

    /// Number of tasks already scheduled.
    fn scheduled_tasks(&self) -> usize;

    /// Total concurrently-runnable task slots in the cluster (for sizing
    /// slow-start waves).
    fn total_slots(&self) -> usize;
}

/// The VertexManager callback API.
///
/// Callbacks are invoked by the orchestrator's vertex state machine; the
/// manager reacts by calling methods on the context. All callbacks default
/// to no-ops so managers implement only what they need.
pub trait VertexManager: Send {
    /// The vertex is being initialized; decide parallelism if possible
    /// (e.g. fixed parallelism, or copied from a one-to-one source).
    fn initialize(&mut self, ctx: &mut dyn VertexManagerContext);

    /// All root-input initializers of the vertex finished; `source` names
    /// the input, `num_splits` its split count.
    fn on_root_input_initialized(
        &mut self,
        source: &str,
        num_splits: usize,
        ctx: &mut dyn VertexManagerContext,
    ) {
        let _ = (source, num_splits, ctx);
    }

    /// The vertex has started (parallelism resolved, tasks can be
    /// scheduled).
    fn on_vertex_started(&mut self, ctx: &mut dyn VertexManagerContext) {
        let _ = ctx;
    }

    /// A source task completed successfully.
    fn on_source_task_completed(
        &mut self,
        src: &SourceTaskAttempt,
        ctx: &mut dyn VertexManagerContext,
    ) {
        let _ = (src, ctx);
    }

    /// An application event was routed to this manager (opaque payload),
    /// e.g. producer output-size statistics.
    fn on_event(
        &mut self,
        src: &SourceTaskAttempt,
        payload: &[u8],
        ctx: &mut dyn VertexManagerContext,
    ) {
        let _ = (src, payload, ctx);
    }
}
