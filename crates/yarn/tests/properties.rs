//! Property-based tests of the resource manager's safety invariants:
//! allocations never exceed node capacity, and releases restore it
//! exactly.

use proptest::prelude::*;
use tez_yarn::{AppId, ContainerRequest, NodeId, QueueSpec, Resource, Rm, RmConfig, SimTime};

#[derive(Clone, Debug)]
enum Op {
    Request {
        mem: u64,
        cores: u32,
        node_pref: Option<u8>,
    },
    Schedule,
    ReleaseNewest,
    FailNode(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (512u64..4096, 1u32..4, proptest::option::of(any::<u8>())).prop_map(
            |(mem, cores, node_pref)| Op::Request {
                mem,
                cores,
                node_pref
            }
        ),
        Just(Op::Schedule),
        Just(Op::ReleaseNewest),
        (any::<u8>()).prop_map(Op::FailNode),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary request/schedule/release/failure interleavings, the
    /// total allocation per node never exceeds its capacity, and every
    /// allocation satisfies its request's resource ask.
    #[test]
    fn rm_never_oversubscribes(ops in proptest::collection::vec(op(), 1..80)) {
        const NODES: usize = 4;
        const MEM: u64 = 8192;
        const CORES: u32 = 8;
        let node_resources: Vec<(Resource, u32)> =
            (0..NODES).map(|i| (Resource::new(MEM, CORES), (i / 2) as u32)).collect();
        let mut rm = Rm::new(node_resources, vec![QueueSpec::new("q", 1.0)], RmConfig::default());
        rm.register_app(AppId(0), "q");

        let mut live: Vec<(tez_yarn::ContainerId, NodeId, Resource)> = Vec::new();
        let mut dead_nodes = std::collections::HashSet::new();
        let mut t = 0u64;
        for op in ops {
            t += 500;
            match op {
                Op::Request { mem, cores, node_pref } => {
                    let nodes = node_pref
                        .map(|n| vec![NodeId((n as usize % NODES) as u32)])
                        .unwrap_or_default();
                    rm.add_request(
                        AppId(0),
                        ContainerRequest {
                            priority: 0,
                            resource: Resource::new(mem, cores),
                            nodes,
                            racks: vec![],
                            relax_locality: true,
                        },
                        SimTime(t),
                    );
                }
                Op::Schedule => {
                    let (allocs, _, _) = rm.schedule(SimTime(t + 10_000));
                    for a in allocs {
                        prop_assert!(!dead_nodes.contains(&a.container.node.0),
                            "allocated on a dead node");
                        live.push((a.container.id, a.container.node, a.container.resource));
                    }
                }
                Op::ReleaseNewest => {
                    if let Some((id, _, _)) = live.pop() {
                        prop_assert!(rm.release_container(id).is_some());
                    }
                }
                Op::FailNode(n) => {
                    let node = NodeId((n as usize % NODES) as u32);
                    dead_nodes.insert(node.0);
                    let lost = rm.node_lost(node);
                    for (id, _) in &lost {
                        live.retain(|(l, _, _)| l != id);
                    }
                }
            }
            // Safety invariant: per-node usage within capacity.
            for node in 0..NODES as u32 {
                let mem: u64 = live.iter().filter(|(_, n, _)| n.0 == node).map(|(_, _, r)| r.memory_mb).sum();
                let cores: u32 = live.iter().filter(|(_, n, _)| n.0 == node).map(|(_, _, r)| r.vcores).sum();
                prop_assert!(mem <= MEM, "node {node} memory oversubscribed: {mem}");
                prop_assert!(cores <= CORES, "node {node} cores oversubscribed: {cores}");
            }
        }
        // Finishing the app releases every container and clears pending
        // requests, restoring full capacity for a fresh tenant.
        rm.finish_app(AppId(0));
        live.clear();
        let alive = NODES - dead_nodes.len();
        if alive > 0 {
            rm.register_app(AppId(1), "q");
            for _ in 0..alive * CORES as usize {
                rm.add_request(
                    AppId(1),
                    ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                    SimTime(t + 20_000),
                );
            }
            let (allocs, _, _) = rm.schedule(SimTime(t + 20_000));
            prop_assert_eq!(allocs.len(), alive * CORES as usize);
        }
    }
}
