//! The discrete-event simulation driver.
//!
//! Single-threaded, fully deterministic: an event heap ordered by
//! `(time, sequence)` drives RM scheduling passes, app callbacks, work
//! completions and scripted node failures.

use crate::app::{AppContext, AppEvent, AppStatus, ContainerExit, WorkOutcome, YarnApp};
use crate::cost::{CostModel, WorkCost};
use crate::fault::FaultPlan;
use crate::hdfs::SimHdfs;
use crate::rm::{ContainerRequest, QueueSpec, Rm, RmConfig};
use crate::trace::Trace;
use crate::types::{AppId, ClusterSpec, ContainerId, NodeId, RequestId, Resource, SimTime, WorkId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tez_runtime::timeline::{EventKind as TlEvent, Timeline, GLOBAL_APP};

#[derive(Debug)]
enum EventKind {
    AppStart(AppId),
    Deliver(AppId, AppEvent),
    WorkDone(WorkId),
    SchedulePass,
    NodeFailure(NodeId),
}

#[derive(Debug)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[derive(Debug)]
struct WorkState {
    app: AppId,
    container: ContainerId,
    node: NodeId,
    label: String,
    start: SimTime,
    end: SimTime,
    planned: WorkOutcome,
    done: bool,
}

/// Simulation internals shared with [`AppContext`]. Everything except the
/// apps themselves, so an app callback can mutate the world while the
/// driver holds the app.
pub(crate) struct SimInner {
    pub(crate) cluster: ClusterSpec,
    pub(crate) cost: CostModel,
    pub(crate) rm: Rm,
    pub(crate) hdfs: std::sync::Arc<SimHdfs>,
    pub(crate) timeline: Timeline,
    fault: FaultPlan,
    rng: StdRng,
    node_speed: Vec<f64>,
    events: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    works: HashMap<WorkId, WorkState>,
    next_work: u64,
    finished: HashMap<AppId, (SimTime, AppStatus)>,
}

impl SimInner {
    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(QueuedEvent { time, seq, kind }));
    }

    pub(crate) fn record(&mut self, now: SimTime, app: AppId, kind: TlEvent) {
        self.timeline.record(now.millis(), app.0 as u64, kind);
    }

    fn schedule_pass(&mut self, at: SimTime) {
        self.push(at, EventKind::SchedulePass);
    }

    pub(crate) fn request_container(
        &mut self,
        app: AppId,
        req: ContainerRequest,
        now: SimTime,
    ) -> RequestId {
        let priority = req.priority as u64;
        let id = self.rm.add_request(app, req, now);
        self.record(
            now,
            app,
            TlEvent::ContainerRequested {
                request: id.0,
                priority,
            },
        );
        self.schedule_pass(now);
        id
    }

    pub(crate) fn release_container(&mut self, id: ContainerId, now: SimTime) {
        if let Some(info) = self.rm.release_container(id) {
            self.record(
                now,
                info.app,
                TlEvent::ContainerReleased {
                    container: id.0,
                    vcores: info.resource.vcores as u64,
                },
            );
            self.schedule_pass(now);
        }
    }

    pub(crate) fn start_work(
        &mut self,
        app: AppId,
        container: ContainerId,
        label: String,
        cost: WorkCost,
        now: SimTime,
    ) -> WorkId {
        let info = self
            .rm
            .container(container)
            .unwrap_or_else(|| panic!("start_work on unknown container {container:?}"));
        assert_eq!(info.app, app, "work launched in another app's container");
        let node = info.node;
        let works_run = info.works_run;
        let launch = if works_run == 0 {
            self.cost.container_launch_ms
        } else {
            0
        };
        // Warm-up, node speed and straggler factors model *compute* variance;
        // `setup_ms` is a deterministic sleep (e.g. shuffle-fetch backoff) and
        // must pass through unscaled or backoff time leaks into compute.
        let mut ms = (self.cost.base_work_ms(&cost) - cost.setup_ms) as f64;
        ms *= self.cost.warmup_factor(works_run);
        ms *= self.node_speed[node.0 as usize];
        if self.cost.straggler_prob > 0.0 && self.rng.random::<f64>() < self.cost.straggler_prob {
            ms *= self.cost.straggler_factor;
        }
        let ms = ms + cost.setup_ms as f64;
        let planned = if self.fault.task_fail_prob > 0.0
            && self.rng.random::<f64>() < self.fault.task_fail_prob
        {
            WorkOutcome::InjectedFailure
        } else {
            WorkOutcome::Succeeded
        };
        let duration = launch + (ms.max(1.0) as u64);
        let end = now.plus(duration);
        let id = WorkId(self.next_work);
        self.next_work += 1;
        self.rm.container_ran_work(container);
        self.record(
            now,
            app,
            TlEvent::WorkStarted {
                work: id.0,
                container: container.0,
                node: node.0 as u64,
                label: label.clone(),
                launch_ms: launch,
            },
        );
        self.works.insert(
            id,
            WorkState {
                app,
                container,
                node,
                label,
                start: now,
                end,
                planned,
                done: false,
            },
        );
        self.push(end, EventKind::WorkDone(id));
        id
    }

    pub(crate) fn work_progress(&self, work: WorkId, now: SimTime) -> f64 {
        match self.works.get(&work) {
            Some(w) if !w.done => {
                let total = w.end.since(w.start).max(1);
                (now.since(w.start) as f64 / total as f64).clamp(0.0, 1.0)
            }
            Some(_) => 1.0,
            None => 0.0,
        }
    }

    fn complete_work(&mut self, id: WorkId, outcome: WorkOutcome, now: SimTime) {
        let Some(w) = self.works.get_mut(&id) else {
            return;
        };
        if w.done {
            return;
        }
        w.done = true;
        let (app, container) = (w.app, w.container);
        let (node, label, start) = (w.node, w.label.clone(), w.start);
        let status = match outcome {
            WorkOutcome::Succeeded => "succeeded",
            WorkOutcome::Killed => "killed",
            WorkOutcome::InjectedFailure => "failed",
            WorkOutcome::ContainerLost => "lost",
        };
        self.record(
            now,
            app,
            TlEvent::WorkFinished {
                work: id.0,
                container: container.0,
                node: node.0 as u64,
                label,
                start_ms: start.millis(),
                status: status.into(),
            },
        );
        self.push(
            now,
            EventKind::Deliver(
                app,
                AppEvent::WorkCompleted {
                    work: id,
                    container,
                    outcome,
                },
            ),
        );
    }

    pub(crate) fn kill_work(&mut self, id: WorkId, now: SimTime) {
        self.complete_work(id, WorkOutcome::Killed, now);
    }

    /// Queue an [`AppEvent::PayloadReady`] at the current time. Pushed
    /// events land *after* every already-queued same-time event, so all
    /// payloads submitted within one scheduling pass are in flight on the
    /// worker pool before the first join runs — that synchronous window is
    /// where wall-clock parallelism comes from.
    pub(crate) fn notify_payload_ready(&mut self, app: AppId, ticket: u64, now: SimTime) {
        self.push(
            now,
            EventKind::Deliver(app, AppEvent::PayloadReady { ticket }),
        );
    }

    pub(crate) fn set_timer(&mut self, app: AppId, delay_ms: u64, tag: u64, now: SimTime) {
        self.push(
            now.plus(delay_ms),
            EventKind::Deliver(app, AppEvent::Timer { tag }),
        );
    }

    pub(crate) fn finish_app(&mut self, app: AppId, status: AppStatus, now: SimTime) {
        if self.finished.contains_key(&app) {
            return;
        }
        // Cancel this app's running works before reclaiming containers.
        let running: Vec<WorkId> = self
            .works
            .iter()
            .filter(|(_, w)| w.app == app && !w.done)
            .map(|(&id, _)| id)
            .collect();
        for id in running {
            if let Some(w) = self.works.get_mut(&id) {
                w.done = true;
            }
        }
        // Containers are reclaimed in bulk; the app's terminal event zeroes
        // its allocation series when the trace is derived from the timeline.
        let _released = self.rm.finish_app(app);
        let status_str = match &status {
            AppStatus::Succeeded => "succeeded".to_string(),
            AppStatus::Failed(reason) => format!("failed: {reason}"),
        };
        self.record(now, app, TlEvent::AppFinished { status: status_str });
        self.finished.insert(app, (now, status));
        self.schedule_pass(now);
    }

    fn container_vanished(
        &mut self,
        id: ContainerId,
        app: AppId,
        exit: ContainerExit,
        now: SimTime,
    ) {
        // Kill any running work on it first.
        let running: Vec<WorkId> = self
            .works
            .iter()
            .filter(|(_, w)| w.container == id && !w.done)
            .map(|(&wid, _)| wid)
            .collect();
        for wid in running {
            self.complete_work(wid, WorkOutcome::ContainerLost, now);
        }
        self.push(
            now,
            EventKind::Deliver(
                app,
                AppEvent::ContainerCompleted {
                    container: id,
                    exit,
                },
            ),
        );
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Per-app completion `(finish time, status)`, in app-id order.
    pub apps: Vec<(AppId, SimTime, AppStatus)>,
}

impl SimResult {
    /// Finish time of one app, if it completed.
    pub fn app_finish(&self, app: AppId) -> Option<SimTime> {
        self.apps
            .iter()
            .find(|(a, _, _)| *a == app)
            .map(|(_, t, _)| *t)
    }

    /// Whether every app succeeded.
    pub fn all_succeeded(&self) -> bool {
        self.apps.iter().all(|(_, _, s)| *s == AppStatus::Succeeded)
    }
}

/// The simulation: a cluster, an RM, HDFS, a fault plan, and a set of apps.
pub struct Simulation {
    inner: SimInner,
    apps: Vec<Option<Box<dyn YarnApp>>>,
}

impl Simulation {
    /// Build a simulation.
    pub fn new(
        cluster: ClusterSpec,
        cost: CostModel,
        queues: Vec<QueueSpec>,
        rm_config: RmConfig,
        fault: FaultPlan,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let node_speed: Vec<f64> = (0..cluster.nodes)
            .map(|_| 1.0 + rng.random::<f64>() * cluster.speed_spread)
            .collect();
        let node_resources: Vec<(Resource, u32)> = (0..cluster.nodes)
            .map(|i| {
                (
                    Resource::new(cluster.node_memory_mb, cluster.node_vcores),
                    cluster.rack_of(NodeId(i as u32)),
                )
            })
            .collect();
        let rm = Rm::new(node_resources, queues, rm_config);
        let hdfs = std::sync::Arc::new(SimHdfs::new(cluster.nodes, seed));
        let mut inner = SimInner {
            cluster,
            cost,
            rm,
            hdfs,
            timeline: Timeline::new(),
            fault: fault.clone(),
            rng,
            node_speed,
            events: BinaryHeap::new(),
            seq: 0,
            works: HashMap::new(),
            next_work: 1,
            finished: HashMap::new(),
        };
        for &(time, node) in &fault.node_failures {
            inner.push(time, EventKind::NodeFailure(NodeId(node as u32)));
        }
        Simulation {
            inner,
            apps: Vec::new(),
        }
    }

    /// The filesystem (populate datasets before running, inspect outputs
    /// after; all methods take `&self`).
    pub fn hdfs(&self) -> &SimHdfs {
        &self.inner.hdfs
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Submit an app to a queue at a time; the AM starts after
    /// `am_launch_ms`.
    pub fn add_app(&mut self, app: Box<dyn YarnApp>, queue: &str, submit_at: SimTime) -> AppId {
        let id = AppId(self.apps.len() as u32);
        self.apps.push(Some(app));
        self.inner.rm.register_app(id, queue);
        let start = submit_at.plus(self.inner.cost.am_launch_ms);
        self.inner.push(start, EventKind::AppStart(id));
        id
    }

    fn deliver(&mut self, app: AppId, event: AppEvent, now: SimTime) {
        if self.inner.finished.contains_key(&app) {
            return;
        }
        let Some(slot) = self.apps.get_mut(app.0 as usize) else {
            return;
        };
        let Some(mut a) = slot.take() else {
            return; // re-entrant delivery cannot happen in a single thread
        };
        {
            let mut ctx = AppContext {
                app,
                now,
                inner: &mut self.inner,
            };
            a.on_event(event, &mut ctx);
        }
        self.apps[app.0 as usize] = Some(a);
    }

    /// Run until the event queue drains. Returns per-app results.
    pub fn run(&mut self) -> SimResult {
        let mut now = SimTime::ZERO;
        let mut guard: u64 = 0;
        while let Some(Reverse(ev)) = self.inner.events.pop() {
            guard += 1;
            assert!(
                guard < 200_000_000,
                "simulation exceeded event budget; livelock at {now:?}"
            );
            now = ev.time;
            match ev.kind {
                EventKind::AppStart(app) => self.deliver(app, AppEvent::Start, now),
                EventKind::Deliver(app, event) => self.deliver(app, event, now),
                EventKind::WorkDone(id) => {
                    let outcome = match self.inner.works.get(&id) {
                        Some(w) if !w.done => w.planned,
                        _ => continue,
                    };
                    self.inner.complete_work(id, outcome, now);
                }
                EventKind::SchedulePass => {
                    let (allocs, preemptions, next) = self.inner.rm.schedule(now);
                    for al in allocs {
                        self.inner.record(
                            now,
                            al.app,
                            TlEvent::ContainerAllocated {
                                container: al.container.id.0,
                                node: al.container.node.0 as u64,
                                vcores: al.container.resource.vcores as u64,
                                locality: al.locality,
                                waited_ms: al.waited_ms,
                                relaxed: al.relaxed,
                            },
                        );
                        self.deliver(al.app, AppEvent::ContainerAllocated(al.container), now);
                    }
                    for p in preemptions {
                        if let Some(info) = self.inner.rm.release_container(p.container) {
                            self.inner.record(
                                now,
                                info.app,
                                TlEvent::ContainerPreempted {
                                    container: p.container.0,
                                    vcores: info.resource.vcores as u64,
                                },
                            );
                            self.inner.container_vanished(
                                p.container,
                                p.app,
                                ContainerExit::Preempted,
                                now,
                            );
                        }
                    }
                    if let Some(t) = next {
                        self.inner.schedule_pass(t);
                    }
                }
                EventKind::NodeFailure(node) => {
                    let lost = self.inner.rm.node_lost(node);
                    self.inner.hdfs.node_lost(node);
                    self.inner.timeline.record(
                        now.millis(),
                        GLOBAL_APP,
                        TlEvent::NodeFailed {
                            node: node.0 as u64,
                        },
                    );
                    for (cid, info) in lost {
                        self.inner.record(
                            now,
                            info.app,
                            TlEvent::ContainerLost {
                                container: cid.0,
                                node: node.0 as u64,
                                vcores: info.resource.vcores as u64,
                            },
                        );
                        self.inner
                            .container_vanished(cid, info.app, ContainerExit::NodeLost, now);
                    }
                    let all: Vec<AppId> = (0..self.apps.len() as u32).map(AppId).collect();
                    for app in all {
                        self.deliver(app, AppEvent::NodeLost { node }, now);
                    }
                    self.inner.schedule_pass(now);
                }
            }
        }
        let mut apps: Vec<(AppId, SimTime, AppStatus)> = self
            .inner
            .finished
            .iter()
            .map(|(&a, (t, s))| (a, *t, s.clone()))
            .collect();
        apps.sort_by_key(|(a, _, _)| *a);
        SimResult {
            end_time: now,
            apps,
        }
    }

    /// Container/work spans and allocation series, derived from the
    /// timeline (the timeline is the single source of truth; [`Trace`] is
    /// a view over it).
    pub fn trace(&self) -> Trace {
        Trace::from_timeline(&self.inner.timeline)
    }

    /// The structured event timeline recorded so far.
    pub fn timeline(&self) -> &Timeline {
        &self.inner.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal AM: asks for `tasks` containers, runs one work item in each,
    /// finishes when all works complete.
    struct TinyApp {
        tasks: usize,
        done: usize,
        cost: WorkCost,
        reuse: bool,
        launched: usize,
    }

    impl TinyApp {
        fn new(tasks: usize) -> Self {
            TinyApp {
                tasks,
                done: 0,
                cost: WorkCost {
                    cpu_records: 1_000,
                    cpu_bytes: 1_000_000,
                    ..Default::default()
                },
                reuse: false,
                launched: 0,
            }
        }
    }

    impl YarnApp for TinyApp {
        fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>) {
            match event {
                AppEvent::Start => {
                    let n = if self.reuse { 1 } else { self.tasks };
                    for _ in 0..n {
                        ctx.request_container(ContainerRequest::anywhere(0, Resource::default()));
                    }
                }
                AppEvent::ContainerAllocated(c) => {
                    self.launched += 1;
                    ctx.start_work(c.id, format!("t{}", self.launched), self.cost);
                }
                AppEvent::WorkCompleted {
                    container, outcome, ..
                } => {
                    assert_eq!(outcome, WorkOutcome::Succeeded);
                    self.done += 1;
                    if self.done == self.tasks {
                        ctx.finish(AppStatus::Succeeded);
                    } else if self.reuse && self.launched < self.tasks {
                        self.launched += 1;
                        ctx.start_work(container, format!("t{}", self.launched), self.cost);
                    } else if !self.reuse {
                        ctx.release_container(container);
                    }
                }
                _ => {}
            }
        }
    }

    fn quiet_cost() -> CostModel {
        CostModel {
            straggler_prob: 0.0,
            ..CostModel::default()
        }
    }

    fn sim(nodes: usize) -> Simulation {
        Simulation::new(
            ClusterSpec::homogeneous(nodes, 8192, 8),
            quiet_cost(),
            vec![],
            RmConfig::default(),
            FaultPlan::none(),
            42,
        )
    }

    #[test]
    fn tiny_app_completes() {
        let mut s = sim(4);
        let id = s.add_app(Box::new(TinyApp::new(8)), "default", SimTime::ZERO);
        let res = s.run();
        assert!(res.all_succeeded());
        let finish = res.app_finish(id).unwrap();
        // AM launch (5s) + container launch (2.5s) + some work.
        assert!(finish.millis() > 7_500);
        assert_eq!(s.trace().spans.len(), 8);
    }

    #[test]
    fn container_reuse_is_faster_per_task_after_first() {
        // Same 8 tasks run serially in one container: only one container
        // launch is paid and warm-up decays.
        let mut no_reuse = sim(1);
        let a = no_reuse.add_app(Box::new(TinyApp::new(8)), "default", SimTime::ZERO);
        let t_no = no_reuse.run().app_finish(a).unwrap();

        let mut reuse = sim(1);
        let mut app = TinyApp::new(8);
        app.reuse = true;
        let b = reuse.add_app(Box::new(app), "default", SimTime::ZERO);
        let t_re = reuse.run().app_finish(b).unwrap();

        // One node with 8 slots: the no-reuse variant runs all 8 in
        // parallel but pays 8 cold launches; the reuse variant serializes.
        // Compare total span time per container instead: every span after
        // the first in the reuse run is shorter than the first.
        let spans = reuse.trace().spans.clone();
        assert!(spans.windows(2).all(|w| {
            let d0 = w[0].end.since(w[0].start);
            let d1 = w[1].end.since(w[1].start);
            d1 <= d0
        }));
        // And the first reuse span (cold) is strictly longer than the last
        // (warm).
        let first = spans.first().unwrap();
        let last = spans.last().unwrap();
        assert!(last.end.since(last.start) < first.end.since(first.start));
        let _ = (t_no, t_re);
    }

    #[test]
    fn straggler_injection_changes_durations() {
        let mut cost = quiet_cost();
        cost.straggler_prob = 1.0;
        cost.straggler_factor = 5.0;
        let mut slow = Simulation::new(
            ClusterSpec::homogeneous(1, 8192, 8),
            cost,
            vec![],
            RmConfig::default(),
            FaultPlan::none(),
            42,
        );
        let a = slow.add_app(Box::new(TinyApp::new(1)), "default", SimTime::ZERO);
        let t_slow = slow.run().app_finish(a).unwrap();

        let mut fast = sim(1);
        let b = fast.add_app(Box::new(TinyApp::new(1)), "default", SimTime::ZERO);
        let t_fast = fast.run().app_finish(b).unwrap();
        assert!(t_slow > t_fast);
    }

    #[test]
    fn injected_task_failures_are_delivered() {
        struct FailOnce {
            failures: usize,
            done: bool,
        }
        impl YarnApp for FailOnce {
            fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>) {
                match event {
                    AppEvent::Start => {
                        ctx.request_container(ContainerRequest::anywhere(0, Resource::default()));
                    }
                    AppEvent::ContainerAllocated(c) => {
                        ctx.start_work(c.id, "w".into(), WorkCost::default());
                    }
                    AppEvent::WorkCompleted {
                        container, outcome, ..
                    } => match outcome {
                        WorkOutcome::InjectedFailure => {
                            self.failures += 1;
                            ctx.start_work(container, "retry".into(), WorkCost::default());
                        }
                        WorkOutcome::Succeeded => {
                            self.done = true;
                            ctx.finish(AppStatus::Succeeded);
                        }
                        o => panic!("unexpected outcome {o:?}"),
                    },
                    _ => {}
                }
            }
        }
        let mut s = Simulation::new(
            ClusterSpec::homogeneous(1, 8192, 8),
            quiet_cost(),
            vec![],
            RmConfig::default(),
            FaultPlan::none().with_task_fail_prob(0.5),
            7,
        );
        s.add_app(
            Box::new(FailOnce {
                failures: 0,
                done: false,
            }),
            "default",
            SimTime::ZERO,
        );
        let res = s.run();
        assert!(res.all_succeeded());
    }

    #[test]
    fn node_failure_kills_containers_and_notifies() {
        struct NodeWatcher {
            lost_container: bool,
            lost_node: bool,
            work_lost: bool,
        }
        impl YarnApp for NodeWatcher {
            fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>) {
                match event {
                    AppEvent::Start => {
                        ctx.request_container(ContainerRequest::anywhere(0, Resource::default()));
                    }
                    AppEvent::ContainerAllocated(c) => {
                        // Long-running work that the node failure interrupts.
                        ctx.start_work(
                            c.id,
                            "long".into(),
                            WorkCost {
                                cpu_records: 100_000_000,
                                ..Default::default()
                            },
                        );
                    }
                    AppEvent::WorkCompleted { outcome, .. } => {
                        assert_eq!(outcome, WorkOutcome::ContainerLost);
                        self.work_lost = true;
                    }
                    AppEvent::ContainerCompleted { exit, .. } => {
                        assert_eq!(exit, ContainerExit::NodeLost);
                        self.lost_container = true;
                    }
                    AppEvent::NodeLost { .. } => {
                        self.lost_node = true;
                        if self.lost_container && self.work_lost {
                            ctx.finish(AppStatus::Succeeded);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut s = Simulation::new(
            ClusterSpec::homogeneous(1, 8192, 8),
            quiet_cost(),
            vec![],
            RmConfig::default(),
            FaultPlan::none().with_node_failure(SimTime(20_000), 0),
            7,
        );
        s.add_app(
            Box::new(NodeWatcher {
                lost_container: false,
                lost_node: false,
                work_lost: false,
            }),
            "default",
            SimTime::ZERO,
        );
        let res = s.run();
        assert!(res.all_succeeded());
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl YarnApp for TimerApp {
            fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>) {
                match event {
                    AppEvent::Start => {
                        ctx.set_timer(500, 2);
                        ctx.set_timer(100, 1);
                        ctx.set_timer(900, 3);
                    }
                    AppEvent::Timer { tag } => {
                        self.fired.push(tag);
                        if self.fired.len() == 3 {
                            assert_eq!(self.fired, vec![1, 2, 3]);
                            ctx.finish(AppStatus::Succeeded);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut s = sim(1);
        s.add_app(
            Box::new(TimerApp { fired: vec![] }),
            "default",
            SimTime::ZERO,
        );
        assert!(s.run().all_succeeded());
    }

    #[test]
    fn determinism_same_seed_identical_traces() {
        let run = || {
            let mut s = sim(4);
            s.add_app(Box::new(TinyApp::new(16)), "default", SimTime::ZERO);
            let r = s.run();
            (r.end_time, s.trace().spans.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn allocation_trace_sums_to_zero_after_finish() {
        let mut s = sim(2);
        let a = s.add_app(Box::new(TinyApp::new(4)), "default", SimTime::ZERO);
        s.run();
        let series = s.trace().allocation_series(a);
        assert_eq!(series.last().map(|&(_, v)| v), Some(0));
    }
}
