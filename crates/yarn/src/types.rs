//! Identifiers, simulated time, resources and cluster topology.

use std::fmt;

/// Simulated time in milliseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// This time plus `ms` milliseconds (saturating).
    pub fn plus(self, ms: u64) -> SimTime {
        SimTime(self.0.saturating_add(ms))
    }

    /// Milliseconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Value in milliseconds.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// Value in (fractional) seconds.
    pub fn seconds(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1000.0)
    }
}

/// A cluster node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// An application (one AM) registered with the RM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

/// A container allocated by the RM to an app.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

/// A unit of work launched by an app inside a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkId(pub u64);

/// An outstanding container request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Container resource, YARN style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Resource {
    /// Memory in megabytes.
    pub memory_mb: u64,
    /// Virtual cores.
    pub vcores: u32,
}

impl Resource {
    /// Convenience constructor.
    pub fn new(memory_mb: u64, vcores: u32) -> Self {
        Resource { memory_mb, vcores }
    }

    /// Whether `self` fits inside `avail`.
    pub fn fits_in(&self, avail: &Resource) -> bool {
        self.memory_mb <= avail.memory_mb && self.vcores <= avail.vcores
    }
}

impl Default for Resource {
    fn default() -> Self {
        Resource {
            memory_mb: 1024,
            vcores: 1,
        }
    }
}

/// An allocated container as seen by the app.
#[derive(Clone, Copy, Debug)]
pub struct Container {
    /// Container id.
    pub id: ContainerId,
    /// Node hosting the container.
    pub node: NodeId,
    /// Allocated resource.
    pub resource: Resource,
    /// The request this allocation satisfied.
    pub request: RequestId,
}

/// Cluster shape and node heterogeneity.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Nodes per rack (last rack may be partial).
    pub nodes_per_rack: usize,
    /// Memory per node, MB.
    pub node_memory_mb: u64,
    /// Virtual cores per node.
    pub node_vcores: u32,
    /// Relative speed spread: node speed factors are sampled uniformly from
    /// `[1.0, 1.0 + speed_spread]` (1.0 = fastest; the factor multiplies
    /// work durations). 0.0 models a homogeneous cluster.
    pub speed_spread: f64,
}

impl ClusterSpec {
    /// A homogeneous cluster of `nodes` nodes with the given per-node
    /// capacity.
    pub fn homogeneous(nodes: usize, node_memory_mb: u64, node_vcores: u32) -> Self {
        ClusterSpec {
            nodes,
            nodes_per_rack: 20,
            node_memory_mb,
            node_vcores,
            speed_spread: 0.0,
        }
    }

    /// Set the rack width.
    pub fn with_nodes_per_rack(mut self, n: usize) -> Self {
        self.nodes_per_rack = n.max(1);
        self
    }

    /// Set heterogeneity.
    pub fn with_speed_spread(mut self, spread: f64) -> Self {
        self.speed_spread = spread.max(0.0);
        self
    }

    /// Rack index of a node.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        node.0 / self.nodes_per_rack as u32
    }

    /// Canonical host name of a node (used by HDFS locations and locality
    /// hints).
    pub fn host_name(node: NodeId) -> String {
        format!("node-{}", node.0)
    }

    /// Parse a canonical host name back to a node id.
    pub fn parse_host(host: &str) -> Option<NodeId> {
        host.strip_prefix("node-")?.parse().ok().map(NodeId)
    }

    /// Total concurrently-runnable containers of `r` across the cluster.
    pub fn total_slots(&self, r: &Resource) -> usize {
        let per_node = (self.node_memory_mb / r.memory_mb.max(1))
            .min((self.node_vcores / r.vcores.max(1)) as u64) as usize;
        per_node * self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime(1000).plus(500);
        assert_eq!(t, SimTime(1500));
        assert_eq!(t.since(SimTime(1000)), 500);
        assert_eq!(SimTime(100).since(SimTime(500)), 0);
        assert_eq!(t.seconds(), 1.5);
    }

    #[test]
    fn resource_fits() {
        let small = Resource::new(512, 1);
        let big = Resource::new(1024, 2);
        assert!(small.fits_in(&big));
        assert!(!big.fits_in(&small));
        assert!(big.fits_in(&big));
    }

    #[test]
    fn host_name_roundtrip() {
        assert_eq!(
            ClusterSpec::parse_host(&ClusterSpec::host_name(NodeId(17))),
            Some(NodeId(17))
        );
        assert_eq!(ClusterSpec::parse_host("bogus"), None);
    }

    #[test]
    fn rack_assignment() {
        let spec = ClusterSpec::homogeneous(50, 8192, 8).with_nodes_per_rack(20);
        assert_eq!(spec.rack_of(NodeId(0)), 0);
        assert_eq!(spec.rack_of(NodeId(19)), 0);
        assert_eq!(spec.rack_of(NodeId(20)), 1);
        assert_eq!(spec.rack_of(NodeId(49)), 2);
    }

    #[test]
    fn slots_math() {
        let spec = ClusterSpec::homogeneous(10, 8192, 8);
        // 8192/1024 = 8 by memory, 8/1 = 8 by cores.
        assert_eq!(spec.total_slots(&Resource::new(1024, 1)), 80);
        // Constrained by cores: 8/4 = 2 per node.
        assert_eq!(spec.total_slots(&Resource::new(1024, 4)), 20);
    }
}
