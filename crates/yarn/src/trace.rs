//! Execution traces: container/work spans and per-app allocation series.
//!
//! The spans reproduce the paper's Figure 7 (containers re-used by tasks
//! within and across DAGs in a session) and the allocation series
//! reproduce Figure 12 (cluster capacity over time per tenant).
//!
//! Since the structured event timeline became the single bookkeeping path,
//! a [`Trace`] is a *derived view*: [`Trace::from_timeline`] replays
//! container and work events into spans and allocation deltas in the exact
//! order they were emitted.

use crate::types::{AppId, ContainerId, NodeId, SimTime};
use tez_runtime::timeline::{EventKind, Timeline};

/// One executed work item.
#[derive(Clone, Debug)]
pub struct WorkSpan {
    /// Owning app.
    pub app: AppId,
    /// Container that ran the work.
    pub container: ContainerId,
    /// Node hosting the container.
    pub node: NodeId,
    /// App-supplied label (e.g. `dag1:map[3]`).
    pub label: String,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

/// A change in an app's allocated vcores at a point in time.
#[derive(Clone, Copy, Debug)]
pub struct AllocPoint {
    /// When the change happened.
    pub time: SimTime,
    /// Which app.
    pub app: AppId,
    /// Signed change in allocated vcores.
    pub delta_vcores: i64,
}

/// Everything recorded during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Work spans in completion order.
    pub spans: Vec<WorkSpan>,
    /// Allocation deltas in event order.
    pub allocations: Vec<AllocPoint>,
}

impl Trace {
    /// Replay a timeline into spans and allocation deltas. Work
    /// completions become [`WorkSpan`]s (whatever their outcome);
    /// container allocations, releases, preemptions and losses become
    /// signed [`AllocPoint`]s; an app's terminal event zeroes its running
    /// allocation, mirroring the RM reclaiming everything at finish.
    pub fn from_timeline(timeline: &Timeline) -> Trace {
        let mut trace = Trace::default();
        let mut running: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
        fn alloc(
            trace: &mut Trace,
            running: &mut std::collections::BTreeMap<u64, i64>,
            time: SimTime,
            app: u64,
            delta: i64,
        ) {
            *running.entry(app).or_insert(0) += delta;
            trace.allocations.push(AllocPoint {
                time,
                app: AppId(app as u32),
                delta_vcores: delta,
            });
        }
        for e in &timeline.events {
            let time = SimTime(e.ts_ms);
            match &e.kind {
                EventKind::ContainerAllocated { vcores, .. } => {
                    alloc(&mut trace, &mut running, time, e.app, *vcores as i64);
                }
                EventKind::ContainerReleased { vcores, .. }
                | EventKind::ContainerPreempted { vcores, .. }
                | EventKind::ContainerLost { vcores, .. } => {
                    alloc(&mut trace, &mut running, time, e.app, -(*vcores as i64));
                }
                EventKind::AppFinished { .. } => {
                    let delta = -running.get(&e.app).copied().unwrap_or(0);
                    alloc(&mut trace, &mut running, time, e.app, delta);
                }
                EventKind::WorkFinished {
                    container,
                    node,
                    label,
                    start_ms,
                    ..
                } => {
                    trace.spans.push(WorkSpan {
                        app: AppId(e.app as u32),
                        container: ContainerId(*container),
                        node: NodeId(*node as u32),
                        label: label.clone(),
                        start: SimTime(*start_ms),
                        end: time,
                    });
                }
                _ => {}
            }
        }
        trace
    }

    /// Step series of an app's allocated vcores over time:
    /// `(time, vcores)` points, one per change.
    pub fn allocation_series(&self, app: AppId) -> Vec<(SimTime, u64)> {
        let mut cur: i64 = 0;
        let mut out = Vec::new();
        for p in self.allocations.iter().filter(|p| p.app == app) {
            cur += p.delta_vcores;
            out.push((p.time, cur.max(0) as u64));
        }
        out
    }

    /// Sampled utilization of an app: average allocated vcores over
    /// `[start, end]`, integrating the step series.
    pub fn mean_allocation(&self, app: AppId, start: SimTime, end: SimTime) -> f64 {
        let series = self.allocation_series(app);
        if end.millis() <= start.millis() {
            return 0.0;
        }
        let mut area = 0u128;
        let mut prev_t = start;
        let mut prev_v = 0u64;
        for (t, v) in series {
            if t.millis() > start.millis() {
                let upto = t.min(end);
                area += (upto.since(prev_t) as u128) * prev_v as u128;
                prev_t = upto;
            }
            prev_v = v;
            if t.millis() >= end.millis() {
                break;
            }
        }
        area += (end.since(prev_t) as u128) * prev_v as u128;
        area as f64 / end.since(start) as f64
    }

    /// Spans grouped by container, each sorted by start time — the Fig. 7
    /// Gantt rows.
    pub fn container_rows(&self) -> Vec<(ContainerId, Vec<&WorkSpan>)> {
        let mut by_container: std::collections::BTreeMap<ContainerId, Vec<&WorkSpan>> =
            std::collections::BTreeMap::new();
        for s in &self.spans {
            by_container.entry(s.container).or_default().push(s);
        }
        let mut rows: Vec<_> = by_container.into_iter().collect();
        for (_, v) in rows.iter_mut() {
            v.sort_by_key(|s| s.start);
        }
        rows
    }

    /// ASCII Gantt chart of container rows (Fig. 7 style). `width` is the
    /// number of character cells across the full time range.
    pub fn render_gantt(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let rows = self.container_rows();
        let t_max = self
            .spans
            .iter()
            .map(|s| s.end.millis())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for (cid, spans) in rows {
            let mut line = vec![b'.'; width];
            for s in &spans {
                let a = (s.start.millis() as usize * (width - 1)) / t_max as usize;
                let b = (s.end.millis() as usize * (width - 1)) / t_max as usize;
                let c = s.label.bytes().next().unwrap_or(b'#');
                for cell in line.iter_mut().take(b.max(a) + 1).skip(a) {
                    *cell = c;
                }
            }
            let _ = writeln!(
                out,
                "container {:>4} | {}",
                cid.0,
                String::from_utf8_lossy(&line)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(app: u32, container: u64, label: &str, start: u64, end: u64) -> WorkSpan {
        WorkSpan {
            app: AppId(app),
            container: ContainerId(container),
            node: NodeId(0),
            label: label.to_string(),
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    #[test]
    fn allocation_series_accumulates() {
        let t = Trace {
            spans: vec![],
            allocations: vec![
                AllocPoint {
                    time: SimTime(0),
                    app: AppId(1),
                    delta_vcores: 2,
                },
                AllocPoint {
                    time: SimTime(10),
                    app: AppId(2),
                    delta_vcores: 5,
                },
                AllocPoint {
                    time: SimTime(20),
                    app: AppId(1),
                    delta_vcores: -1,
                },
            ],
        };
        assert_eq!(
            t.allocation_series(AppId(1)),
            vec![(SimTime(0), 2), (SimTime(20), 1)]
        );
    }

    #[test]
    fn mean_allocation_integrates_steps() {
        let t = Trace {
            spans: vec![],
            allocations: vec![
                AllocPoint {
                    time: SimTime(0),
                    app: AppId(1),
                    delta_vcores: 4,
                },
                AllocPoint {
                    time: SimTime(50),
                    app: AppId(1),
                    delta_vcores: -4,
                },
            ],
        };
        // 4 vcores for half the window.
        let mean = t.mean_allocation(AppId(1), SimTime(0), SimTime(100));
        assert!((mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn container_rows_group_and_sort() {
        let t = Trace {
            spans: vec![
                span(1, 2, "b", 50, 60),
                span(1, 1, "a", 0, 10),
                span(1, 2, "a", 0, 40),
            ],
            allocations: vec![],
        };
        let rows = t.container_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].0, ContainerId(2));
        assert_eq!(rows[1].1[0].label, "a");
    }

    #[test]
    fn gantt_renders_rows() {
        let t = Trace {
            spans: vec![span(1, 1, "x", 0, 100), span(1, 2, "y", 50, 100)],
            allocations: vec![],
        };
        let g = t.render_gantt(40);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains('x'));
        assert!(g.contains('y'));
    }
}
