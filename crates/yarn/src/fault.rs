//! Scripted and probabilistic fault injection.

use crate::types::SimTime;

/// Failure schedule for a simulation run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Nodes to fail at the given times (node index into the cluster).
    pub node_failures: Vec<(SimTime, usize)>,
    /// Probability that any given work item fails mid-run with a transient
    /// (retriable) error.
    pub task_fail_prob: f64,
    /// Number of shuffle fetches to fail with a transient error at run
    /// start (exercises the fetch retry/backoff and, when it exceeds the
    /// retry budget, the `InputReadError` re-execution path).
    pub transient_fetch_failures: u32,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail `node` at `time`.
    pub fn with_node_failure(mut self, time: SimTime, node: usize) -> Self {
        self.node_failures.push((time, node));
        self
    }

    /// Set the transient task failure probability.
    pub fn with_task_fail_prob(mut self, p: f64) -> Self {
        self.task_fail_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Fail the first `n` shuffle fetches with a transient error.
    pub fn with_transient_fetch_failures(mut self, n: u32) -> Self {
        self.transient_fetch_failures = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::none()
            .with_node_failure(SimTime(5000), 3)
            .with_node_failure(SimTime(9000), 1)
            .with_task_fail_prob(0.05);
        assert_eq!(p.node_failures.len(), 2);
        assert!((p.task_fail_prob - 0.05).abs() < 1e-12);
    }

    #[test]
    fn probability_is_clamped() {
        assert_eq!(
            FaultPlan::none().with_task_fail_prob(7.0).task_fail_prob,
            1.0
        );
        assert_eq!(
            FaultPlan::none().with_task_fail_prob(-1.0).task_fail_prob,
            0.0
        );
    }
}
