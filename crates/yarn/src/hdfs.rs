//! Simulated HDFS: replicated blocks with node locations.
//!
//! Files carry **real** block data (read by root inputs and written by
//! committers) while *declaring* possibly-scaled statistics (`stat_bytes`,
//! `records`) used by split calculation and the cost model. Replica
//! placement drives locality-aware scheduling; losing a node removes its
//! replicas but files stay readable while any replica survives.
//!
//! All methods take `&self` behind an interior mutex so a shared handle
//! can be read concurrently by task payloads on the worker pool. Writes
//! (datagen, committers) only ever happen on the control-plane thread, in
//! deterministic event order, so the shared placement RNG stays
//! reproducible.

use crate::types::{ClusterSpec, NodeId};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;
use tez_runtime::{BlockInfo, Dfs};

/// Replication factor, as in stock HDFS.
pub const REPLICATION: usize = 3;

#[derive(Clone, Debug)]
struct Block {
    data: Bytes,
    /// Declared (possibly scaled) size used for statistics and cost.
    stat_bytes: u64,
    records: u64,
    replicas: Vec<NodeId>,
}

#[derive(Clone, Debug, Default)]
struct File {
    blocks: Vec<Block>,
}

struct Inner {
    files: HashMap<String, File>,
    rng: StdRng,
    /// Total declared bytes written since start (for reports).
    bytes_written: u64,
    /// Multiplier applied to declared sizes on plain `write_file` calls, so
    /// intermediate files written by committers carry the same scaled
    /// statistics as the generated input data.
    stat_scale: f64,
}

/// The simulated namenode + datanodes.
pub struct SimHdfs {
    num_nodes: u32,
    inner: Mutex<Inner>,
}

impl SimHdfs {
    /// Empty filesystem over a cluster of `num_nodes` nodes.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        SimHdfs {
            num_nodes: num_nodes.max(1) as u32,
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                rng: StdRng::seed_from_u64(seed ^ 0x5df5),
                bytes_written: 0,
                stat_scale: 1.0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap()
    }

    /// Set the declared-size multiplier for subsequent `write_file` calls.
    pub fn set_stat_scale(&self, scale: f64) {
        self.lock().stat_scale = scale.max(0.0);
    }

    fn place_replicas(num_nodes: u32, rng: &mut StdRng) -> Vec<NodeId> {
        let n = num_nodes;
        let mut replicas = Vec::with_capacity(REPLICATION.min(n as usize));
        while replicas.len() < REPLICATION.min(n as usize) {
            let node = NodeId(rng.random_range(0..n));
            if !replicas.contains(&node) {
                replicas.push(node);
            }
        }
        replicas
    }

    /// Create a file whose declared statistics equal the real data sizes.
    pub fn put_file(&self, path: &str, blocks: Vec<(Bytes, u64)>) -> u64 {
        let scaled: Vec<(Bytes, u64, u64)> = blocks
            .into_iter()
            .map(|(d, r)| {
                let len = d.len() as u64;
                (d, len, r)
            })
            .collect();
        self.put_file_scaled(path, scaled)
    }

    /// Create a file with explicit declared sizes per block
    /// `(data, stat_bytes, records)` — datagen uses this to declare
    /// paper-scale sizes while storing small real data.
    pub fn put_file_scaled(&self, path: &str, blocks: Vec<(Bytes, u64, u64)>) -> u64 {
        let num_nodes = self.num_nodes;
        let mut g = self.lock();
        let mut total = 0;
        let blocks = blocks
            .into_iter()
            .map(|(data, stat_bytes, records)| {
                total += stat_bytes;
                let replicas = Self::place_replicas(num_nodes, &mut g.rng);
                Block {
                    data,
                    stat_bytes,
                    records,
                    replicas,
                }
            })
            .collect();
        g.files.insert(path.to_string(), File { blocks });
        g.bytes_written += total;
        total
    }

    /// Remove the replicas a failed node held. Blocks with no surviving
    /// replica become unreadable (read returns `None`).
    pub fn node_lost(&self, node: NodeId) {
        for file in self.lock().files.values_mut() {
            for block in &mut file.blocks {
                block.replicas.retain(|&r| r != node);
            }
        }
    }

    /// Declared bytes written since start.
    pub fn total_bytes_written(&self) -> u64 {
        self.lock().bytes_written
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.lock().files.len()
    }

    /// Nodes currently holding replicas of a block.
    pub fn block_replicas(&self, path: &str, index: usize) -> Option<Vec<NodeId>> {
        self.lock()
            .files
            .get(path)
            .and_then(|f| f.blocks.get(index))
            .map(|b| b.replicas.clone())
    }
}

impl Dfs for SimHdfs {
    fn list_blocks(&self, path: &str) -> Option<Vec<BlockInfo>> {
        self.lock().files.get(path).map(|f| {
            f.blocks
                .iter()
                .enumerate()
                .map(|(i, b)| BlockInfo {
                    index: i,
                    bytes: b.stat_bytes,
                    records: b.records,
                    hosts: b
                        .replicas
                        .iter()
                        .map(|&n| ClusterSpec::host_name(n))
                        .collect(),
                })
                .collect()
        })
    }

    fn read_block(&self, path: &str, index: usize) -> Option<Bytes> {
        let g = self.lock();
        let block = g.files.get(path)?.blocks.get(index)?;
        if block.replicas.is_empty() {
            return None; // all replicas lost
        }
        Some(block.data.clone())
    }

    fn write_file(&self, path: &str, blocks: Vec<(Bytes, u64)>) -> u64 {
        let scale = self.lock().stat_scale;
        let scaled: Vec<(Bytes, u64, u64)> = blocks
            .into_iter()
            .map(|(d, r)| {
                let declared = ((d.len() as f64) * scale).max(1.0) as u64;
                let records = ((r as f64) * scale).max(1.0) as u64;
                (d, declared, records)
            })
            .collect();
        self.put_file_scaled(path, scaled)
    }

    fn delete(&self, path: &str) {
        self.lock().files.remove(path);
    }

    fn exists(&self, path: &str) -> bool {
        self.lock().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn write_list_read() {
        let h = SimHdfs::new(5, 1);
        h.put_file("/a", vec![(b(b"hello"), 2), (b(b"world!"), 3)]);
        let blocks = h.list_blocks("/a").unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].bytes, 5);
        assert_eq!(blocks[1].records, 3);
        assert_eq!(blocks[0].hosts.len(), 3);
        assert_eq!(&h.read_block("/a", 1).unwrap()[..], b"world!");
        assert!(h.read_block("/a", 2).is_none());
    }

    #[test]
    fn scaled_stats_diverge_from_real_data() {
        let h = SimHdfs::new(5, 1);
        h.put_file_scaled("/big", vec![(b(b"tiny"), 128 * 1024 * 1024, 1_000_000)]);
        let blocks = h.list_blocks("/big").unwrap();
        assert_eq!(blocks[0].bytes, 128 * 1024 * 1024);
        assert_eq!(&h.read_block("/big", 0).unwrap()[..], b"tiny");
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let h = SimHdfs::new(10, 7);
        h.put_file("/a", vec![(b(b"x"), 1)]);
        let reps = h.block_replicas("/a", 0).unwrap();
        assert_eq!(reps.len(), 3);
        let mut uniq = reps.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn small_cluster_caps_replication() {
        let h = SimHdfs::new(1, 7);
        h.put_file("/a", vec![(b(b"x"), 1)]);
        assert_eq!(h.block_replicas("/a", 0).unwrap().len(), 1);
    }

    #[test]
    fn node_loss_degrades_then_kills_block() {
        let h = SimHdfs::new(3, 7);
        h.put_file("/a", vec![(b(b"x"), 1)]);
        for n in 0..3 {
            h.node_lost(NodeId(n));
        }
        assert!(h.read_block("/a", 0).is_none());
        assert!(h.exists("/a"));
    }

    #[test]
    fn delete_and_exists() {
        let h = SimHdfs::new(3, 7);
        h.write_file("/a", vec![(b(b"x"), 1)]);
        assert!(h.exists("/a"));
        h.delete("/a");
        assert!(!h.exists("/a"));
    }

    #[test]
    fn determinism_same_seed_same_placement() {
        let h1 = SimHdfs::new(20, 42);
        let h2 = SimHdfs::new(20, 42);
        h1.put_file("/a", vec![(b(b"x"), 1)]);
        h2.put_file("/a", vec![(b(b"x"), 1)]);
        assert_eq!(h1.block_replicas("/a", 0), h2.block_replicas("/a", 0));
    }

    #[test]
    fn sim_hdfs_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimHdfs>();
    }
}
