//! Simulated HDFS: replicated blocks with node locations.
//!
//! Files carry **real** block data (read by root inputs and written by
//! committers) while *declaring* possibly-scaled statistics (`stat_bytes`,
//! `records`) used by split calculation and the cost model. Replica
//! placement drives locality-aware scheduling; losing a node removes its
//! replicas but files stay readable while any replica survives.

use crate::types::{ClusterSpec, NodeId};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use tez_runtime::{BlockInfo, Dfs};

/// Replication factor, as in stock HDFS.
pub const REPLICATION: usize = 3;

#[derive(Clone, Debug)]
struct Block {
    data: Bytes,
    /// Declared (possibly scaled) size used for statistics and cost.
    stat_bytes: u64,
    records: u64,
    replicas: Vec<NodeId>,
}

#[derive(Clone, Debug, Default)]
struct File {
    blocks: Vec<Block>,
}

/// The simulated namenode + datanodes.
pub struct SimHdfs {
    files: HashMap<String, File>,
    num_nodes: u32,
    rng: StdRng,
    /// Total declared bytes written since start (for reports).
    bytes_written: u64,
    /// Multiplier applied to declared sizes on plain `write_file` calls, so
    /// intermediate files written by committers carry the same scaled
    /// statistics as the generated input data.
    stat_scale: f64,
}

impl SimHdfs {
    /// Empty filesystem over a cluster of `num_nodes` nodes.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        SimHdfs {
            files: HashMap::new(),
            num_nodes: num_nodes.max(1) as u32,
            rng: StdRng::seed_from_u64(seed ^ 0x5df5),
            bytes_written: 0,
            stat_scale: 1.0,
        }
    }

    /// Set the declared-size multiplier for subsequent `write_file` calls.
    pub fn set_stat_scale(&mut self, scale: f64) {
        self.stat_scale = scale.max(0.0);
    }

    fn place_replicas(&mut self) -> Vec<NodeId> {
        let n = self.num_nodes;
        let mut replicas = Vec::with_capacity(REPLICATION.min(n as usize));
        while replicas.len() < REPLICATION.min(n as usize) {
            let node = NodeId(self.rng.random_range(0..n));
            if !replicas.contains(&node) {
                replicas.push(node);
            }
        }
        replicas
    }

    /// Create a file whose declared statistics equal the real data sizes.
    pub fn put_file(&mut self, path: &str, blocks: Vec<(Bytes, u64)>) -> u64 {
        let scaled: Vec<(Bytes, u64, u64)> = blocks
            .into_iter()
            .map(|(d, r)| {
                let len = d.len() as u64;
                (d, len, r)
            })
            .collect();
        self.put_file_scaled(path, scaled)
    }

    /// Create a file with explicit declared sizes per block
    /// `(data, stat_bytes, records)` — datagen uses this to declare
    /// paper-scale sizes while storing small real data.
    pub fn put_file_scaled(&mut self, path: &str, blocks: Vec<(Bytes, u64, u64)>) -> u64 {
        let mut total = 0;
        let blocks = blocks
            .into_iter()
            .map(|(data, stat_bytes, records)| {
                total += stat_bytes;
                let replicas = self.place_replicas();
                Block {
                    data,
                    stat_bytes,
                    records,
                    replicas,
                }
            })
            .collect();
        self.files.insert(path.to_string(), File { blocks });
        self.bytes_written += total;
        total
    }

    /// Remove the replicas a failed node held. Blocks with no surviving
    /// replica become unreadable (read returns `None`).
    pub fn node_lost(&mut self, node: NodeId) {
        for file in self.files.values_mut() {
            for block in &mut file.blocks {
                block.replicas.retain(|&r| r != node);
            }
        }
    }

    /// Declared bytes written since start.
    pub fn total_bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Nodes currently holding replicas of a block.
    pub fn block_replicas(&self, path: &str, index: usize) -> Option<&[NodeId]> {
        self.files
            .get(path)
            .and_then(|f| f.blocks.get(index))
            .map(|b| b.replicas.as_slice())
    }
}

impl Dfs for SimHdfs {
    fn list_blocks(&self, path: &str) -> Option<Vec<BlockInfo>> {
        self.files.get(path).map(|f| {
            f.blocks
                .iter()
                .enumerate()
                .map(|(i, b)| BlockInfo {
                    index: i,
                    bytes: b.stat_bytes,
                    records: b.records,
                    hosts: b
                        .replicas
                        .iter()
                        .map(|&n| ClusterSpec::host_name(n))
                        .collect(),
                })
                .collect()
        })
    }

    fn read_block(&self, path: &str, index: usize) -> Option<Bytes> {
        let block = self.files.get(path)?.blocks.get(index)?;
        if block.replicas.is_empty() {
            return None; // all replicas lost
        }
        Some(block.data.clone())
    }

    fn write_file(&mut self, path: &str, blocks: Vec<(Bytes, u64)>) -> u64 {
        let scale = self.stat_scale;
        let scaled: Vec<(Bytes, u64, u64)> = blocks
            .into_iter()
            .map(|(d, r)| {
                let declared = ((d.len() as f64) * scale).max(1.0) as u64;
                let records = ((r as f64) * scale).max(1.0) as u64;
                (d, declared, records)
            })
            .collect();
        self.put_file_scaled(path, scaled)
    }

    fn delete(&mut self, path: &str) {
        self.files.remove(path);
    }

    fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn write_list_read() {
        let mut h = SimHdfs::new(5, 1);
        h.put_file("/a", vec![(b(b"hello"), 2), (b(b"world!"), 3)]);
        let blocks = h.list_blocks("/a").unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].bytes, 5);
        assert_eq!(blocks[1].records, 3);
        assert_eq!(blocks[0].hosts.len(), 3);
        assert_eq!(&h.read_block("/a", 1).unwrap()[..], b"world!");
        assert!(h.read_block("/a", 2).is_none());
    }

    #[test]
    fn scaled_stats_diverge_from_real_data() {
        let mut h = SimHdfs::new(5, 1);
        h.put_file_scaled("/big", vec![(b(b"tiny"), 128 * 1024 * 1024, 1_000_000)]);
        let blocks = h.list_blocks("/big").unwrap();
        assert_eq!(blocks[0].bytes, 128 * 1024 * 1024);
        assert_eq!(&h.read_block("/big", 0).unwrap()[..], b"tiny");
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let mut h = SimHdfs::new(10, 7);
        h.put_file("/a", vec![(b(b"x"), 1)]);
        let reps = h.block_replicas("/a", 0).unwrap();
        assert_eq!(reps.len(), 3);
        let mut uniq = reps.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn small_cluster_caps_replication() {
        let mut h = SimHdfs::new(1, 7);
        h.put_file("/a", vec![(b(b"x"), 1)]);
        assert_eq!(h.block_replicas("/a", 0).unwrap().len(), 1);
    }

    #[test]
    fn node_loss_degrades_then_kills_block() {
        let mut h = SimHdfs::new(3, 7);
        h.put_file("/a", vec![(b(b"x"), 1)]);
        for n in 0..3 {
            h.node_lost(NodeId(n));
        }
        assert!(h.read_block("/a", 0).is_none());
        assert!(h.exists("/a"));
    }

    #[test]
    fn delete_and_exists() {
        let mut h = SimHdfs::new(3, 7);
        h.write_file("/a", vec![(b(b"x"), 1)]);
        assert!(h.exists("/a"));
        h.delete("/a");
        assert!(!h.exists("/a"));
    }

    #[test]
    fn determinism_same_seed_same_placement() {
        let mut h1 = SimHdfs::new(20, 42);
        let mut h2 = SimHdfs::new(20, 42);
        h1.put_file("/a", vec![(b(b"x"), 1)]);
        h2.put_file("/a", vec![(b(b"x"), 1)]);
        assert_eq!(h1.block_replicas("/a", 0), h2.block_replicas("/a", 0));
    }
}
