//! Fixed worker pool for the data plane.
//!
//! The simulator's control plane stays single-threaded and deterministic;
//! real task payloads (operator pipelines, shuffle sort/merge, codec work)
//! are submitted here and run on OS threads. Completion *ordering* is
//! decided by simulated time on the control thread — the pool only changes
//! wall-clock overlap — so same-seed runs stay byte-identical at any
//! worker count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of N OS threads executing submitted jobs FIFO.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
    submitted: AtomicU64,
}

/// Handle to a submitted job's result. [`TaskHandle::join`] blocks until
/// the job finishes and re-raises any panic on the caller's thread.
pub struct TaskHandle<T> {
    rx: Receiver<std::thread::Result<T>>,
}

impl<T> TaskHandle<T> {
    /// Wait for the job and return its result, propagating panics.
    pub fn join(self) -> T {
        match self.rx.recv() {
            Ok(Ok(v)) => v,
            Ok(Err(panic)) => std::panic::resume_unwind(panic),
            Err(_) => panic!("worker pool dropped a job without completing it"),
        }
    }
}

impl WorkerPool {
    /// Pool with `workers` threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let threads = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("tez-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while pulling a job, not while
                        // running it, so workers drain the queue in parallel.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        };
                        job();
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            threads,
            workers,
            submitted: AtomicU64::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total jobs handed to the pool since creation. Submission happens on
    /// the single-threaded control plane, so the count is deterministic —
    /// identical at any worker count — and safe to export in run metrics
    /// (unlike the worker count itself).
    pub fn jobs_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Submit a job; returns a handle to its result. Panics inside the job
    /// are captured and re-raised by [`TaskHandle::join`].
    pub fn submit<T, F>(&self, f: F) -> TaskHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        let job: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            // The receiver may be gone (job discarded); that's fine.
            let _ = tx.send(result);
        });
        self.tx
            .as_ref()
            .expect("pool is live while not dropped")
            .send(job)
            .expect("worker threads alive while pool is live");
        TaskHandle { rx }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue so workers exit, then join them.
        self.tx.take();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Resolve the worker count: explicit config, then the `TEZ_WORKERS`
/// environment variable, then available parallelism, floored at 1.
pub fn resolve_workers(config_workers: Option<usize>) -> usize {
    if let Some(n) = config_workers {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("TEZ_WORKERS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_results_join() {
        let pool = WorkerPool::new(4);
        let handles: Vec<_> = (0..32u64).map(|i| pool.submit(move || i * 2)).collect();
        let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (0..32u64).map(|i| i * 2).sum());
    }

    #[test]
    fn panics_propagate_on_join() {
        let pool = WorkerPool::new(1);
        let h = pool.submit(|| -> u64 { panic!("boom") });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
        assert!(err.is_err());
        // The pool survives a panicking job.
        assert_eq!(pool.submit(|| 7u64).join(), 7);
    }

    #[test]
    fn discarded_handles_do_not_block_the_pool() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let c = counter.clone();
            let _ = pool.submit(move || c.fetch_add(1, Ordering::SeqCst));
        }
        // Join one more job after the discarded ones to flush the queue.
        let c = counter.clone();
        pool.submit(move || c.load(Ordering::SeqCst)).join();
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn jobs_submitted_counts_every_submission() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.jobs_submitted(), 0);
        let handles: Vec<_> = (0..5u64).map(|i| pool.submit(move || i)).collect();
        assert_eq!(pool.jobs_submitted(), 5);
        for h in handles {
            h.join();
        }
        // Discarded handles still count: submission, not completion.
        let _ = pool.submit(|| 1u64);
        assert_eq!(pool.jobs_submitted(), 6);
    }

    #[test]
    fn resolve_workers_prefers_config() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(0)), 1);
        assert!(resolve_workers(None) >= 1);
    }
}
