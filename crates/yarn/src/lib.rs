//! # tez-yarn — a deterministic discrete-event YARN cluster simulator
//!
//! The Tez paper evaluates orchestration mechanisms — locality-aware
//! scheduling with delay scheduling, container reuse, sessions,
//! speculation, multi-tenant resource sharing — on real YARN clusters of
//! 20–4200 nodes. This crate substitutes those clusters with a
//! **deterministic discrete-event simulation** exercising the same
//! control-plane contracts:
//!
//! * [`ClusterSpec`] — nodes, racks, per-node resources, heterogeneous
//!   speed factors.
//! * [`Rm`] — a capacity-scheduler-style resource manager: per-queue
//!   shares, priority-ordered container requests with node/rack locality
//!   preferences, **delay scheduling** (Zaharia et al., EuroSys'10, cited
//!   by the paper), elastic over-share usage, and optional preemption.
//! * [`YarnApp`] — the ApplicationMaster contract. `tez-core`'s
//!   `DagAppMaster` and the classic MapReduce baseline both implement it.
//! * [`CostModel`] — converts work descriptions (CPU, local/remote bytes)
//!   into simulated time, including container-launch overhead, a JIT-style
//!   warm-up multiplier that decays with tasks run per container, node
//!   speed factors and straggler injection.
//! * [`SimHdfs`] — replicated block storage with locations (for locality
//!   and split calculation) carrying *real* data at small scale while
//!   declaring *scaled* statistics for the cost model.
//! * [`FaultPlan`] — scripted node failures and probabilistic task
//!   failures.
//! * [`Trace`] — container/work spans and per-app allocation time series
//!   (drives the paper's Figure 7 and Figure 12 plots), derived from the
//!   structured event [`Timeline`] the simulator records (see
//!   `tez_runtime::timeline`).
//!
//! The control plane is single-threaded and seeded: the same inputs
//! produce the same schedule, byte-for-byte. Real data-plane payloads may
//! run concurrently on a [`WorkerPool`] — wall-clock overlap only; every
//! simulated outcome is decided on the control thread.

pub mod app;
pub mod cost;
pub mod fault;
pub mod hdfs;
pub mod pool;
pub mod rm;
pub mod sim;
pub mod trace;
pub mod types;

pub use app::{AppContext, AppEvent, AppStatus, ContainerExit, WorkOutcome, YarnApp};
pub use cost::{CostModel, WorkCost};
pub use fault::FaultPlan;
pub use hdfs::SimHdfs;
pub use pool::{resolve_workers, TaskHandle, WorkerPool};
pub use rm::{ContainerRequest, QueueSpec, Rm, RmConfig};
pub use sim::{SimResult, Simulation};
pub use tez_runtime::timeline::{Timeline, TimelineEvent};
pub use trace::{AllocPoint, Trace, WorkSpan};
pub use types::{
    AppId, ClusterSpec, Container, ContainerId, NodeId, RequestId, Resource, SimTime, WorkId,
};
