//! The resource manager: capacity-scheduler queues, locality-aware
//! container allocation with delay scheduling, elastic sharing, and
//! optional preemption.
//!
//! The allocator is intentionally simple but captures the behaviours the
//! paper's experiments rely on:
//!
//! * **Queues with capacity shares** — apps in under-served queues are
//!   served first; idle capacity is lent elastically to busy queues
//!   (paper §4.3 "Multi-Tenancy").
//! * **Delay scheduling** — a request with node preferences waits up to
//!   `node_delay_ms` for a node-local slot before accepting rack-local,
//!   and up to `rack_delay_ms` before accepting any node (paper §4.2,
//!   citing Zaharia et al.).
//! * **Preemption** — when enabled, sustained starvation of an
//!   under-share queue claws back the newest containers of over-share
//!   apps.

use crate::types::{AppId, Container, ContainerId, NodeId, RequestId, Resource, SimTime};
use std::collections::{BTreeMap, HashMap};
use tez_runtime::metrics::Histogram;
use tez_runtime::run_report::{Locality, SchedulerStats};

/// One scheduler queue.
#[derive(Clone, Debug)]
pub struct QueueSpec {
    /// Queue name.
    pub name: String,
    /// Relative capacity share (normalized across queues).
    pub share: f64,
}

impl QueueSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, share: f64) -> Self {
        QueueSpec {
            name: name.into(),
            share,
        }
    }
}

/// Scheduler tunables.
#[derive(Clone, Debug)]
pub struct RmConfig {
    /// Delay before relaxing node-local to rack-local.
    pub node_delay_ms: u64,
    /// Delay before relaxing rack-local to off-rack.
    pub rack_delay_ms: u64,
    /// Whether cross-queue preemption is enabled.
    pub preemption: bool,
    /// Starvation duration before preemption kicks in.
    pub preempt_after_ms: u64,
}

impl Default for RmConfig {
    fn default() -> Self {
        RmConfig {
            node_delay_ms: 1_000,
            rack_delay_ms: 3_000,
            preemption: false,
            preempt_after_ms: 15_000,
        }
    }
}

/// A container request from an app.
#[derive(Clone, Debug)]
pub struct ContainerRequest {
    /// Lower runs first (vertex depth in Tez).
    pub priority: u32,
    /// Requested resource.
    pub resource: Resource,
    /// Preferred nodes (node-local).
    pub nodes: Vec<NodeId>,
    /// Preferred racks (rack-local); derived from `nodes` if empty.
    pub racks: Vec<u32>,
    /// Whether locality may relax to any node after the delays.
    pub relax_locality: bool,
}

impl ContainerRequest {
    /// An any-node request.
    pub fn anywhere(priority: u32, resource: Resource) -> Self {
        ContainerRequest {
            priority,
            resource,
            nodes: Vec::new(),
            racks: Vec::new(),
            relax_locality: true,
        }
    }
}

#[derive(Clone, Debug)]
struct Pending {
    id: RequestId,
    req: ContainerRequest,
    created: SimTime,
}

#[derive(Clone, Debug)]
struct NodeState {
    alive: bool,
    free: Resource,
    rack: u32,
}

#[derive(Clone, Debug)]
struct RmApp {
    queue: usize,
    /// Pending requests ordered by (priority, id).
    pending: BTreeMap<(u32, u64), Pending>,
    used_vcores: u64,
    used_memory: u64,
    finished: bool,
    /// Scheduler decisions made for this app (run-report observability).
    stats: SchedulerStats,
    /// Queue-wait distribution (request creation to placement, ms) — the
    /// histogram companion of `stats.total_wait_ms`/`max_wait_ms`. App-
    /// lifetime accumulator; per-DAG slices come from
    /// [`Histogram::delta_since`].
    wait_hist: Histogram,
}

/// Container bookkeeping.
#[derive(Clone, Debug)]
pub struct ContainerInfo {
    /// Owning app.
    pub app: AppId,
    /// Hosting node.
    pub node: NodeId,
    /// Allocated resource.
    pub resource: Resource,
    /// Allocation time (newest preempted first).
    pub allocated_at: SimTime,
    /// Number of work items this container has executed (drives warm-up).
    pub works_run: u64,
}

/// Allocation produced by a scheduling pass.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Receiving app.
    pub app: AppId,
    /// The allocated container.
    pub container: Container,
    /// Locality class of the placement.
    pub locality: Locality,
    /// How long the request waited before placement, ms.
    pub waited_ms: u64,
    /// Whether the placement needed a delay-scheduling relaxation.
    pub relaxed: bool,
}

/// Preemption decision produced by a scheduling pass.
#[derive(Clone, Debug)]
pub struct Preemption {
    /// App losing the container.
    pub app: AppId,
    /// The container to kill.
    pub container: ContainerId,
}

/// The resource manager state machine. Pure data structure: the
/// [`crate::Simulation`] drives it and delivers its decisions as events.
pub struct Rm {
    config: RmConfig,
    queues: Vec<QueueSpec>,
    queue_starved_since: Vec<Option<SimTime>>,
    apps: HashMap<AppId, RmApp>,
    nodes: Vec<NodeState>,
    containers: HashMap<ContainerId, ContainerInfo>,
    next_container: u64,
    next_request: u64,
    total_vcores: u64,
}

impl Rm {
    /// New RM over `nodes` nodes of the given capacity, with `queues`
    /// (shares normalized internally; an empty list gets one default
    /// queue).
    pub fn new(
        node_resources: Vec<(Resource, u32)>,
        queues: Vec<QueueSpec>,
        config: RmConfig,
    ) -> Self {
        let queues = if queues.is_empty() {
            vec![QueueSpec::new("default", 1.0)]
        } else {
            queues
        };
        let total_vcores = node_resources.iter().map(|(r, _)| r.vcores as u64).sum();
        let nodes = node_resources
            .into_iter()
            .map(|(free, rack)| NodeState {
                alive: true,
                free,
                rack,
            })
            .collect();
        Rm {
            config,
            queue_starved_since: vec![None; queues.len()],
            queues,
            apps: HashMap::new(),
            nodes,
            containers: HashMap::new(),
            next_container: 1,
            next_request: 1,
            total_vcores,
        }
    }

    /// Register an app under a queue name (falls back to queue 0).
    pub fn register_app(&mut self, app: AppId, queue: &str) {
        let queue = self
            .queues
            .iter()
            .position(|q| q.name == queue)
            .unwrap_or(0);
        self.apps.insert(
            app,
            RmApp {
                queue,
                pending: BTreeMap::new(),
                used_vcores: 0,
                used_memory: 0,
                finished: false,
                stats: SchedulerStats::default(),
                wait_hist: Histogram::new(),
            },
        );
    }

    /// Add a container request; returns its id.
    pub fn add_request(&mut self, app: AppId, req: ContainerRequest, now: SimTime) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        let entry = self.apps.get_mut(&app).expect("unregistered app");
        entry.pending.insert(
            (req.priority, id.0),
            Pending {
                id,
                req,
                created: now,
            },
        );
        id
    }

    /// Cancel a pending request; returns whether it was still pending.
    pub fn cancel_request(&mut self, app: AppId, id: RequestId) -> bool {
        if let Some(a) = self.apps.get_mut(&app) {
            let key = a.pending.iter().find(|(_, p)| p.id == id).map(|(k, _)| *k);
            if let Some(k) = key {
                a.pending.remove(&k);
                return true;
            }
        }
        false
    }

    /// Number of pending requests of an app.
    pub fn pending_requests(&self, app: AppId) -> usize {
        self.apps.get(&app).map_or(0, |a| a.pending.len())
    }

    /// Release a container back to the cluster. Returns its info.
    pub fn release_container(&mut self, id: ContainerId) -> Option<ContainerInfo> {
        let info = self.containers.remove(&id)?;
        if let Some(node) = self.nodes.get_mut(info.node.0 as usize) {
            node.free.memory_mb += info.resource.memory_mb;
            node.free.vcores += info.resource.vcores;
        }
        if let Some(app) = self.apps.get_mut(&info.app) {
            app.used_vcores -= info.resource.vcores as u64;
            app.used_memory -= info.resource.memory_mb;
        }
        Some(info)
    }

    /// Mark an app finished and release all its containers; returns them.
    pub fn finish_app(&mut self, app: AppId) -> Vec<ContainerId> {
        if let Some(a) = self.apps.get_mut(&app) {
            a.finished = true;
            a.pending.clear();
        }
        let ids: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, c)| c.app == app)
            .map(|(&id, _)| id)
            .collect();
        for id in &ids {
            self.release_container(*id);
        }
        ids
    }

    /// Handle a node failure: mark dead, drop its containers. Returns the
    /// containers that were lost `(id, info)`.
    pub fn node_lost(&mut self, node: NodeId) -> Vec<(ContainerId, ContainerInfo)> {
        if let Some(n) = self.nodes.get_mut(node.0 as usize) {
            n.alive = false;
            n.free = Resource::new(0, 0);
        }
        let ids: Vec<ContainerId> = self
            .containers
            .iter()
            .filter(|(_, c)| c.node == node)
            .map(|(&id, _)| id)
            .collect();
        let mut lost = Vec::new();
        for id in ids {
            let info = self.containers.remove(&id).expect("listed above");
            if let Some(app) = self.apps.get_mut(&info.app) {
                app.used_vcores -= info.resource.vcores as u64;
                app.used_memory -= info.resource.memory_mb;
            }
            lost.push((id, info));
        }
        lost
    }

    /// Container info accessor.
    pub fn container(&self, id: ContainerId) -> Option<&ContainerInfo> {
        self.containers.get(&id)
    }

    /// Bump the works-run counter of a container (warm-up tracking).
    pub fn container_ran_work(&mut self, id: ContainerId) {
        if let Some(c) = self.containers.get_mut(&id) {
            c.works_run += 1;
        }
    }

    /// Number of alive nodes.
    pub fn alive_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Rack of a node.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        self.nodes[node.0 as usize].rack
    }

    fn queue_usage_ratio(&self, queue: usize) -> f64 {
        let used: u64 = self
            .apps
            .values()
            .filter(|a| a.queue == queue)
            .map(|a| a.used_vcores)
            .sum();
        let total_share: f64 = self.queues.iter().map(|q| q.share).sum();
        let fair = self.total_vcores as f64 * self.queues[queue].share / total_share.max(1e-9);
        used as f64 / fair.max(1e-9)
    }

    fn try_place(&self, p: &Pending, now: SimTime) -> Option<NodeId> {
        let waited = now.since(p.created);
        // Node-local.
        for &n in &p.req.nodes {
            let st = &self.nodes[n.0 as usize];
            if st.alive && p.req.resource.fits_in(&st.free) {
                return Some(n);
            }
        }
        let has_prefs = !p.req.nodes.is_empty() || !p.req.racks.is_empty();
        if has_prefs && waited < self.config.node_delay_ms {
            return None;
        }
        // Rack-local.
        let mut racks: Vec<u32> = p.req.racks.clone();
        for &n in &p.req.nodes {
            racks.push(self.nodes[n.0 as usize].rack);
        }
        if !racks.is_empty() {
            for (i, st) in self.nodes.iter().enumerate() {
                if st.alive && racks.contains(&st.rack) && p.req.resource.fits_in(&st.free) {
                    return Some(NodeId(i as u32));
                }
            }
            if waited < self.config.rack_delay_ms || !p.req.relax_locality {
                return None;
            }
        }
        // Anywhere: least-loaded alive node (most free vcores, then lowest id).
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, st)| st.alive && p.req.resource.fits_in(&st.free))
            .max_by_key(|(i, st)| (st.free.vcores, st.free.memory_mb, usize::MAX - i))
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Locality class of placing `p` on `node`, plus whether the placement
    /// was only possible because a delay-scheduling relaxation expired.
    fn classify_placement(&self, p: &Pending, node: NodeId, now: SimTime) -> (Locality, bool) {
        let has_prefs = !p.req.nodes.is_empty() || !p.req.racks.is_empty();
        if !has_prefs {
            return (Locality::Unconstrained, false);
        }
        if p.req.nodes.contains(&node) {
            return (Locality::NodeLocal, false);
        }
        let relaxed = now.since(p.created) >= self.config.node_delay_ms;
        let rack = self.nodes[node.0 as usize].rack;
        let rack_local = p.req.racks.contains(&rack)
            || p.req
                .nodes
                .iter()
                .any(|&n| self.nodes[n.0 as usize].rack == rack);
        if rack_local {
            (Locality::RackLocal, relaxed)
        } else {
            (Locality::OffRack, relaxed)
        }
    }

    /// Scheduler decisions recorded so far for `app` (run-report
    /// observability). Default stats for unknown apps.
    pub fn scheduler_stats(&self, app: AppId) -> SchedulerStats {
        self.apps
            .get(&app)
            .map(|a| a.stats.clone())
            .unwrap_or_default()
    }

    /// Queue-wait distribution recorded so far for `app` (one sample per
    /// placement, ms). Empty for unknown apps.
    pub fn queue_wait_histogram(&self, app: AppId) -> Histogram {
        self.apps
            .get(&app)
            .map(|a| a.wait_hist.clone())
            .unwrap_or_default()
    }

    fn allocate_to(
        &mut self,
        app_id: AppId,
        key: (u32, u64),
        node: NodeId,
        now: SimTime,
    ) -> Allocation {
        let (locality, relaxed) = {
            let p = &self.apps[&app_id].pending[&key];
            self.classify_placement(p, node, now)
        };
        let app = self.apps.get_mut(&app_id).expect("app exists");
        let p = app.pending.remove(&key).expect("pending exists");
        let waited_ms = now.since(p.created);
        app.stats.record_placement(locality, waited_ms, relaxed);
        app.wait_hist.record(waited_ms);
        let id = ContainerId(self.next_container);
        self.next_container += 1;
        let st = &mut self.nodes[node.0 as usize];
        st.free.memory_mb -= p.req.resource.memory_mb;
        st.free.vcores -= p.req.resource.vcores;
        app.used_vcores += p.req.resource.vcores as u64;
        app.used_memory += p.req.resource.memory_mb;
        self.containers.insert(
            id,
            ContainerInfo {
                app: app_id,
                node,
                resource: p.req.resource,
                allocated_at: now,
                works_run: 0,
            },
        );
        Allocation {
            app: app_id,
            container: Container {
                id,
                node,
                resource: p.req.resource,
                request: p.id,
            },
            locality,
            waited_ms,
            relaxed,
        }
    }

    /// Run one scheduling pass. Returns allocations, preemptions, and the
    /// earliest future time at which a currently-blocked locality delay
    /// expires (so the simulator can schedule the next pass).
    pub fn schedule(
        &mut self,
        now: SimTime,
    ) -> (Vec<Allocation>, Vec<Preemption>, Option<SimTime>) {
        let mut allocations = Vec::new();
        loop {
            // Apps ordered by (queue usage ratio asc, app id asc) — most
            // starved queue first. Recomputed each round for fairness.
            let mut order: Vec<AppId> = self
                .apps
                .iter()
                .filter(|(_, a)| !a.finished && !a.pending.is_empty())
                .map(|(&id, _)| id)
                .collect();
            order.sort_by(|&a, &b| {
                let ra = self.queue_usage_ratio(self.apps[&a].queue);
                let rb = self.queue_usage_ratio(self.apps[&b].queue);
                ra.partial_cmp(&rb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut placed = None;
            'outer: for app_id in order {
                let keys: Vec<(u32, u64)> = self.apps[&app_id].pending.keys().copied().collect();
                for key in keys {
                    let p = self.apps[&app_id].pending[&key].clone();
                    if let Some(node) = self.try_place(&p, now) {
                        placed = Some((app_id, key, node));
                        break 'outer;
                    }
                }
            }
            match placed {
                Some((app_id, key, node)) => {
                    allocations.push(self.allocate_to(app_id, key, node, now));
                }
                None => break,
            }
        }

        // Next locality-delay expiry among still-pending preferred requests.
        let mut next_pass: Option<SimTime> = None;
        for a in self.apps.values() {
            for p in a.pending.values() {
                if p.req.nodes.is_empty() && p.req.racks.is_empty() {
                    continue;
                }
                let waited = now.since(p.created);
                let next = if waited < self.config.node_delay_ms {
                    Some(p.created.plus(self.config.node_delay_ms))
                } else if waited < self.config.rack_delay_ms && p.req.relax_locality {
                    Some(p.created.plus(self.config.rack_delay_ms))
                } else {
                    None
                };
                if let Some(t) = next {
                    next_pass = Some(next_pass.map_or(t, |cur: SimTime| cur.min(t)));
                }
            }
        }

        let preemptions = if self.config.preemption {
            self.compute_preemptions(now)
        } else {
            Vec::new()
        };
        (allocations, preemptions, next_pass)
    }

    fn compute_preemptions(&mut self, now: SimTime) -> Vec<Preemption> {
        let mut out = Vec::new();
        for q in 0..self.queues.len() {
            let demand: usize = self
                .apps
                .values()
                .filter(|a| a.queue == q && !a.finished)
                .map(|a| a.pending.len())
                .sum();
            let starved = demand > 0 && self.queue_usage_ratio(q) < 0.95;
            match (starved, self.queue_starved_since[q]) {
                (true, None) => self.queue_starved_since[q] = Some(now),
                (false, _) => self.queue_starved_since[q] = None,
                (true, Some(since)) if now.since(since) >= self.config.preempt_after_ms => {
                    // Claw back the newest container of the most over-share app.
                    let victim = self
                        .containers
                        .iter()
                        .filter(|(_, c)| {
                            let a = &self.apps[&c.app];
                            a.queue != q && self.queue_usage_ratio(a.queue) > 1.05
                        })
                        .max_by_key(|(id, c)| (c.allocated_at, id.0))
                        .map(|(&id, c)| Preemption {
                            app: c.app,
                            container: id,
                        });
                    if let Some(v) = victim {
                        if let Some(a) = self.apps.get_mut(&v.app) {
                            a.stats.preemptions += 1;
                        }
                        out.push(v);
                        self.queue_starved_since[q] = Some(now); // reset the clock
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(nodes: usize, vcores: u32) -> Rm {
        let res: Vec<(Resource, u32)> = (0..nodes)
            .map(|i| (Resource::new(8192, vcores), (i / 2) as u32))
            .collect();
        Rm::new(res, vec![], RmConfig::default())
    }

    #[test]
    fn basic_allocation() {
        let mut r = rm(2, 4);
        r.register_app(AppId(1), "default");
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(0, Resource::new(1024, 1)),
            SimTime::ZERO,
        );
        let (allocs, pre, _) = r.schedule(SimTime::ZERO);
        assert_eq!(allocs.len(), 1);
        assert!(pre.is_empty());
        assert_eq!(r.pending_requests(AppId(1)), 0);
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut r = rm(1, 2);
        r.register_app(AppId(1), "default");
        for _ in 0..5 {
            r.add_request(
                AppId(1),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime::ZERO,
            );
        }
        let (allocs, _, _) = r.schedule(SimTime::ZERO);
        assert_eq!(allocs.len(), 2); // 2 vcores on the single node
        assert_eq!(r.pending_requests(AppId(1)), 3);
    }

    #[test]
    fn release_frees_capacity() {
        let mut r = rm(1, 1);
        r.register_app(AppId(1), "default");
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(0, Resource::new(1024, 1)),
            SimTime::ZERO,
        );
        let (allocs, _, _) = r.schedule(SimTime::ZERO);
        let c = allocs[0].container.id;
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(0, Resource::new(1024, 1)),
            SimTime(1),
        );
        let (a2, _, _) = r.schedule(SimTime(1));
        assert!(a2.is_empty());
        r.release_container(c);
        let (a3, _, _) = r.schedule(SimTime(2));
        assert_eq!(a3.len(), 1);
    }

    #[test]
    fn delay_scheduling_waits_for_preferred_node() {
        let mut r = rm(2, 4);
        r.register_app(AppId(1), "default");
        // Fill node 0 completely.
        for _ in 0..4 {
            r.add_request(
                AppId(1),
                ContainerRequest {
                    priority: 0,
                    resource: Resource::new(1024, 1),
                    nodes: vec![NodeId(0)],
                    racks: vec![],
                    relax_locality: true,
                },
                SimTime::ZERO,
            );
        }
        let (a, _, _) = r.schedule(SimTime::ZERO);
        assert_eq!(a.len(), 4);
        // Fifth request prefers node 0, which is full. Node 1 is in the
        // same rack (nodes_per_rack=2 in this fixture).
        r.add_request(
            AppId(1),
            ContainerRequest {
                priority: 0,
                resource: Resource::new(1024, 1),
                nodes: vec![NodeId(0)],
                racks: vec![],
                relax_locality: true,
            },
            SimTime(100),
        );
        let (a, _, next) = r.schedule(SimTime(100));
        assert!(a.is_empty(), "must wait out the node-local delay");
        assert_eq!(next, Some(SimTime(100 + 1000)));
        // After the node delay, rack-local node 1 is acceptable.
        let (a, _, _) = r.schedule(SimTime(1100));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].container.node, NodeId(1));
    }

    #[test]
    fn off_rack_requires_rack_delay() {
        // 4 nodes, racks of 2. Preferred node 0 and its rack peer stay full.
        let mut r = rm(4, 1);
        r.register_app(AppId(1), "default");
        for n in [0u32, 1] {
            r.add_request(
                AppId(1),
                ContainerRequest {
                    priority: 0,
                    resource: Resource::new(1024, 1),
                    nodes: vec![NodeId(n)],
                    racks: vec![],
                    relax_locality: false,
                },
                SimTime::ZERO,
            );
        }
        r.schedule(SimTime::ZERO);
        r.add_request(
            AppId(1),
            ContainerRequest {
                priority: 0,
                resource: Resource::new(1024, 1),
                nodes: vec![NodeId(0)],
                racks: vec![],
                relax_locality: true,
            },
            SimTime(0),
        );
        // After node delay but before rack delay: rack is full, off-rack
        // not yet allowed.
        let (a, _, _) = r.schedule(SimTime(1500));
        assert!(a.is_empty());
        // After rack delay: off-rack node acceptable.
        let (a, _, _) = r.schedule(SimTime(3000));
        assert_eq!(a.len(), 1);
        assert!(a[0].container.node.0 >= 2);
    }

    #[test]
    fn priority_orders_allocation() {
        let mut r = rm(1, 1);
        r.register_app(AppId(1), "default");
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(5, Resource::new(1024, 1)),
            SimTime::ZERO,
        );
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(1, Resource::new(1024, 1)),
            SimTime::ZERO,
        );
        let (a, _, _) = r.schedule(SimTime::ZERO);
        assert_eq!(a.len(), 1);
        // The priority-1 request must have won the single slot: the
        // remaining pending one is priority 5.
        let app = &r.apps[&AppId(1)];
        assert_eq!(app.pending.keys().next().unwrap().0, 5);
    }

    #[test]
    fn queue_fairness_prefers_starved_queue() {
        let res: Vec<(Resource, u32)> = (0..2).map(|_| (Resource::new(4096, 4), 0)).collect();
        let mut r = Rm::new(
            res,
            vec![QueueSpec::new("a", 1.0), QueueSpec::new("b", 1.0)],
            RmConfig::default(),
        );
        r.register_app(AppId(1), "a");
        r.register_app(AppId(2), "b");
        // App 1 grabs 6 of 8 slots.
        for _ in 0..6 {
            r.add_request(
                AppId(1),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime::ZERO,
            );
        }
        r.schedule(SimTime::ZERO);
        // Both ask for 2 more; only 2 free. Queue b is starved → app 2 wins.
        for _ in 0..2 {
            r.add_request(
                AppId(1),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime(1),
            );
            r.add_request(
                AppId(2),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime(1),
            );
        }
        let (a, _, _) = r.schedule(SimTime(1));
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|al| al.app == AppId(2)));
    }

    #[test]
    fn preemption_claws_back_from_over_share_apps() {
        let res: Vec<(Resource, u32)> = (0..1).map(|_| (Resource::new(4096, 4), 0)).collect();
        let mut r = Rm::new(
            res,
            vec![QueueSpec::new("a", 1.0), QueueSpec::new("b", 1.0)],
            RmConfig {
                preemption: true,
                preempt_after_ms: 1_000,
                ..RmConfig::default()
            },
        );
        r.register_app(AppId(1), "a");
        r.register_app(AppId(2), "b");
        for _ in 0..4 {
            r.add_request(
                AppId(1),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime::ZERO,
            );
        }
        r.schedule(SimTime::ZERO);
        r.add_request(
            AppId(2),
            ContainerRequest::anywhere(0, Resource::new(1024, 1)),
            SimTime(10),
        );
        // First pass records starvation; no preemption yet.
        let (_, pre, _) = r.schedule(SimTime(10));
        assert!(pre.is_empty());
        // After the timeout, the newest container of app 1 is preempted.
        let (_, pre, _) = r.schedule(SimTime(1_500));
        assert_eq!(pre.len(), 1);
        assert_eq!(pre[0].app, AppId(1));
    }

    #[test]
    fn node_loss_drops_containers_and_capacity() {
        let mut r = rm(2, 2);
        r.register_app(AppId(1), "default");
        for _ in 0..4 {
            r.add_request(
                AppId(1),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime::ZERO,
            );
        }
        let (a, _, _) = r.schedule(SimTime::ZERO);
        assert_eq!(a.len(), 4);
        let lost = r.node_lost(NodeId(0));
        assert_eq!(lost.len(), 2);
        assert_eq!(r.alive_nodes(), 1);
        // New request cannot land on the dead node.
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(0, Resource::new(1024, 1)),
            SimTime(1),
        );
        let (a, _, _) = r.schedule(SimTime(1));
        assert!(a.is_empty(), "node 1 is full, node 0 dead");
    }

    #[test]
    fn finish_app_releases_everything() {
        let mut r = rm(1, 4);
        r.register_app(AppId(1), "default");
        for _ in 0..3 {
            r.add_request(
                AppId(1),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime::ZERO,
            );
        }
        r.schedule(SimTime::ZERO);
        let released = r.finish_app(AppId(1));
        assert_eq!(released.len(), 3);
        r.register_app(AppId(2), "default");
        for _ in 0..4 {
            r.add_request(
                AppId(2),
                ContainerRequest::anywhere(0, Resource::new(1024, 1)),
                SimTime(1),
            );
        }
        let (a, _, _) = r.schedule(SimTime(1));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn scheduler_stats_classify_locality_and_relaxation() {
        let mut r = rm(4, 2);
        r.register_app(AppId(1), "default");
        let pinned = |node: u32| ContainerRequest {
            priority: 0,
            resource: Resource::new(1024, 1),
            nodes: vec![NodeId(node)],
            racks: vec![],
            relax_locality: true,
        };
        // Two node-local placements fill node 0 (2 vcores).
        r.add_request(AppId(1), pinned(0), SimTime::ZERO);
        r.add_request(AppId(1), pinned(0), SimTime::ZERO);
        r.schedule(SimTime::ZERO);
        // One unconstrained placement.
        r.add_request(
            AppId(1),
            ContainerRequest::anywhere(0, Resource::new(1024, 1)),
            SimTime(10),
        );
        r.schedule(SimTime(10));
        // Node 0 is full: this request waits out the node delay and
        // relaxes to its rack peer (node 1, which still has a free slot).
        r.add_request(AppId(1), pinned(0), SimTime(20));
        let (a, _, _) = r.schedule(SimTime(20 + 1_000));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].container.node, NodeId(1));

        let s = r.scheduler_stats(AppId(1));
        assert_eq!(s.placements, 4);
        assert_eq!(s.node_local, 2);
        assert_eq!(s.rack_local, 1);
        assert_eq!(s.unconstrained, 1);
        assert_eq!(s.off_rack, 0);
        assert_eq!(s.relaxed_after_delay, 1);
        assert_eq!(s.total_wait_ms, 1_000);
        assert_eq!(s.max_wait_ms, 1_000);
        assert_eq!(s.preemptions, 0);
    }

    #[test]
    fn relax_locality_false_never_relaxes_off_rack() {
        // 4 nodes, racks of 2. Fill rack 0 (nodes 0 and 1) completely.
        let mut r = rm(4, 1);
        r.register_app(AppId(1), "default");
        for n in [0u32, 1] {
            r.add_request(
                AppId(1),
                ContainerRequest {
                    priority: 0,
                    resource: Resource::new(1024, 1),
                    nodes: vec![NodeId(n)],
                    racks: vec![],
                    relax_locality: false,
                },
                SimTime::ZERO,
            );
        }
        let (a, _, _) = r.schedule(SimTime::ZERO);
        assert_eq!(a.len(), 2);
        let rack_peer = a
            .iter()
            .find(|al| al.container.node == NodeId(1))
            .unwrap()
            .container
            .id;
        // Strict-locality request for the full rack: must never land on
        // rack 1, no matter how long it waits.
        r.add_request(
            AppId(1),
            ContainerRequest {
                priority: 0,
                resource: Resource::new(1024, 1),
                nodes: vec![NodeId(0)],
                racks: vec![],
                relax_locality: false,
            },
            SimTime(0),
        );
        for t in [1_000u64, 3_000, 100_000] {
            let (a, _, next) = r.schedule(SimTime(t));
            assert!(a.is_empty(), "off-rack placement forbidden at t={t}");
            // Past both delays no timer can unblock it — only capacity can.
            if t >= 3_000 {
                assert_eq!(next, None, "no wakeup once delays are exhausted");
            }
        }
        assert_eq!(r.pending_requests(AppId(1)), 1);
        // Freeing a rack-local slot (node 1) finally places it.
        r.release_container(rack_peer);
        let (a, _, _) = r.schedule(SimTime(200_000));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].container.node, NodeId(1), "rack-local, not off-rack");
    }

    #[test]
    fn wakeup_fires_at_exact_node_delay_boundary() {
        // 2 nodes, one rack. Fill preferred node 0.
        let mut r = rm(2, 4);
        r.register_app(AppId(1), "default");
        for _ in 0..4 {
            r.add_request(
                AppId(1),
                ContainerRequest {
                    priority: 0,
                    resource: Resource::new(1024, 1),
                    nodes: vec![NodeId(0)],
                    racks: vec![],
                    relax_locality: true,
                },
                SimTime::ZERO,
            );
        }
        r.schedule(SimTime::ZERO);
        r.add_request(
            AppId(1),
            ContainerRequest {
                priority: 0,
                resource: Resource::new(1024, 1),
                nodes: vec![NodeId(0)],
                racks: vec![],
                relax_locality: true,
            },
            SimTime(100),
        );
        // One tick before the boundary: still blocked, wakeup scheduled
        // for exactly created + node_delay_ms.
        let (a, _, next) = r.schedule(SimTime(100 + 999));
        assert!(a.is_empty());
        assert_eq!(next, Some(SimTime(100 + 1_000)));
        // At exactly the boundary the relaxation applies (waited ==
        // node_delay_ms is no longer "< delay"): rack-local node 1 wins.
        let (a, _, _) = r.schedule(SimTime(100 + 1_000));
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].container.node, NodeId(1));
    }

    #[test]
    fn wakeup_advances_to_rack_delay_after_node_delay_expires() {
        // 4 nodes, racks of 2. Rack 0 fully occupied.
        let mut r = rm(4, 1);
        r.register_app(AppId(1), "default");
        for n in [0u32, 1] {
            r.add_request(
                AppId(1),
                ContainerRequest {
                    priority: 0,
                    resource: Resource::new(1024, 1),
                    nodes: vec![NodeId(n)],
                    racks: vec![],
                    relax_locality: false,
                },
                SimTime::ZERO,
            );
        }
        r.schedule(SimTime::ZERO);
        r.add_request(
            AppId(1),
            ContainerRequest {
                priority: 0,
                resource: Resource::new(1024, 1),
                nodes: vec![NodeId(0)],
                racks: vec![],
                relax_locality: true,
            },
            SimTime(0),
        );
        // At exactly the node-delay boundary the rack is still full, so
        // the next wakeup must move out to the rack-delay expiry.
        let (a, _, next) = r.schedule(SimTime(1_000));
        assert!(a.is_empty());
        assert_eq!(next, Some(SimTime(3_000)));
        // At exactly the rack boundary, off-rack placement is allowed.
        let (a, _, _) = r.schedule(SimTime(3_000));
        assert_eq!(a.len(), 1);
        assert!(a[0].container.node.0 >= 2, "off-rack node expected");
    }

    #[test]
    fn cancel_request_removes_pending() {
        let mut r = rm(1, 1);
        r.register_app(AppId(1), "default");
        let id = r.add_request(
            AppId(1),
            ContainerRequest::anywhere(0, Resource::new(8192, 1)),
            SimTime::ZERO,
        );
        assert!(r.cancel_request(AppId(1), id));
        assert!(!r.cancel_request(AppId(1), id));
        assert_eq!(r.pending_requests(AppId(1)), 0);
    }
}
