//! The cost model: converts task work descriptions into simulated time.
//!
//! The knobs model the overheads the paper attributes Tez's wins to:
//! container launch (resource negotiation + process/JVM start, §4.2
//! "Container Reuse"), a JIT-style warm-up multiplier that decays with the
//! number of tasks a container has executed (§4.2 "this reuse has the
//! additional benefit of giving the JVM optimizer a longer time to observe
//! and optimize the hot code paths"), AM startup (why per-job MapReduce
//! chains are expensive), replicated DFS writes (why inter-job
//! materialization is expensive), and network vs. local-disk bandwidth
//! (why locality and shuffle overlap matter).

/// All cost knobs. Bandwidths are in bytes per millisecond
/// (1 MB/s ≈ 1049 bytes/ms).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cold container launch: YARN allocation round trip + process start +
    /// localization.
    pub container_launch_ms: u64,
    /// AM startup per application (client submit → AM ready).
    pub am_launch_ms: u64,
    /// Extra work fraction on a container's first task: the first task runs
    /// at `(1 + warmup_penalty)` cost, decaying by `warmup_decay` per
    /// subsequent task.
    pub warmup_penalty: f64,
    /// Multiplicative decay of the warm-up penalty per task run.
    pub warmup_decay: f64,
    /// CPU nanoseconds charged per record processed.
    pub cpu_ns_per_record: u64,
    /// CPU nanoseconds charged per byte processed.
    pub cpu_ns_per_byte: u64,
    /// Local disk bandwidth, bytes/ms.
    pub disk_bw: u64,
    /// Cross-network bandwidth per flow, bytes/ms.
    pub net_bw: u64,
    /// Multiplier on DFS writes (pipeline replication); 3x replication
    /// costs roughly this factor over a local write.
    pub dfs_write_factor: f64,
    /// Probability that a work item stragglers.
    pub straggler_prob: f64,
    /// Duration multiplier applied to stragglers.
    pub straggler_factor: f64,
    /// Fixed per-task overhead (task setup, heartbeat latency).
    pub task_overhead_ms: u64,
    /// Global multiplier applied to *declared* byte volumes before
    /// bandwidth math, letting megabyte-scale real data be charged as the
    /// paper's terabyte-scale runs. 1.0 for correctness tests.
    pub byte_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            container_launch_ms: 2_500,
            am_launch_ms: 5_000,
            warmup_penalty: 0.6,
            warmup_decay: 0.5,
            cpu_ns_per_record: 1_500,
            cpu_ns_per_byte: 6,
            disk_bw: 150_000, // ~143 MB/s
            net_bw: 80_000,   // ~76 MB/s per flow
            dfs_write_factor: 2.5,
            straggler_prob: 0.01,
            straggler_factor: 4.0,
            task_overhead_ms: 150,
            byte_scale: 1.0,
        }
    }
}

impl CostModel {
    /// Warm-up multiplier for a container that has already run
    /// `tasks_run` tasks.
    pub fn warmup_factor(&self, tasks_run: u64) -> f64 {
        1.0 + self.warmup_penalty * self.warmup_decay.powi(tasks_run.min(62) as i32)
    }

    /// CPU milliseconds for the given volume.
    pub fn cpu_ms(&self, records: u64, bytes: u64) -> u64 {
        let scaled_bytes = (bytes as f64 * self.byte_scale) as u64;
        let scaled_records = (records as f64 * self.byte_scale) as u64;
        (scaled_records * self.cpu_ns_per_record + scaled_bytes * self.cpu_ns_per_byte) / 1_000_000
    }

    /// Milliseconds to read `bytes` from local disk.
    pub fn local_read_ms(&self, bytes: u64) -> u64 {
        ((bytes as f64 * self.byte_scale) as u64) / self.disk_bw.max(1)
    }

    /// Milliseconds to fetch `bytes` across the network.
    pub fn remote_read_ms(&self, bytes: u64) -> u64 {
        let scaled = (bytes as f64 * self.byte_scale) as u64;
        scaled / self.net_bw.max(1) + scaled / self.disk_bw.max(1)
    }

    /// Milliseconds to write `bytes` to local disk.
    pub fn local_write_ms(&self, bytes: u64) -> u64 {
        ((bytes as f64 * self.byte_scale) as u64) / self.disk_bw.max(1)
    }

    /// Milliseconds to write `bytes` to the replicated DFS.
    pub fn dfs_write_ms(&self, bytes: u64) -> u64 {
        (((bytes as f64 * self.byte_scale) * self.dfs_write_factor) as u64) / self.disk_bw.max(1)
    }

    /// Total base duration of a work item, before node speed, warm-up and
    /// straggler factors (which the simulator applies to everything except
    /// `setup_ms` — deterministic sleeps such as shuffle-fetch backoff are
    /// not compute and pass through unscaled).
    pub fn base_work_ms(&self, w: &WorkCost) -> u64 {
        self.task_overhead_ms
            + w.setup_ms
            + self.cpu_ms(w.cpu_records, w.cpu_bytes)
            + self.local_read_ms(w.local_read_bytes)
            + self
                .remote_read_ms(w.remote_read_bytes)
                .saturating_sub(w.overlapped_fetch_ms)
            + self.local_write_ms(w.local_write_bytes)
            + self.dfs_write_ms(w.dfs_write_bytes)
    }
}

/// Description of one task attempt's work, assembled by the AM from the
/// volumes the IPO pipeline actually processed.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkCost {
    /// Records driving CPU cost.
    pub cpu_records: u64,
    /// Bytes driving CPU cost.
    pub cpu_bytes: u64,
    /// Bytes read from node-local data (disk/HDFS-local replica).
    pub local_read_bytes: u64,
    /// Bytes fetched across the network (shuffle, remote HDFS replica).
    pub remote_read_bytes: u64,
    /// Bytes written to local disk (intermediate outputs, spills).
    pub local_write_bytes: u64,
    /// Bytes written to the replicated DFS (final outputs, MR inter-job
    /// materialization).
    pub dfs_write_bytes: u64,
    /// Extra fixed setup cost (e.g. building a broadcast hash table when it
    /// missed the object registry).
    pub setup_ms: u64,
    /// Fetch milliseconds already hidden by slow-start overlap; subtracted
    /// from the remote-read cost (credited by the AM, paper §3.4
    /// "Scheduling Optimizations").
    pub overlapped_fetch_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_decays_towards_one() {
        let m = CostModel::default();
        let f0 = m.warmup_factor(0);
        let f1 = m.warmup_factor(1);
        let f10 = m.warmup_factor(10);
        assert!(f0 > f1 && f1 > f10);
        assert!((f10 - 1.0).abs() < 0.01);
        assert!((f0 - 1.6).abs() < 1e-9);
    }

    #[test]
    fn byte_scale_multiplies_io() {
        let mut m = CostModel::default();
        // 1.5 MB divides the 150 kB/ms disk bandwidth exactly, so the
        // scaled cost is exactly 10x despite integer division.
        let base = m.local_read_ms(1_500_000);
        m.byte_scale = 10.0;
        assert_eq!(m.local_read_ms(1_500_000), base * 10);
    }

    #[test]
    fn remote_read_costs_more_than_local() {
        let m = CostModel::default();
        assert!(m.remote_read_ms(10_000_000) > m.local_read_ms(10_000_000));
    }

    #[test]
    fn dfs_write_costs_more_than_local_write() {
        let m = CostModel::default();
        assert!(m.dfs_write_ms(10_000_000) > m.local_write_ms(10_000_000));
    }

    #[test]
    fn overlap_credit_reduces_base_cost() {
        let m = CostModel::default();
        let w = WorkCost {
            remote_read_bytes: 100_000_000,
            ..Default::default()
        };
        let overlapped = WorkCost {
            overlapped_fetch_ms: 500,
            ..w
        };
        assert_eq!(m.base_work_ms(&overlapped) + 500, m.base_work_ms(&w));
    }

    #[test]
    fn overlap_credit_saturates() {
        let m = CostModel::default();
        let w = WorkCost {
            remote_read_bytes: 1_000,
            overlapped_fetch_ms: 1_000_000,
            ..Default::default()
        };
        // Never underflows below the other cost components.
        assert_eq!(m.base_work_ms(&w), m.task_overhead_ms);
    }
}
