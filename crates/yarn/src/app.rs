//! The ApplicationMaster contract: event callbacks plus the context through
//! which an app acts on the cluster.

use crate::cost::{CostModel, WorkCost};
use crate::hdfs::SimHdfs;
use crate::rm::ContainerRequest;
use crate::types::{AppId, Container, ContainerId, NodeId, RequestId, Resource, SimTime, WorkId};

/// Why a container went away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerExit {
    /// The app released it.
    Released,
    /// The RM preempted it for capacity rebalancing.
    Preempted,
    /// Its node failed.
    NodeLost,
}

/// How a work item ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkOutcome {
    /// Ran to completion.
    Succeeded,
    /// The app killed it.
    Killed,
    /// The fault plan injected a transient failure.
    InjectedFailure,
    /// The hosting container vanished mid-run (preemption, node loss).
    ContainerLost,
}

/// Terminal status reported by an app.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppStatus {
    /// Completed successfully.
    Succeeded,
    /// Failed with a reason.
    Failed(String),
}

/// Events delivered to an app by the simulator.
#[derive(Clone, Debug)]
pub enum AppEvent {
    /// The AM process is up (after `am_launch_ms`).
    Start,
    /// A container was allocated against an outstanding request.
    ContainerAllocated(Container),
    /// A container went away (release confirmations are not echoed; only
    /// preemption and node loss are delivered).
    ContainerCompleted {
        /// Which container.
        container: ContainerId,
        /// Why.
        exit: ContainerExit,
    },
    /// A work item finished.
    WorkCompleted {
        /// Which work.
        work: WorkId,
        /// The container it ran in.
        container: ContainerId,
        /// How it ended.
        outcome: WorkOutcome,
    },
    /// A timer set via [`AppContext::set_timer`] fired.
    Timer {
        /// The app-chosen tag.
        tag: u64,
    },
    /// A data-plane payload submitted to the worker pool is ready to be
    /// joined (queued via [`AppContext::notify_payload_ready`] at the same
    /// simulated instant it was submitted, after all already-queued
    /// same-time events).
    PayloadReady {
        /// The app-chosen ticket identifying the payload.
        ticket: u64,
    },
    /// A cluster node failed (delivered to every app; Tez uses this to
    /// proactively re-execute tasks whose outputs lived there, §4.3).
    NodeLost {
        /// The failed node.
        node: NodeId,
    },
}

/// The ApplicationMaster interface. Implementations are single-threaded
/// state machines driven by [`AppEvent`]s.
pub trait YarnApp {
    /// Handle one event.
    fn on_event(&mut self, event: AppEvent, ctx: &mut AppContext<'_>);
}

/// The app's window onto the simulated cluster. Borrows the simulation
/// internals for the duration of one callback.
pub struct AppContext<'a> {
    pub(crate) app: AppId,
    pub(crate) now: SimTime,
    pub(crate) inner: &'a mut crate::sim::SimInner,
}

impl<'a> AppContext<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This app's id.
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// Ask the RM for a container.
    pub fn request_container(&mut self, req: ContainerRequest) -> RequestId {
        self.inner.request_container(self.app, req, self.now)
    }

    /// Cancel an outstanding request.
    pub fn cancel_request(&mut self, id: RequestId) -> bool {
        self.inner.rm.cancel_request(self.app, id)
    }

    /// Return a container to the RM.
    pub fn release_container(&mut self, id: ContainerId) {
        self.inner.release_container(id, self.now);
    }

    /// Launch work in a container. The simulator prices it with the cost
    /// model, node speed, container warm-up and straggler/fault injection,
    /// and delivers [`AppEvent::WorkCompleted`] when it ends.
    pub fn start_work(&mut self, container: ContainerId, label: String, cost: WorkCost) -> WorkId {
        self.inner
            .start_work(self.app, container, label, cost, self.now)
    }

    /// Observed progress of a running work item in `[0, 1]`.
    pub fn work_progress(&self, work: WorkId) -> f64 {
        self.inner.work_progress(work, self.now)
    }

    /// Kill a running work item; completion is delivered with
    /// [`WorkOutcome::Killed`].
    pub fn kill_work(&mut self, work: WorkId) {
        self.inner.kill_work(work, self.now);
    }

    /// Deliver [`AppEvent::Timer`] after `delay_ms`.
    pub fn set_timer(&mut self, delay_ms: u64, tag: u64) {
        self.inner.set_timer(self.app, delay_ms, tag, self.now);
    }

    /// The distributed filesystem.
    pub fn hdfs(&self) -> &SimHdfs {
        &self.inner.hdfs
    }

    /// Owned handle to the filesystem, for payloads that outlive the
    /// current callback (worker-pool jobs read input blocks through it).
    pub fn hdfs_arc(&self) -> std::sync::Arc<SimHdfs> {
        self.inner.hdfs.clone()
    }

    /// Deliver [`AppEvent::PayloadReady`] to this app at the current
    /// simulated time, after every already-queued same-time event.
    pub fn notify_payload_ready(&mut self, ticket: u64) {
        self.inner.notify_payload_ready(self.app, ticket, self.now);
    }

    /// The cost model (apps use it to estimate/credit overlap windows).
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Number of alive nodes.
    pub fn alive_nodes(&self) -> usize {
        self.inner.rm.alive_nodes()
    }

    /// Total cluster nodes (including dead ones).
    pub fn total_nodes(&self) -> usize {
        self.inner.cluster.nodes
    }

    /// Concurrently-runnable containers of `r` across the cluster.
    pub fn total_slots(&self, r: &Resource) -> usize {
        self.inner.cluster.total_slots(r)
    }

    /// Node hosting a live container.
    pub fn container_node(&self, id: ContainerId) -> Option<NodeId> {
        self.inner.rm.container(id).map(|c| c.node)
    }

    /// Number of work items a container has executed (warm-up state).
    pub fn container_works_run(&self, id: ContainerId) -> Option<u64> {
        self.inner.rm.container(id).map(|c| c.works_run)
    }

    /// Rack of a node.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        self.inner.rm.rack_of(node)
    }

    /// Scheduler decisions recorded for this app so far (locality
    /// outcomes, wait times, preemptions). Apps snapshot this per DAG and
    /// diff to attribute decisions to individual runs.
    pub fn scheduler_stats(&self) -> tez_runtime::SchedulerStats {
        self.inner.rm.scheduler_stats(self.app)
    }

    /// Queue-wait distribution recorded for this app so far (one sample
    /// per container placement, ms). Like [`AppContext::scheduler_stats`],
    /// apps snapshot this per DAG and diff with
    /// [`tez_runtime::Histogram::delta_since`].
    pub fn queue_wait_histogram(&self) -> tez_runtime::Histogram {
        self.inner.rm.queue_wait_histogram(self.app)
    }

    /// Append a typed event to the run's timeline, stamped with the
    /// current simulated time and this app's id.
    pub fn record_event(&mut self, kind: tez_runtime::timeline::EventKind) {
        self.inner.record(self.now, self.app, kind);
    }

    /// Number of timeline events recorded so far (snapshot before a DAG
    /// starts, then slice its events with
    /// [`AppContext::timeline_events_since`]).
    pub fn timeline_len(&self) -> usize {
        self.inner.timeline.len()
    }

    /// This app's timeline events (plus cluster-global ones) recorded at
    /// or after index `base`, keeping their original sequence numbers.
    pub fn timeline_events_since(&self, base: usize) -> Vec<tez_runtime::timeline::TimelineEvent> {
        let me = self.app.0 as u64;
        self.inner
            .timeline
            .events
            .iter()
            .skip(base)
            .filter(|e| e.app == me || e.app == tez_runtime::timeline::GLOBAL_APP)
            .cloned()
            .collect()
    }

    /// Report terminal status; the RM reclaims all containers.
    pub fn finish(&mut self, status: AppStatus) {
        self.inner.finish_app(self.app, status, self.now);
    }
}
