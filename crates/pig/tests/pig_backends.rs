//! Pig backend equivalence and the §5.3 mechanisms: multi-output scripts,
//! sampled total-order sorts, skewed joins, and iterative K-means.

use tez_core::{TezClient, TezConfig};
use tez_hive::plan::compare_rows;
use tez_hive::types::{Datum, Row};
use tez_pig::kmeans::{generate_points, run_kmeans};
use tez_pig::workloads::{event_catalog, production_scripts};
use tez_pig::{PigEngine, PigOpts};
use tez_yarn::{ClusterSpec, CostModel};

fn client() -> TezClient {
    TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(CostModel {
        straggler_prob: 0.0,
        ..CostModel::default()
    })
}

fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    let width = rows.first().map(Vec::len).unwrap_or(0);
    let keys: Vec<(usize, bool)> = (0..width).map(|i| (i, false)).collect();
    rows.sort_by(|a, b| compare_rows(a, b, &keys));
    rows
}

fn rows_equal(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Datum::F64(p), Datum::F64(q)) => {
                    (p - q).abs() <= 1e-6 * (1.0 + p.abs().max(q.abs()))
                }
                _ => x == y,
            })
        })
}

#[test]
fn production_scripts_backends_agree() {
    let engine = PigEngine::new(event_catalog(400, 4, 3));
    let client = client();
    let opts = PigOpts::default();
    for (name, script) in production_scripts() {
        eprintln!("== {name}");
        let expected = engine.reference(&script);
        let tez = engine.run_tez(&client, &script, &opts);
        assert!(tez.success(), "{name} tez failed: {:?}", tez.reports);
        let mr = engine.run_mr(&client, &script, &opts);
        assert!(mr.success(), "{name} mr failed: {:?}", mr.reports);
        for (path, exp) in &expected {
            // Sorted stores (order-by outputs) compare in order; others
            // canonically. Our order-by stores are either top-k (single
            // task) or sampled sorts, both order-preserving in file order.
            let is_sorted = name == "daily_report" || name == "skewed_rank" || name == "fanout";
            let (e, t, m) = if is_sorted {
                (
                    exp.clone(),
                    tez.outputs[path].clone(),
                    mr.outputs[path].clone(),
                )
            } else {
                (
                    canon(exp.clone()),
                    canon(tez.outputs[path].clone()),
                    canon(mr.outputs[path].clone()),
                )
            };
            assert!(
                rows_equal(&e, &t),
                "{name} {path}: tez mismatch ({} vs {} rows)\nexp {:?}\ngot {:?}",
                e.len(),
                t.len(),
                e.iter().take(3).collect::<Vec<_>>(),
                t.iter().take(3).collect::<Vec<_>>()
            );
            assert!(
                rows_equal(&e, &m),
                "{name} {path}: mr mismatch ({} vs {} rows)",
                e.len(),
                m.len()
            );
        }
        assert!(
            tez.runtime_ms() <= mr.runtime_ms(),
            "{name}: tez {} > mr {}",
            tez.runtime_ms(),
            mr.runtime_ms()
        );
    }
}

#[test]
fn full_sort_is_totally_ordered_across_partitions() {
    let engine = PigEngine::new(event_catalog(400, 4, 3));
    let client = client();
    let mut s = tez_pig::PigScript::new("sortall");
    let e = s.load("events_day1");
    let o = s.order_by(e, vec![(2, false), (0, false), (3, false)], None);
    s.store(o, "/out/sorted");
    let res = engine.run_tez(&client, &s, &PigOpts::default());
    assert!(res.success(), "{:?}", res.reports);
    let rows = &res.outputs["/out/sorted"];
    assert_eq!(rows.len(), 400);
    for w in rows.windows(2) {
        assert_ne!(
            compare_rows(&w[0], &w[1], &[(2, false), (0, false), (3, false)]),
            std::cmp::Ordering::Greater,
            "sink must be globally sorted"
        );
    }
}

#[test]
fn kmeans_converges_and_sessions_help() {
    let points = generate_points(600, 3, 5);
    let client = TezClient::new(ClusterSpec::homogeneous(1, 4096, 4)).with_cost(CostModel {
        straggler_prob: 0.0,
        ..CostModel::default()
    });
    let iterations = 10;

    let session_cfg = TezConfig {
        session: true,
        container_reuse: true,
        prewarm_containers: 2,
        ..TezConfig::default()
    };
    let tez = run_kmeans(&client, &points, 3, iterations, session_cfg, 4);
    assert_eq!(tez.reports.len(), iterations);
    assert!(tez.reports.iter().all(|r| r.status.is_success()));
    assert_eq!(tez.centroids.len(), 3);
    // Converged near the true centers (0,0), (10,10), (20,20).
    for &(_, x, y) in &tez.centroids {
        let near = [(0.0, 0.0), (10.0, 10.0), (20.0, 20.0)]
            .iter()
            .any(|&(cx, cy)| (x - cx).abs() < 1.5 && (y - cy).abs() < 1.5);
        assert!(near, "centroid ({x:.2},{y:.2}) not near a true center");
    }

    let mr = run_kmeans(
        &client,
        &points,
        3,
        iterations,
        TezConfig::mapreduce_baseline(),
        4,
    );
    assert!(mr.reports.iter().all(|r| r.status.is_success()));
    assert!(
        tez.total_ms < mr.total_ms,
        "session run {} must beat per-job AMs {}",
        tez.total_ms,
        mr.total_ms
    );
    // Later session iterations are faster than the first (warm containers,
    // cached points).
    let first = tez.reports[0].runtime_ms();
    let later = tez.reports[iterations - 1].runtime_ms();
    assert!(
        later < first,
        "warm iteration {later}ms should beat cold {first}ms"
    );
}
