//! # tez-pig — a mini ETL dataflow engine on rtez
//!
//! Stands in for Apache Pig in the paper's evaluation (§5.3, §6.3, §6.4):
//! a procedural dataflow language whose runtime moved to Tez. The crate
//! provides what distinguishes Pig from the SQL engine:
//!
//! * **Multi-output dataflow graphs** ([`script`]): a relation consumed by
//!   several downstream operators becomes one Tez vertex with several
//!   outputs ("being able to model multiple outputs explicitly via the Tez
//!   APIs allows the planning and execution code in Pig to be clean"),
//!   while the MapReduce backend re-reads or re-computes shared streams —
//!   the paper's "creative workarounds".
//! * **Sample → histogram → range-partition** execution of `ORDER BY` and
//!   skewed joins (§5.3): on Tez this is a sampler vertex feeding
//!   boundaries to the partitioning vertex at runtime (late-binding IPO
//!   reconfiguration); on MapReduce it is the historical multi-job chain
//!   through HDFS.
//! * An iterative **K-means** driver ([`kmeans`]) exercising Tez sessions
//!   (Figure 11) and a **production-style ETL workload generator**
//!   ([`workloads`]) for the Yahoo comparison (Figure 10).

pub mod compile;
pub mod engine;
pub mod kmeans;
pub mod script;
pub mod workloads;

pub use engine::{PigEngine, PigOpts, PigResult};
pub use script::{JoinStrategy, NodeId, PigScript};
