//! The Pig engine facade: run scripts on Tez, classic MapReduce, or the
//! in-memory reference executor.

pub use crate::compile::PigOpts;
use crate::compile::{build_mr_dags, build_tez_dag, rewrite_for_mr};
use crate::script::PigScript;
use std::collections::HashMap;
use tez_core::{standard_registry, DagReport, TezClient, TezConfig};
use tez_hive::engine::read_rows;
use tez_hive::types::Row;
use tez_hive::Catalog;

/// A finished script run.
#[derive(Clone, Debug)]
pub struct PigResult {
    /// Rows per store path (sink file order — total order for sorted
    /// stores).
    pub outputs: HashMap<String, Vec<Row>>,
    /// One report per DAG (Tez: one; MR: one per job).
    pub reports: Vec<DagReport>,
}

impl PigResult {
    /// End-to-end runtime.
    pub fn runtime_ms(&self) -> u64 {
        let start = self
            .reports
            .first()
            .map(|r| r.submitted.millis())
            .unwrap_or(0);
        let end = self
            .reports
            .last()
            .map(|r| r.finished.millis())
            .unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Whether every DAG succeeded.
    pub fn success(&self) -> bool {
        !self.reports.is_empty() && self.reports.iter().all(|r| r.status.is_success())
    }
}

/// The Pig engine.
pub struct PigEngine {
    /// The warehouse.
    pub catalog: Catalog,
}

impl PigEngine {
    /// Engine over a catalog.
    pub fn new(catalog: Catalog) -> Self {
        PigEngine { catalog }
    }

    /// In-memory reference execution.
    pub fn reference(&self, script: &PigScript) -> HashMap<String, Vec<Row>> {
        script.execute_reference(&self.catalog)
    }

    /// Run on Tez with a custom base config.
    pub fn run_tez_with(
        &self,
        client: &TezClient,
        script: &PigScript,
        opts: &PigOpts,
        mut config: TezConfig,
    ) -> PigResult {
        config.byte_scale = opts.byte_scale;
        let mut registry = standard_registry();
        let dag = build_tez_dag(script, &self.catalog, opts, &mut registry, &config);
        let scale = opts.byte_scale;
        let run = client.run_dag(dag, registry, config, |hdfs| {
            hdfs.set_stat_scale(scale);
            self.catalog.load_hdfs(hdfs, scale);
        });
        let outputs = script
            .stores()
            .into_iter()
            .map(|(_, path)| {
                let rows = read_rows(run.hdfs(), &path);
                (path, rows)
            })
            .collect();
        PigResult {
            outputs,
            reports: run.reports,
        }
    }

    /// Run on Tez with defaults.
    pub fn run_tez(&self, client: &TezClient, script: &PigScript, opts: &PigOpts) -> PigResult {
        self.run_tez_with(client, script, opts, TezConfig::default())
    }

    /// Run on the classic MapReduce backend.
    pub fn run_mr(&self, client: &TezClient, script: &PigScript, opts: &PigOpts) -> PigResult {
        let mut config = TezConfig::mapreduce_baseline();
        config.byte_scale = opts.byte_scale;
        let mr_script = rewrite_for_mr(script);
        let mut registry = standard_registry();
        let dags = build_mr_dags(&mr_script, &self.catalog, opts, &mut registry, &config);
        let scale = opts.byte_scale;
        let run = client.run_session(dags, registry, config, |hdfs| {
            hdfs.set_stat_scale(scale);
            self.catalog.load_hdfs(hdfs, scale);
        });
        let outputs = script
            .stores()
            .into_iter()
            .map(|(_, path)| {
                let rows = read_rows(run.hdfs(), &path);
                (path, rows)
            })
            .collect();
        PigResult {
            outputs,
            reports: run.reports,
        }
    }
}
