//! Production-style ETL workloads for the Figure 10 comparison.
//!
//! The paper's Yahoo tests ran "large production ETL pig jobs … with
//! varying characteristics like terabytes of input, 100K+ tasks, complex
//! DAGs with 20 to 50 vertices and doing a combination of various
//! operations like group by, union, distinct, join, order by". These
//! generators produce scripts mixing exactly those operations over a
//! synthetic event warehouse.

use crate::script::{JoinStrategy, PigScript};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tez_hive::expr::Expr;
use tez_hive::plan::AggExpr;
use tez_hive::types::{ColType, Datum, Row, Schema};
use tez_hive::Catalog;

const KINDS: &[&str] = &["view", "click", "buy", "share", "search"];

/// Generate the event warehouse: two daily event tables (for unions), a
/// users dimension, and a deliberately **skewed** clicks table.
pub fn event_catalog(rows: usize, blocks: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe7);
    let mut cat = Catalog::new();
    let users = (rows / 20).max(10);

    let event_schema = || {
        Schema::new(vec![
            ("user", ColType::I64),
            ("kind", ColType::Str),
            ("amount", ColType::I64),
            ("ts", ColType::I64),
        ])
    };
    for day in ["events_day1", "events_day2"] {
        let data: Vec<Row> = (0..rows)
            .map(|_| {
                vec![
                    Datum::I64(rng.random_range(0..users) as i64),
                    Datum::str(KINDS[rng.random_range(0..KINDS.len())]),
                    Datum::I64(rng.random_range(1..500)),
                    Datum::I64(rng.random_range(0..86_400)),
                ]
            })
            .collect();
        cat.add_table(day, event_schema(), data, blocks, None);
    }

    cat.add_table(
        "users",
        Schema::new(vec![
            ("uid", ColType::I64),
            ("country", ColType::Str),
            ("age", ColType::I64),
        ]),
        (0..users)
            .map(|i| {
                vec![
                    Datum::I64(i as i64),
                    Datum::str(["US", "DE", "IN", "BR", "JP"][rng.random_range(0..5)]),
                    Datum::I64(rng.random_range(13..90)),
                ]
            })
            .collect(),
        1,
        None,
    );

    // Zipf-ish skew: 40% of clicks hit user 0.
    let clicks: Vec<Row> = (0..rows)
        .map(|_| {
            let user = if rng.random_range(0..10) < 4 {
                0
            } else {
                rng.random_range(0..users) as i64
            };
            vec![Datum::I64(user), Datum::I64(rng.random_range(1..100))]
        })
        .collect();
    cat.add_table(
        "clicks",
        Schema::new(vec![("user", ColType::I64), ("weight", ColType::I64)]),
        clicks,
        blocks,
        None,
    );
    // The users dimension is absolutely small.
    cat.set_scale_override("users", 1.0);
    cat
}

/// The Figure 10 script suite: `(name, script)` pairs mixing group-by,
/// union, distinct, join and order-by, including multi-output scripts.
pub fn production_scripts() -> Vec<(&'static str, PigScript)> {
    let mut out = Vec::new();

    // 1. Daily aggregate report: filter → group → top-k.
    {
        let mut s = PigScript::new("daily_report");
        let e = s.load("events_day1");
        let buys = s.filter(e, Expr::col(1).eq(Expr::lit_str("buy")));
        let agg = s.group(
            buys,
            vec![0],
            vec![AggExpr::CountStar, AggExpr::Sum(Expr::col(2))],
        );
        let top = s.order_by(agg, vec![(2, true)], Some(25));
        s.store(top, "/out/daily_report");
        out.push(("daily_report", s));
    }

    // 2. Enriched sessions: join events with users, two grouped outputs
    //    from one shared stream (multi-output DAG).
    {
        let mut s = PigScript::new("session_enrich");
        let e = s.load("events_day1");
        let u = s.load("users");
        let j = s.join(e, u, vec![0], vec![0], JoinStrategy::Replicated);
        // j: user, kind, amount, ts, uid, country, age
        let by_country = s.group(j, vec![5], vec![AggExpr::Sum(Expr::col(2))]);
        let by_kind = s.group(j, vec![1], vec![AggExpr::CountStar]);
        s.store(by_country, "/out/by_country");
        s.store(by_kind, "/out/by_kind");
        out.push(("session_enrich", s));
    }

    // 3. Cross-day dedup: union → distinct users → group.
    {
        let mut s = PigScript::new("cross_day_dedup");
        let d1 = s.load("events_day1");
        let d2 = s.load("events_day2");
        let p1 = s.foreach(d1, vec![Expr::col(0), Expr::col(1)]);
        let p2 = s.foreach(d2, vec![Expr::col(0), Expr::col(1)]);
        let u = s.union(vec![p1, p2]);
        let d = s.distinct(u);
        let agg = s.group(d, vec![1], vec![AggExpr::CountStar]);
        s.store(agg, "/out/dedup_kinds");
        out.push(("cross_day_dedup", s));
    }

    // 4. Skewed click join + full total-order sort (the §5.3 patterns).
    {
        let mut s = PigScript::new("skewed_rank");
        let c = s.load("clicks");
        let u = s.load("users");
        let j = s.join(c, u, vec![0], vec![0], JoinStrategy::Skewed);
        // j: user, weight, uid, country, age
        let agg = s.group(j, vec![3], vec![AggExpr::Sum(Expr::col(1))]);
        let sorted = s.order_by(agg, vec![(1, true)], None);
        s.store(sorted, "/out/skewed_rank");
        out.push(("skewed_rank", s));
    }

    // 5. Multi-branch fan-out: one scan feeding three filtered aggregates
    //    (a SPLIT-style script).
    {
        let mut s = PigScript::new("fanout");
        let e = s.load("events_day1");
        for (i, kind) in ["view", "click", "buy"].iter().enumerate() {
            let f = s.filter(e, Expr::col(1).eq(Expr::lit_str(kind)));
            let g = s.group(f, vec![0], vec![AggExpr::Sum(Expr::col(2))]);
            let t = s.order_by(g, vec![(1, true)], Some(10));
            s.store(t, &format!("/out/fanout_{i}"));
        }
        out.push(("fanout", s));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_skew() {
        let cat = event_catalog(500, 4, 1);
        let clicks = &cat.table("clicks").rows;
        let user0 = clicks.iter().filter(|r| r[0] == Datum::I64(0)).count();
        assert!(
            user0 * 2 > clicks.len() / 2,
            "user 0 should hold ~40% of clicks, got {user0}/{}",
            clicks.len()
        );
    }

    #[test]
    fn scripts_run_on_reference() {
        let cat = event_catalog(500, 4, 1);
        for (name, s) in production_scripts() {
            let outputs = s.execute_reference(&cat);
            assert!(!outputs.is_empty(), "{name} has stores");
            for (path, rows) in outputs {
                assert!(!rows.is_empty(), "{name}: {path} is empty");
            }
        }
    }
}
