//! Iterative K-means (paper §6.4, Figure 11).
//!
//! "Tez session and container-reuse features work in favor of fast
//! iterative workloads, which require consecutive DAGs to execute over the
//! same data-set." Each iteration is one assign→update DAG; all iterations
//! are submitted to a single session AM, so containers stay warm, the JIT
//! model amortizes, and the parsed point set is cached in the shared
//! object registry across iterations (session scope).
//!
//! Pig expresses the centroid math through UDFs; here the UDF bodies are
//! the two custom processors below.

use std::sync::Arc;
use tez_core::{hdfs_split_initializer, standard_registry, DagReport, TezClient, TezConfig};
use tez_dag::{Dag, DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_hive::types::{decode_row, row_bytes, Datum, Row};
use tez_runtime::{ObjectScope, Processor, ProcessorContext, TaskError};
use tez_shuffle::codec::{enc_u64, encode_kv, KvCursor};
use tez_shuffle::io::{kinds, scatter_gather_edge};
use tez_shuffle::Combiner;

/// Centroids file path for one iteration.
fn centroid_path(iter: usize) -> String {
    format!("/kmeans/centroids_{iter}")
}

/// Read centroids from the DFS.
fn read_centroids(dfs: &dyn tez_runtime::Dfs, iter: usize) -> Result<Vec<(f64, f64)>, TaskError> {
    let path = centroid_path(iter);
    let blocks = dfs
        .list_blocks(&path)
        .ok_or_else(|| TaskError::failed(format!("centroids {path:?} missing")))?;
    let mut out = Vec::new();
    for b in blocks {
        if let Some(data) = dfs.read_block(&path, b.index) {
            let mut c = KvCursor::new(data);
            while let Some((_, v)) = c.next() {
                let row = decode_row(&v)?;
                out.push((row[1].as_f64(), row[2].as_f64()));
            }
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(out)
}

/// Assign each point to its nearest centroid, emitting partial sums
/// `(centroid, (sum_x, sum_y, count))`. Points are cached in the shared
/// object registry with session scope, so later iterations in a warm
/// container skip re-parsing (paper §4.2).
struct AssignProcessor {
    iteration: usize,
}

impl Processor for AssignProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let cache_key = format!("kmeans:points:{}", ctx.meta.task_index);
        let points: Arc<Vec<(f64, f64)>> = match ctx.env.registry.get(&cache_key) {
            Some(any) => {
                ctx.counters.inc(tez_runtime::counter_names::REGISTRY_HITS);
                any.downcast().map_err(|_| TaskError::fatal("cache type"))?
            }
            None => {
                let mut reader = ctx.reader("points")?.into_kv()?;
                let mut pts = Vec::new();
                while let Some((_, v)) = reader.next() {
                    let row = decode_row(&v)?;
                    pts.push((row[0].as_f64(), row[1].as_f64()));
                }
                let arc = Arc::new(pts);
                ctx.env.registry.put(
                    ObjectScope::Session,
                    &cache_key,
                    arc.clone() as Arc<dyn std::any::Any + Send + Sync>,
                );
                arc
            }
        };
        let centroids = read_centroids(ctx.env.dfs, self.iteration)?;
        let k = centroids.len();
        let mut acc = vec![(0.0f64, 0.0f64, 0u64); k];
        for &(x, y) in points.iter() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (i, &(cx, cy)) in centroids.iter().enumerate() {
                let d = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            acc[best].0 += x;
            acc[best].1 += y;
            acc[best].2 += 1;
        }
        for (i, (sx, sy, n)) in acc.into_iter().enumerate() {
            if n > 0 {
                let row: Row = vec![Datum::F64(sx), Datum::F64(sy), Datum::I64(n as i64)];
                ctx.write("update", &enc_u64(i as u64), &row_bytes(&row))?;
            }
        }
        Ok(())
    }
}

/// Merge partial sums and write the next iteration's centroids.
struct UpdateProcessor;

impl Processor for UpdateProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader("assign")?.into_grouped()?;
        let mut out = Vec::new();
        while let Some(g) = reader.next_group() {
            let id = u64::from_be_bytes(g.key[..8].try_into().unwrap());
            let (mut sx, mut sy, mut n) = (0.0, 0.0, 0i64);
            for v in g.values {
                let row = decode_row(&v)?;
                sx += row[0].as_f64();
                sy += row[1].as_f64();
                n += row[2].as_i64();
            }
            out.push((id, sx / n as f64, sy / n as f64));
        }
        for (id, x, y) in out {
            let row: Row = vec![Datum::I64(id as i64), Datum::F64(x), Datum::F64(y)];
            ctx.write("out", &enc_u64(id), &row_bytes(&row))?;
        }
        Ok(())
    }
}

fn iteration_dag(iter: usize) -> Dag {
    DagBuilder::new(format!("kmeans-iter{iter}"))
        .add_vertex(
            Vertex::new(
                "assign",
                NamedDescriptor::with_payload(
                    "pig.KmeansAssign",
                    UserPayload::from_bytes(iter.to_le_bytes().to_vec()),
                ),
            )
            .with_data_source(
                "points",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer(
                    "/kmeans/points",
                    1,
                    u64::MAX / 2,
                    false,
                )),
            ),
        )
        .add_vertex(
            Vertex::new("update", NamedDescriptor::new("pig.KmeansUpdate"))
                .with_parallelism(1)
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(
                        kinds::DFS_OUT,
                        UserPayload::from_str(&centroid_path(iter + 1)),
                    ),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        )
        .add_edge("assign", "update", scatter_gather_edge(Combiner::None))
        .build()
        .expect("kmeans dag")
}

/// Result of a K-means run.
#[derive(Clone, Debug)]
pub struct KmeansResult {
    /// Final centroids `(id, x, y)`.
    pub centroids: Vec<(i64, f64, f64)>,
    /// Per-iteration DAG reports.
    pub reports: Vec<DagReport>,
    /// Total runtime (first submit → last finish).
    pub total_ms: u64,
}

/// Run K-means for `iterations` iterations over `points`, with the given
/// base config (session on/off is the Figure 11 variable).
pub fn run_kmeans(
    client: &TezClient,
    points: &[(f64, f64)],
    k: usize,
    iterations: usize,
    config: TezConfig,
    blocks: usize,
) -> KmeansResult {
    let mut registry = standard_registry();
    registry.register_processor("pig.KmeansAssign", |p| {
        let iteration = usize::from_le_bytes(p.as_bytes().try_into().expect("iter payload"));
        Box::new(AssignProcessor { iteration })
    });
    registry.register_processor("pig.KmeansUpdate", |_| Box::new(UpdateProcessor));

    let dags = (0..iterations).map(iteration_dag).collect();
    let pts = points.to_vec();
    let run = client.run_session(dags, registry, config, move |hdfs| {
        // Points file.
        let per = pts.len().div_ceil(blocks.max(1));
        let blocks_data: Vec<(bytes::Bytes, u64)> = pts
            .chunks(per.max(1))
            .map(|chunk| {
                let mut buf = Vec::new();
                for &(x, y) in chunk {
                    let row: Row = vec![Datum::F64(x), Datum::F64(y)];
                    encode_kv(&mut buf, b"", &row_bytes(&row));
                }
                (bytes::Bytes::from(buf), chunk.len() as u64)
            })
            .collect();
        hdfs.put_file("/kmeans/points", blocks_data);
        // Initial centroids: farthest-first traversal. Taking the first k
        // points risks seeding two centroids in one cluster, which Lloyd's
        // algorithm cannot recover from (it converges to a local optimum
        // with a centroid parked between two true clusters).
        let mut init: Vec<(f64, f64)> = Vec::with_capacity(k);
        if let Some(&first) = pts.first() {
            init.push(first);
        }
        while init.len() < k && init.len() < pts.len() {
            let far = pts
                .iter()
                .max_by(|a, b| {
                    let da = init
                        .iter()
                        .map(|c| (a.0 - c.0).powi(2) + (a.1 - c.1).powi(2))
                        .fold(f64::INFINITY, f64::min);
                    let db = init
                        .iter()
                        .map(|c| (b.0 - c.0).powi(2) + (b.1 - c.1).powi(2))
                        .fold(f64::INFINITY, f64::min);
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .copied()
                .expect("non-empty points");
            init.push(far);
        }
        let mut buf = Vec::new();
        for (i, &(x, y)) in init.iter().enumerate() {
            let row: Row = vec![Datum::I64(i as i64), Datum::F64(x), Datum::F64(y)];
            encode_kv(&mut buf, &enc_u64(i as u64), &row_bytes(&row));
        }
        hdfs.put_file(&centroid_path(0), vec![(bytes::Bytes::from(buf), k as u64)]);
    });

    let centroids = {
        let path = centroid_path(iterations);
        tez_hive::engine::read_rows(run.hdfs(), &path)
            .into_iter()
            .map(|r| (r[0].as_i64(), r[1].as_f64(), r[2].as_f64()))
            .collect()
    };
    let total_ms = run
        .reports
        .last()
        .map(|r| r.finished.millis())
        .unwrap_or(0)
        .saturating_sub(
            run.reports
                .first()
                .map(|r| r.submitted.millis())
                .unwrap_or(0),
        );
    KmeansResult {
        centroids,
        reports: run.reports,
        total_ms,
    }
}

/// Generate clustered 2-D points around `k` true centers.
pub fn generate_points(n: usize, k: usize, seed: u64) -> Vec<(f64, f64)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..k)
        .map(|i| (10.0 * i as f64, 10.0 * ((i * 7) % k) as f64))
        .collect();
    (0..n)
        .map(|_| {
            let (cx, cy) = centers[rng.random_range(0..k)];
            (
                cx + rng.random_range(-1.0..1.0),
                cy + rng.random_range(-1.0..1.0),
            )
        })
        .collect()
}
